"""Bench: regenerate Figure 1 (the Facebook anomaly BGP replay)."""


def test_bench_fig01_facebook_replay(run_recorded):
    result = run_recorded("fig01")
    # Paper: 7-hop route via Level3 replaced by the 6-hop route via
    # China Telecom carrying only 3 of the 5 padded ASNs.
    assert result.summary["att_path_len_before"] == 7
    assert result.summary["att_path_len_after"] == 6
    assert result.summary["padding_before"] == 5
    assert result.summary["padding_seen_after"] == 3
    assert result.summary["ntt_follows_anomaly"] == 1.0


def test_bench_fig01_per_prefix_fates(run_recorded):
    # Recorded as part of fig01's summary by the bench above; keep a
    # dedicated assertion for the paper's prefix-count observation.
    result = run_recorded("fig01")
    assert result.summary["prefixes_announced"] == 10
    assert result.summary["prefixes_affected"] == 2
