"""Bench: regenerate Figure 8 (random attacker/victim pollution, λ=3)."""


def test_bench_fig08_random_pairs(run_recorded):
    result = run_recorded("fig08")
    # Paper: random (mostly low-tier) pairs are far less effective than
    # Tier-1 pairs — the median instance pollutes almost nothing, while
    # a few outliers still reach substantial fractions.
    assert result.summary["median_pollution_pct"] < 20
    assert result.summary["median_pollution_pct"] < result.summary["max_pollution_pct"]
    assert len(result.rows) == 27
