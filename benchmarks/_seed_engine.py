# Vendored, verbatim, from the repository's seed commit (4083fa4):
# src/repro/bgp/engine.py as it stood before the incremental decision
# fast path, the compiled-adjacency precomputation and the sweep
# runner existed.  benchmarks/test_bench_runner.py times this engine's
# serial sweep loop as the "before" baseline so the runner's speedup
# is measured against a fixed reference, not a moving one.
#
# Do not edit or "fix" this module; regenerate it with
#   git show 4083fa4:src/repro/bgp/engine.py
"""Policy-aware BGP route-propagation engine.

This is the simulator at the heart of the paper (§IV-B): it emulates
BGP announcement propagation and the decision process for a single
destination prefix over a relationship-annotated AS graph, under the
valley-free profit-driven policy, with:

* per-neighbour AS-path **prepending** schedules (source and
  intermediary prepending);
* per-AS **path modifiers** — the hook the ASPP interception attacker
  uses to strip the victim's padding before re-announcing;
* per-AS **export-policy violation** (the attacker variant of the
  paper's Figures 11-12);
* standard AS-PATH **loop prevention** (an AS never accepts a path that
  already contains its own ASN) — this is also what automatically keeps
  the attacker's own valid route to the victim intact;
* a synchronous **round clock**: the round at which each AS adopted its
  final route is recorded, giving the logical time base for the
  pollution-before-detection analysis (Figure 14);
* **warm starts**: an attack can be launched from a converged baseline
  so that adoption rounds measure post-attack propagation.

The engine is an asynchronous (Gauss-Seidel) worklist fixpoint: one AS
at a time re-announces to its neighbours, and any receiver whose
decision changes joins the worklist.  Sequential activation matters —
simultaneous (Jacobi-style) updates oscillate even on valley-free
configurations (two peers can adopt routes through each other in the
same step, then both retract on loop detection, forever).  Under
valley-free policies the asynchronous iteration converges (Gao-Rexford
stability holds for any fair activation order); an operation budget
guards the policy-violating configurations.

The logical clock is derived from propagation causality rather than
iteration order: the origin (or attack seed) starts at round 0, and an
AS that changes its route because of an announcement from an AS at
round ``r`` is stamped ``r + 1`` — i.e. the number of AS-hops the
triggering news travelled, which is the natural unit of BGP
propagation time.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.bgp.decision import preference_key
from repro.bgp.policy import ExportPolicy
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import DEFAULT_PREFIX, Route
from repro.exceptions import ConvergenceError, SimulationError, UnknownASError
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import PrefClass, Relationship

__all__ = ["PropagationEngine", "PropagationOutcome", "PathModifier", "ImportFilter"]

#: A path transformation applied by an AS to the route it re-announces.
#: Receives the AS-PATH currently in use (not yet including the
#: announcing AS) and returns the possibly modified path.
PathModifier = Callable[[tuple[int, ...]], tuple[int, ...]]

#: A receiver-side import filter: called with (sender ASN, offered
#: AS-PATH); returning False rejects the offer before the decision
#: process.  This is the hook defensive route-vetting policies (e.g.
#: PGBGP-style cautious adoption) plug into.
ImportFilter = Callable[[int, tuple[int, ...]], bool]


@dataclass
class PropagationOutcome:
    """The converged routing state for one prefix.

    ``best`` maps every AS to its selected route (``None`` when the AS
    has no route to the prefix).  ``adj_rib_in`` maps each AS to the
    offer currently announced by each neighbour — an ``(as_path,
    pref_class)`` pair, or ``None`` for no offer / withdrawn.  The
    class rides along with the offer because sibling-learned routes
    inherit the class the sibling assigned (siblings are one
    organisation), so the receiver cannot derive it from the
    relationship alone.  ``adoption_round`` is the logical propagation
    round at which each AS last changed its best route (0 = unchanged
    since the start state).
    """

    prefix: str
    origin: int
    best: dict[int, Route | None]
    adj_rib_in: dict[int, dict[int, tuple[tuple[int, ...], PrefClass] | None]]
    adoption_round: dict[int, int] = field(default_factory=dict)
    rounds: int = 0

    def path_of(self, asn: int) -> tuple[int, ...] | None:
        """The AS-PATH ``asn`` uses towards the prefix (``None`` if unreachable)."""
        route = self.best.get(asn)
        return route.path if route is not None else None

    def reachable_ases(self) -> list[int]:
        """ASes that hold a route to the prefix (including the origin)."""
        return [asn for asn, route in self.best.items() if route is not None]

    def ases_traversing(self, transit: int) -> list[int]:
        """ASes whose selected path traverses ``transit`` (excluding itself)."""
        result = []
        for asn, route in self.best.items():
            if asn != transit and route is not None and transit in route.path:
                result.append(asn)
        return result

    def clone(self) -> "PropagationOutcome":
        """Deep-enough copy for use as a warm start."""
        return PropagationOutcome(
            prefix=self.prefix,
            origin=self.origin,
            best=dict(self.best),
            adj_rib_in={asn: dict(offers) for asn, offers in self.adj_rib_in.items()},
            adoption_round=dict(self.adoption_round),
            rounds=self.rounds,
        )


class PropagationEngine:
    """Single-prefix BGP propagation over an :class:`ASGraph`.

    The engine pre-compiles adjacency and preference tables once, then
    answers any number of :meth:`propagate` calls (different origins,
    prepending schedules, attackers) against the same topology.
    """

    def __init__(self, graph: ASGraph, *, max_activations: int = 50) -> None:
        """``max_activations`` bounds the worklist to that many
        activations *per AS* before :class:`ConvergenceError` is raised
        (valley-free configurations converge in a handful)."""
        if max_activations < 1:
            raise SimulationError("max_activations must be positive")
        self._graph = graph
        self._max_activations = max_activations
        # Pre-compiled adjacency: for each AS, a tuple of
        # (neighbor, role-of-neighbor-relative-to-AS, pref-of-routes-from-neighbor).
        self._adjacency: dict[int, tuple[tuple[int, Relationship, PrefClass], ...]] = {}
        for asn in graph:
            entries = []
            for neighbor in sorted(graph.neighbors_of(asn)):
                role = graph.relationship(asn, neighbor)
                entries.append((neighbor, role, PrefClass.for_relationship(role)))
            self._adjacency[asn] = tuple(entries)

    @property
    def graph(self) -> ASGraph:
        return self._graph

    # ------------------------------------------------------------------
    def propagate(
        self,
        origin: int,
        *,
        prefix: str = DEFAULT_PREFIX,
        prepending: PrependingPolicy | None = None,
        modifiers: Mapping[int, PathModifier] | None = None,
        export_policy: ExportPolicy | None = None,
        warm_start: PropagationOutcome | None = None,
        seed_ases: Iterable[int] | None = None,
        import_filters: Mapping[int, ImportFilter] | None = None,
    ) -> PropagationOutcome:
        """Run propagation of ``origin``'s prefix to a routing fixpoint.

        ``prepending`` supplies per-neighbour padding counts (default:
        nobody prepends).  ``modifiers`` maps AS numbers to path
        transformations applied when that AS re-announces (the attack
        hook).  ``export_policy`` defaults to strict valley-free export.

        With ``warm_start`` the engine resumes from a previously
        converged outcome (for the same origin/prefix) and only
        re-announces from ``seed_ases`` (default: the modifier ASes and
        policy violators) — adoption rounds then count from the moment
        the attack begins, which Figure 14's timing analysis needs.

        ``import_filters`` maps an AS to a receiver-side vetting
        function: offers it returns False for never enter that AS's
        decision process (the deployment hook for defensive policies).
        """
        if origin not in self._adjacency:
            raise UnknownASError(origin)
        prepending = prepending or PrependingPolicy()
        modifiers = dict(modifiers or {})
        export_policy = export_policy or ExportPolicy()
        import_filters = dict(import_filters or {})
        for asn in modifiers:
            if asn not in self._adjacency:
                raise UnknownASError(asn)

        if warm_start is not None:
            if warm_start.origin != origin or warm_start.prefix != prefix:
                raise SimulationError(
                    "warm start must come from the same origin and prefix"
                )
            state = warm_start.clone()
            best = state.best
            adj_rib_in = state.adj_rib_in
            adoption: dict[int, int] = {}
            if seed_ases is None:
                seed = set(modifiers) | set(export_policy.violators)
            else:
                seed = set(seed_ases)
            if not seed:
                raise SimulationError(
                    "warm start requires seed ASes (modifiers, violators, or explicit)"
                )
            initial = sorted(seed)
        else:
            best = {asn: None for asn in self._adjacency}
            best[origin] = Route(prefix, (), None, PrefClass.ORIGIN)
            adj_rib_in = {asn: {} for asn in self._adjacency}
            adoption = {origin: 0}
            initial = [origin]

        # Round stamp of the news each AS would currently announce.
        round_of: dict[int, int] = {asn: 0 for asn in initial}
        queue: deque[int] = deque(initial)
        queued: set[int] = set(initial)
        operations = 0
        budget = self._max_activations * max(1, len(self._adjacency))
        max_round = 0
        while queue:
            operations += 1
            if operations > budget:
                raise ConvergenceError(operations)
            sender = queue.popleft()
            queued.discard(sender)
            route = best[sender]
            sender_round = round_of.get(sender, 0)
            sender_modifier = modifiers.get(sender)
            for neighbor, role, _pref in self._adjacency[sender]:
                offer = self._make_offer(
                    sender, neighbor, role, route,
                    sender_modifier, prepending, export_policy,
                )
                rib = adj_rib_in[neighbor]
                if rib.get(sender) == offer:
                    continue
                rib[sender] = offer
                if neighbor == origin:
                    continue  # the owner always keeps its own route
                new_best = self._decide(
                    neighbor, prefix, rib, import_filters.get(neighbor)
                )
                if new_best == best[neighbor]:
                    continue
                best[neighbor] = new_best
                stamp = sender_round + 1
                adoption[neighbor] = stamp
                round_of[neighbor] = stamp
                max_round = max(max_round, stamp)
                if neighbor not in queued:
                    queue.append(neighbor)
                    queued.add(neighbor)

        return PropagationOutcome(
            prefix=prefix,
            origin=origin,
            best=best,
            adj_rib_in=adj_rib_in,
            adoption_round=adoption,
            rounds=max_round,
        )

    # ------------------------------------------------------------------
    def _make_offer(
        self,
        sender: int,
        neighbor: int,
        neighbor_role: Relationship,
        route: Route | None,
        modifier: PathModifier | None,
        prepending: PrependingPolicy,
        export_policy: ExportPolicy,
    ) -> tuple[tuple[int, ...], PrefClass] | None:
        """The ``(as_path, receiver_class)`` that ``sender`` offers
        ``neighbor``, or ``None`` when nothing is exported.

        ``receiver_class`` is the local-preference class the receiver
        will assign: normally derived from its relationship to the
        sender, but a sibling inherits the sender's own class — two
        sibling ASNs are one organisation, so a customer route stays a
        customer route (and stays exportable upward) when it crosses
        the sibling link, while a provider route crossing it must not
        suddenly become exportable.  The inheritance also keeps the
        iteration convergent: un-inherited sibling leaks re-export
        provider-learned routes upstream, which creates genuine
        dispute wheels (persistent oscillation).
        """
        if route is None:
            return None
        if not export_policy.allows_export(sender, neighbor_role, route.pref):
            return None
        base = route.path
        if modifier is not None:
            base = modifier(base)
        count = prepending.padding(sender, neighbor)
        path_out = (sender,) * count + base
        # Receiver-side loop prevention: an AS never accepts a path
        # already containing its own ASN.
        if neighbor in path_out:
            return None
        if neighbor_role is Relationship.SIBLING:
            receiver_class = route.pref
        else:
            # The sender's CUSTOMER is the receiver, for whom the sender
            # is a PROVIDER, and vice versa; peers stay peers.
            receiver_class = PrefClass.for_relationship(neighbor_role.inverse())
        return path_out, receiver_class

    def _decide(
        self,
        receiver: int,
        prefix: str,
        offers: Mapping[int, tuple[tuple[int, ...], PrefClass] | None],
        import_filter: ImportFilter | None = None,
    ) -> Route | None:
        """Run the decision process over ``receiver``'s Adj-RIB-in."""
        best: Route | None = None
        best_key: tuple[int, int, int] | None = None
        for neighbor, _role, _pref in self._adjacency[receiver]:
            offer = offers.get(neighbor)
            if offer is None:
                continue
            path, pref = offer
            if import_filter is not None and not import_filter(neighbor, path):
                continue
            candidate = Route(prefix, path, neighbor, pref)
            key = preference_key(candidate)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        return best
