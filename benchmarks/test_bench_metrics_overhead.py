"""Wall-clock guard: telemetry must be free when it is switched off.

The instrumentation contract (see ``src/repro/telemetry``) is that a
run without a registry — or with a disabled one — pays nothing in the
hot loops beyond one hoisted boolean check.  This bench pins that
promise on the Figure-9 λ-sweep:

* the *disabled* sweep (a ``RunMetrics(enabled=False)`` registry
  threaded through the whole stack) stays within 5% of the pristine
  sweep that never saw a registry;
* the instrumented stack keeps the runner's ≥2× speedup envelope over
  the seed-commit engine (``benchmarks/_seed_engine.py``), so the
  telemetry layer cannot silently eat the PR-1 performance win;
* the *enabled* overhead is printed for the record (it is allowed to
  cost something — it is measured, not asserted, because recording
  real counters is genuine work).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import _seed_engine

from repro.attack.interception import simulate_interception
from repro.experiments.base import build_world
from repro.experiments.sweeps import padding_sweep
from repro.telemetry import RunMetrics
from repro.topology.tiers import customer_cone

SCALE = 0.25
PADDINGS = tuple(range(1, 9))
REPEATS = 5


def _fig09_pair(world) -> tuple[int, int]:
    graph = world.graph
    by_cone = sorted(
        world.topology.tier1, key=lambda t: (-len(customer_cone(graph, t)), t)
    )
    return by_cone[0], by_cone[1]


def _best_of(fn):
    best, value = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _seed_sweep(engine, victim: int, attacker: int):
    rows = []
    for padding in PADDINGS:
        result = simulate_interception(
            engine, victim=victim, attacker=attacker, origin_padding=padding
        )
        rows.append(
            (
                padding,
                100 * result.report.before_fraction,
                100 * result.report.after_fraction,
            )
        )
    return rows


def test_bench_disabled_metrics_are_free():
    world = build_world(seed=7, scale=SCALE)
    attacker, victim = _fig09_pair(world)
    sweep = lambda metrics: padding_sweep(  # noqa: E731
        world.engine,
        victim=victim,
        attacker=attacker,
        paddings=PADDINGS,
        metrics=metrics,
    )

    # Interleave-free warmup, then best-of timings.
    sweep(None)
    pristine_time, pristine_rows = _best_of(lambda: sweep(None))
    disabled_time, disabled_rows = _best_of(
        lambda: sweep(RunMetrics(enabled=False))
    )
    enabled_time, enabled_rows = _best_of(lambda: sweep(RunMetrics()))

    assert disabled_rows == pristine_rows == enabled_rows

    seed = _seed_engine.PropagationEngine(world.graph)
    seed_time, seed_rows = _best_of(lambda: _seed_sweep(seed, victim, attacker))
    assert seed_rows == pristine_rows

    disabled_overhead = disabled_time / pristine_time - 1
    enabled_overhead = enabled_time / pristine_time - 1
    speedup = seed_time / disabled_time
    print(
        f"\nfig09 λ-sweep (scale={SCALE}): pristine {pristine_time * 1e3:.1f} ms, "
        f"disabled metrics {disabled_time * 1e3:.1f} ms "
        f"({disabled_overhead:+.1%}), "
        f"enabled metrics {enabled_time * 1e3:.1f} ms "
        f"({enabled_overhead:+.1%}), "
        f"seed engine {seed_time * 1e3:.1f} ms "
        f"(speedup with metrics plumbed: {speedup:.2f}x)"
    )
    # 5% relative + 2 ms absolute slack absorbs scheduler jitter on
    # small hosts; a real per-iteration cost shows up far above this.
    assert disabled_time <= pristine_time * 1.05 + 0.002, (
        f"disabled metrics cost {disabled_overhead:+.1%} — the hoisted "
        "branch contract is broken"
    )
    assert speedup >= 2.0, (
        f"runner speedup with metrics plumbing regressed: {speedup:.2f}x < 2x"
    )
