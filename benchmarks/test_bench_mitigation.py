"""Mitigation-loop benchmarks: fault-layer quiet-path overhead and
closed-loop recovery cost.

Two records land in ``BENCH_engine.json``:

* ``mitigation_quiet_overhead`` — the acceptance gate.  The fault
  layer's entire cost on an untolerant pipeline is one predicate in
  :meth:`StreamingPipeline.offer`; this benchmark times the PR 8
  ingestion workload three ways — the pre-fault-layer admit path
  (``_admit`` direct, the exact code PR 8 shipped), the quiet path
  (``offer`` with the fault layer disarmed), and the armed-but-idle
  tolerant path (empty :class:`FeedFaultPlan`).  The quiet path must
  stay within 5% of the admit path; the tolerant arm is recorded
  ungated (it pays per-update validation by design).
* ``mitigation_recovery`` — the closed loop's cost profile: wall-clock
  of the controller's λ'-derivation + delta re-convergence, with the
  recovery clocks and residual pollution alongside.
"""

from __future__ import annotations

import time

from test_bench_engine_perf import _merge_bench

from repro.bgp.engine import PropagationEngine
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.pipeline import (
    FeedFaultPlan,
    PipelineDetector,
    StreamingPipeline,
    split_stream,
)
from repro.measurement.churn import ChurnConfig, synthesize_churn_stream
from repro.mitigation import MitigationController, MitigationPolicy, run_closed_loop

import pytest

MONITORS = 800
UPDATES = 30_000
OVERHEAD_GATE_PCT = 5.0


@pytest.fixture(scope="module")
def churn():
    """The PR 8 ingestion workload: background churn at RouteViews scale."""
    return synthesize_churn_stream(
        ChurnConfig(
            seed=7, scale=1.0, monitors=MONITORS, updates=UPDATES, attack=False
        )
    )


@pytest.fixture(scope="module")
def attack_churn(churn):
    """A smaller attack-bearing stream for the closed-loop record."""
    return synthesize_churn_stream(
        ChurnConfig(
            seed=7, scale=1.0, monitors=200, updates=6_000, padding=3
        ),
        world=churn.world,
    )


def _pipeline(stream, **kwargs):
    detector = PipelineDetector(
        ASPPInterceptionDetector(stream.world.graph), stream.world.graph
    )
    pipeline = StreamingPipeline(
        detector, feeds=4, batch=64, capacity=256, **kwargs
    )
    for view in stream.baselines.values():
        pipeline.prime(view)
    return pipeline


def _time_ingest(stream, streams, *, via_admit=False, repeats=3, **kwargs):
    """Min-of-N over the full multifeed run (fresh pipeline per rep)."""
    best = None
    for _ in range(repeats):
        pipeline = _pipeline(stream, **kwargs)
        enter = pipeline._admit if via_admit else pipeline.offer
        start = time.perf_counter()
        for feed_id, feed in enumerate(streams):
            for item in feed:
                enter(feed_id, item)
        pipeline.flush()
        elapsed = time.perf_counter() - start
        assert pipeline.processed == len(stream.messages)
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_bench_quiet_path_overhead(churn):
    """Acceptance gate: the fault layer costs <= 5% on the quiet path."""
    streams = split_stream(churn.messages, 4)
    updates = len(churn.messages)

    _time_ingest(churn, streams, repeats=1)  # untimed warmup for the first arm
    admit_s = _time_ingest(churn, streams, via_admit=True)
    quiet_s = _time_ingest(churn, streams)
    tolerant_s = _time_ingest(
        churn, streams, tolerant=True, fault_plan=FeedFaultPlan()
    )

    admit_ups = updates / admit_s
    quiet_ups = updates / quiet_s
    tolerant_ups = updates / tolerant_s
    overhead_pct = (quiet_s / admit_s - 1.0) * 100.0
    tolerant_pct = (tolerant_s / admit_s - 1.0) * 100.0
    _merge_bench(
        "mitigation_quiet_overhead",
        {
            "updates": updates,
            "monitors": MONITORS,
            "feeds": 4,
            "admit_ups": round(admit_ups),
            "quiet_ups": round(quiet_ups),
            "tolerant_idle_ups": round(tolerant_ups),
            "quiet_overhead_pct": round(overhead_pct, 2),
            "tolerant_idle_overhead_pct": round(tolerant_pct, 2),
            "gate": f"quiet <= {OVERHEAD_GATE_PCT}%",
        },
    )
    print(
        f"\nquiet-path overhead: admit {admit_ups:,.0f}/s, "
        f"quiet {quiet_ups:,.0f}/s ({overhead_pct:+.2f}%), "
        f"tolerant-idle {tolerant_ups:,.0f}/s ({tolerant_pct:+.2f}%)"
    )
    assert overhead_pct <= OVERHEAD_GATE_PCT, (
        f"fault-layer quiet path costs {overhead_pct:.2f}% "
        f"(gate {OVERHEAD_GATE_PCT}%; {quiet_ups:,.0f} vs {admit_ups:,.0f} "
        f"updates/sec)"
    )


def test_bench_closed_loop_recovery(attack_churn):
    """Record the closed loop's recovery profile (ungated)."""
    report = run_closed_loop(attack_churn)
    step = report.step
    assert step.detected, "the benchmark stream must alarm"
    assert step.time_to_recover > 0

    # Wall-clock of the countermeasure alone: λ' derivation from the
    # cached canonical baseline + one delta re-convergence.
    engine = PropagationEngine(attack_churn.world.graph)
    controller = MitigationController(engine, MitigationPolicy())
    controller.mitigate(attack_churn)  # warm the baseline cache
    best = None
    for _ in range(3):
        start = time.perf_counter()
        controller.mitigate(attack_churn)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed

    _merge_bench(
        "mitigation_recovery",
        {
            "topology_ases": len(attack_churn.world.graph.ases),
            "strategy": step.strategy,
            "padding": f"{step.padding_before} -> {step.padding_after}",
            "time_to_detect_updates": step.time_to_detect,
            "time_to_recover_rounds": step.time_to_recover,
            "touched_ases": step.touched_ases,
            "pollution_attack": round(step.pollution_attack, 4),
            "pollution_residual": round(step.pollution_residual, 4),
            "mitigate_ms": round(best * 1000.0, 2),
        },
    )
    print(
        f"\nclosed-loop recovery: {step.time_to_recover} rounds, "
        f"{step.touched_ases} ASes, mitigate {best * 1000.0:.2f} ms, "
        f"residual {step.pollution_residual:.1%} "
        f"(attack {step.pollution_attack:.1%})"
    )
