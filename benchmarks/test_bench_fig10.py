"""Bench: regenerate Figure 10 (AT&T hijacks Facebook analogue, λ sweep)."""


def test_bench_fig10_tier1_vs_tier3(run_recorded):
    result = run_recorded("fig10")
    after = {row[0]: row[2] for row in result.rows}
    # Paper shape: steep growth with λ (82% at λ=2, >99% beyond on the
    # full Internet graph); our smaller graph shields more ASes behind
    # the victim's other providers, so the plateau is high but not total.
    assert after[2] > after[1]
    assert after[4] > after[2]
    assert result.summary["plateau_pct"] > 50
    assert after[8] >= after[6] - 1e-9
