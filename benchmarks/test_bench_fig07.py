"""Bench: regenerate Figure 7 (Tier-1 vs Tier-1 pollution, λ=3)."""


def test_bench_fig07_tier1_pairs(run_recorded):
    result = run_recorded("fig07")
    # Paper: pollution around 40% overall with a weak tail below 5%.
    assert 20 <= result.summary["mean_pollution_pct"] <= 60
    assert result.summary["max_pollution_pct"] >= 50
    assert result.summary["weak_instances_below_5pct"] >= 1
    after = [row[4] for row in result.rows]
    assert after == sorted(after, reverse=True)
