"""Ablation bench: detector precision on legitimate prepending changes."""


def test_bench_ablation_false_positives(run_recorded):
    result = run_recorded("ablation-fp")
    # The paper's design requirement: differentiate the malicious case
    # from legitimate prepending changes.  The direct symptom must
    # never fire on honest traffic engineering.
    assert result.summary["high_confidence_false_alarms"] == 0
    # And the stress must actually have exercised the detector.
    assert result.summary["events"] >= 100
