"""Ablation bench: scale sensitivity of the headline statistics."""


def test_bench_ablation_scale(run_recorded):
    result = run_recorded("ablation-scale")
    pollution = [row[2] for row in result.rows]
    accuracy = [row[4] for row in result.rows]
    # Both statistics stay within a factor ~2 band across a 4x range of
    # topology sizes: the attack-impact results are scale-stable and
    # detection accuracy tracks the monitor *fraction*, not the count.
    assert max(pollution) <= 2.5 * min(pollution)
    assert max(accuracy) <= 2.5 * max(1e-9, min(accuracy))
