"""Bench: regenerate Figure 14 (fraction polluted before detection)."""


def test_bench_fig14_pollution_before_detection(run_recorded):
    result = run_recorded("fig14")
    # Paper: detection is early — 80% of experiments are caught with at
    # most ~37% of ASes polluted.  In our runs detected attacks are
    # caught almost immediately (the CDF at 0.37 tracks the detection
    # rate); undetected attacks count at fraction 1.0.
    detection_rate = (
        result.summary["detected_attacks"] / result.summary["effective_attacks"]
    )
    assert result.summary["cdf_at_0.37"] >= detection_rate - 0.1
    assert result.summary["detected_attacks"] > 0
