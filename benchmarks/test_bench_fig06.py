"""Bench: regenerate Figure 6 (number of duplicate ASNs)."""


def test_bench_fig06_padding_counts(run_recorded):
    result = run_recorded("fig06")
    # Paper: 34% of prepended routes repeat twice, 22% three times,
    # ~1% above ten, tail reaching the high thirties.
    assert 0.2 <= result.summary["table_fraction_pad2"] <= 0.5
    assert 0.1 <= result.summary["table_fraction_pad3"] <= 0.35
    assert result.summary["table_fraction_above10"] < 0.08
    assert result.summary["max_padding_observed"] >= 10
