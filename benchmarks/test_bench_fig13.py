"""Bench: regenerate Figure 13 (detection accuracy vs number of monitors)."""


def test_bench_fig13_detection_accuracy(run_recorded):
    result = run_recorded("fig13")
    accuracies = [row[2] for row in result.rows]
    # Paper shape: accuracy rises monotonically with the monitor count
    # and saturates high (92% @ 70 / >99% @ 150 on the ~33k-AS graph;
    # our graph is ~20x smaller so saturation needs a proportionally
    # larger monitor fraction).
    assert accuracies == sorted(accuracies)
    assert accuracies[-1] > 75
    assert accuracies[-1] > 2 * accuracies[0]
    # The real-time (streaming) series dominates the converged-snapshot
    # series at every monitor count: mid-propagation evidence only helps.
    for _, _, batch_accuracy, streaming_accuracy in result.rows:
        assert streaming_accuracy >= batch_accuracy - 1e-9
