"""Bench: regenerate Figure 9 (Sprint hijacks AT&T analogue, λ sweep)."""


def test_bench_fig09_tier1_vs_tier1(run_recorded):
    result = run_recorded("fig09")
    after = {row[0]: row[2] for row in result.rows}
    before = {row[0]: row[1] for row in result.rows}
    # Paper shape: λ=1 is the natural share, a steep jump by λ=2-3,
    # saturation at the attacker's reach, flat beyond λ=5.
    assert abs(after[1] - before[1]) < 1.0
    assert after[2] >= after[1] + 10
    assert after[4] >= after[2]
    assert abs(after[8] - after[5]) < 5.0
    assert after[8] <= result.summary["attacker_cone_pct"] + 5
