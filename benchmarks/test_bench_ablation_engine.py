"""Ablation bench: worklist engine vs the paper's three-phase algorithm."""


def test_bench_ablation_engine(run_recorded):
    result = run_recorded("ablation-engine")
    # The general engine must agree with the Figure-2 oracle everywhere;
    # the cost of its generality stays within an order of magnitude.
    assert result.summary["disagreements"] == 0
    assert result.summary["engine_over_oracle"] < 10
