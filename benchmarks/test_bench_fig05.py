"""Bench: regenerate Figure 5 (fraction of routes with prepending)."""


def test_bench_fig05_prepending_fraction(run_recorded):
    result = run_recorded("fig05")
    # Paper: ~13% of table routes carry prepending on average, and the
    # updates series sits right of the tables series.  Known deviation
    # (see EXPERIMENTS.md): on our synthetic substrate the Tier-1 curve
    # tracks the all-monitors curve instead of sitting right of it —
    # the real-world effect came from table-size diversity our equal-
    # visibility world does not model — so we only require the Tier-1
    # mean to stay in the same band.
    mean_all = result.summary["mean_fraction_all_table"]
    assert 0.05 <= mean_all <= 0.3
    assert result.summary["mean_fraction_tier1_table"] > 0.6 * mean_all
    assert result.summary["mean_fraction_all_updates"] > mean_all
