"""Sustained-throughput benchmarks of the streaming detection pipeline.

The workload is the churn synthesizer's RouteViews-scale mix: 800
monitor feeds (RouteViews aggregates 600-900 peers), a full-scale
topology, and a ~30k-update background-flap stream.  Three disciplines
are timed and recorded in ``BENCH_engine.json``:

* ``legacy_ups`` — the seed detector
  (:meth:`StreamingDetector.consume_all` with its historical per-update
  snapshot copies), the semantic oracle and the gate's denominator;
* ``pipeline_ups`` — :meth:`PipelineDetector.consume_batch` over the
  identical stream, metrics off (the sustained hot path);
* ``multifeed_ups`` — the same stream split across 4 bounded feed
  queues and re-merged by sequence (the deployment shape), recorded
  ungated alongside its backpressure counters.

The ≥10x acceptance gate rides on the single-stream consume path over
**background churn** (``attack=False``): an attack burst triggers the
full Figure-4 scan, an O(monitors x path) cost both implementations
share by construction (equivalence-tested), which at 800 monitors
would swamp the per-update machinery this PR actually rebuilt.  Alarm
parity on an attack-bearing stream is asserted separately below before
any timing is trusted.

p50/p99 per-update latency comes from a separate instrumented pass
(the latency histogram itself costs two ``perf_counter`` calls per
update, so it is never measured on the throughput pass).
"""

from __future__ import annotations

import random
import time

from test_bench_engine_perf import _merge_bench

from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.pipeline import PipelineDetector, StreamingPipeline, split_stream
from repro.detection.streaming import StreamingDetector
from repro.measurement.churn import ChurnConfig, synthesize_churn_stream
from repro.telemetry.metrics import RunMetrics

import pytest

MONITORS = 800
UPDATES = 30_000
SPEEDUP_GATE = 10.0


def _min_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _min_of_consume(repeats, make_detector, consume_name, messages):
    """Min-of-N over the *consume* call alone: a fresh primed detector
    is built per repeat (outside the clock), so every rep replays the
    identical cold-table stream."""
    best = None
    result = None
    for _ in range(repeats):
        consume = getattr(make_detector(), consume_name)
        start = time.perf_counter()
        result = consume(messages)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


@pytest.fixture(scope="module")
def churn():
    """The gated workload: pure background churn at RouteViews scale."""
    return synthesize_churn_stream(
        ChurnConfig(
            seed=7, scale=1.0, monitors=MONITORS, updates=UPDATES, attack=False
        )
    )


def _legacy(stream):
    detector = StreamingDetector(
        ASPPInterceptionDetector(stream.world.graph), copy_views=True
    )
    for view in stream.baselines.values():
        detector.prime(view)
    return detector


def _pipeline(stream, metrics=None):
    detector = PipelineDetector(
        ASPPInterceptionDetector(stream.world.graph),
        stream.world.graph,
        metrics=metrics,
    )
    for view in stream.baselines.values():
        detector.prime(view)
    return detector


def test_bench_streaming_throughput(churn):
    """The PR's acceptance gate: >=10x sustained updates/sec over the
    seed ``consume_all`` path, p50/p99 reported alongside."""
    messages = churn.plain_messages()
    graph = churn.world.graph

    # Alarm parity first, on a stream that actually alarms: same world,
    # attack burst + heavily padded backups, every trigger path live.
    alarmed = synthesize_churn_stream(
        ChurnConfig(
            seed=7,
            scale=1.0,
            monitors=200,
            updates=4_000,
            backup_padding=4,
        ),
        world=churn.world,
    )
    oracle = StreamingDetector(ASPPInterceptionDetector(graph), copy_views=True)
    fast = PipelineDetector(ASPPInterceptionDetector(graph), graph)
    for view in alarmed.baselines.values():
        oracle.prime(view)
        fast.prime(view)
    expected = oracle.consume_all(alarmed.plain_messages())
    assert fast.consume_batch(alarmed.plain_messages()) == expected
    assert expected, "the attack-bearing stream must raise alarms"

    legacy_s, legacy_alarms = _min_of_consume(
        3, lambda: _legacy(churn), "consume_all", messages
    )
    pipeline_s, pipeline_alarms = _min_of_consume(
        3, lambda: _pipeline(churn), "consume_batch", messages
    )
    assert legacy_alarms == pipeline_alarms == []

    # Instrumented pass: per-update latency histogram (never timed).
    metrics = RunMetrics()
    instrumented = _pipeline(churn, metrics=metrics)
    instrumented.consume_batch(messages)
    latency = metrics.histograms["detection.pipeline.update_latency_us"]
    assert latency.count == len(messages)

    legacy_ups = len(messages) / legacy_s
    pipeline_ups = len(messages) / pipeline_s
    speedup = legacy_ups and pipeline_ups / legacy_ups
    _merge_bench(
        "streaming_throughput",
        {
            "updates": len(messages),
            "monitors": MONITORS,
            "topology_ases": len(graph.ases),
            "legacy_ups": round(legacy_ups),
            "pipeline_ups": round(pipeline_ups),
            "speedup": round(speedup, 1),
            "p50_us": round(latency.quantile(0.5), 2),
            "p99_us": round(latency.quantile(0.99), 2),
            "gate": f">= {SPEEDUP_GATE}x",
        },
    )
    print(
        f"\nstreaming throughput: legacy {legacy_ups:,.0f}/s, "
        f"pipeline {pipeline_ups:,.0f}/s ({speedup:.1f}x), "
        f"p50 {latency.quantile(0.5):.1f}us p99 {latency.quantile(0.99):.1f}us"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"pipeline speedup {speedup:.1f}x fell below the {SPEEDUP_GATE}x gate "
        f"({pipeline_ups:,.0f} vs {legacy_ups:,.0f} updates/sec)"
    )


def test_bench_multifeed_pipeline(churn):
    """The deployment shape: 4 bounded feeds, batch=64, sequence-order
    merge.  Recorded (ungated) with its backpressure telemetry; alarms
    must match the serial oracle exactly."""
    messages = churn.plain_messages()
    streams = split_stream(churn.messages, 4, rng=random.Random(3))

    def run():
        metrics = RunMetrics()
        pipeline = StreamingPipeline(
            _pipeline(churn),
            feeds=4,
            batch=64,
            capacity=256,
            policy="block",
            metrics=metrics,
        )
        alarms = pipeline.run(streams, rng=random.Random(11))
        return pipeline, metrics, alarms

    elapsed, (pipeline, metrics, alarms) = _min_of(3, run)
    assert alarms == []
    assert pipeline.processed == len(messages)

    queue_depth = metrics.histograms["detection.pipeline.queue_depth"]
    multifeed_ups = len(messages) / elapsed
    _merge_bench(
        "streaming_multifeed",
        {
            "updates": len(messages),
            "feeds": 4,
            "batch": 64,
            "policy": "block",
            "multifeed_ups": round(multifeed_ups),
            "blocked": pipeline.blocked,
            "dropped": pipeline.dropped,
            "parked": pipeline.parked,
            "queue_depth_p99": round(queue_depth.quantile(0.99), 1),
        },
    )
    print(f"\nmultifeed pipeline: {multifeed_ups:,.0f} updates/sec")
