"""Bench: regenerate Figure 12 (small AS hijacks small AS, λ sweep)."""


def test_bench_fig12_stub_vs_stub(run_recorded):
    result = run_recorded("fig12")
    # Paper: valley-free impact is tiny; violating the export rule
    # becomes significant as the victim pads more.
    assert result.summary["valley_free_plateau_pct"] < 10
    assert result.summary["violate_plateau_pct"] > 30
    violating = {row[0]: row[2] for row in result.rows}
    assert violating[8] >= violating[2]
