"""Bench: regenerate Figure 11 (content AS hijacks a Tier-1, λ sweep)."""


def test_bench_fig11_stub_vs_tier1(run_recorded):
    result = run_recorded("fig11")
    no_chain = {row[0]: row[1] for row in result.rows}
    valley_free = {row[0]: row[2] for row in result.rows}
    violating = {row[0]: row[3] for row in result.rows}
    # Paper: without the sibling/CDN chain the valley-free attack is
    # tiny; with it, pollution is surprisingly wide (~38% in the
    # paper's instance); a policy-violating attacker is at least as
    # effective.
    assert no_chain[8] < 10
    assert result.summary["valley_free_plateau_pct"] > 15
    assert valley_free[8] >= valley_free[2]
    assert violating[8] >= valley_free[8] - 1e-9
