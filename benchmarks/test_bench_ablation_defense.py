"""Ablation bench: mitigation effectiveness (DESIGN.md defence story)."""


def test_bench_ablation_defense(run_recorded):
    result = run_recorded("ablation-defense")
    # Cautious adoption strictly shrinks the attack's mean gain as
    # deployment grows; the victim's reactive padding reduction removes
    # the gain entirely.
    cautious = [row[2] for row in result.rows if row[0] == "cautious adoption"]
    assert cautious[0] == result.summary["undefended_mean_gain_pct"] or cautious[0] > 0
    assert cautious[-1] < cautious[0]
    assert all(b <= a + 0.5 for a, b in zip(cautious, cautious[1:]))
    assert abs(result.summary["reactive_mean_gain_pct"]) < 1e-9
