"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures at
full default scale, records the rendered rows under
``benchmarks/results/<id>.txt`` (the inputs to EXPERIMENTS.md), prints
them (visible with ``pytest -s``), and asserts the paper's qualitative
shape so a silent regression fails the bench.

Experiments run once per benchmark (``pedantic`` with a single round):
the interesting number is the wall-clock of one full regeneration, not
a micro-benchmark distribution.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import REGISTRY
from repro.experiments.base import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


def record(result: ExperimentResult) -> None:
    """Persist and print a regenerated artefact."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(result.to_text() + "\n")
    print("\n" + result.to_text())


@pytest.fixture()
def run_recorded(benchmark):
    """Run a registered experiment once under the benchmark timer."""

    def runner(experiment_id: str, config=None) -> ExperimentResult:
        config_factory, run = REGISTRY[experiment_id]
        cfg = config if config is not None else config_factory()
        result = benchmark.pedantic(run, args=(cfg,), rounds=1, iterations=1)
        record(result)
        return result

    return runner
