"""Micro-benchmarks of the propagation engine itself.

Unlike the figure benchmarks (one full experiment per run), these use
pytest-benchmark's statistics properly: many rounds of a single
propagation, at three topology scales, plus the warm-start attack path
— each measured for **both** backends, so the compiled core's envelope
is tracked against the reference interpreter it replaced.

``test_bench_fig09_sweep_speedup`` is the regression gate: it times the
full Figure-9 λ-sweep pipeline (canonical baseline, cached λ
derivations, eight warm-started attacks, pollution reports) on both
backends, asserts the rows are bit-identical, writes the measurement to
``BENCH_engine.json`` at the repository root, and fails if the compiled
backend drops below 1.5× the reference.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.attack.interception import ASPPInterceptionAttack
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.experiments.base import build_world
from repro.experiments.sweeps import padding_sweep
from repro.topology.tiers import customer_cone

BACKENDS = ("reference", "compiled")

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _merge_bench(entry: str, payload: dict) -> None:
    """Read-modify-write one named record of ``BENCH_engine.json`` —
    several benchmarks share the file, so nobody may clobber it whole."""
    records: dict = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            existing = {}
        if isinstance(existing, dict):
            if "benchmark" in existing:  # legacy single-record layout
                records[str(existing["benchmark"])] = {
                    k: v for k, v in existing.items() if k != "benchmark"
                }
            else:
                records = existing
    records[entry] = payload
    BENCH_JSON.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def worlds():
    return {scale: build_world(seed=7, scale=scale) for scale in (0.25, 0.5, 1.0)}


@pytest.fixture(scope="module")
def engines(worlds):
    return {
        (scale, backend): PropagationEngine(world.graph, backend=backend)
        for scale, world in worlds.items()
        for backend in BACKENDS
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scale", [0.25, 0.5, 1.0])
def test_bench_cold_propagation(benchmark, worlds, engines, scale, backend):
    world = worlds[scale]
    engine = engines[(scale, backend)]
    victim = world.topology.content[0]
    prepending = PrependingPolicy.uniform_origin(victim, 3)
    outcome = benchmark(engine.propagate, victim, prepending=prepending)
    assert outcome.best[victim] is not None
    reachable = sum(1 for route in outcome.best.values() if route is not None)
    assert reachable == len(world.graph)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_warm_start_attack(benchmark, worlds, engines, backend):
    world = worlds[1.0]
    engine = engines[(1.0, backend)]
    victim = world.topology.content[0]
    attacker = world.topology.tier1[0]
    prepending = PrependingPolicy.uniform_origin(victim, 3)
    baseline = engine.propagate(victim, prepending=prepending)
    modifier = ASPPInterceptionAttack(attacker=attacker, victim=victim).modifier()

    def attack_run():
        return engine.propagate(
            victim,
            prepending=prepending,
            modifiers={attacker: modifier},
            warm_start=baseline,
        )

    outcome = benchmark(attack_run)
    assert outcome.rounds >= 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_engine_construction(benchmark, worlds, backend):
    """Table pre-compilation cost (paid once per topology)."""
    graph = worlds[1.0].graph
    engine = benchmark(PropagationEngine, graph, backend=backend)
    assert engine.graph is graph


def _time_fig09_sweep(graph, backend, attacker, victim, repeats=3):
    """Min-of-N wall clock of the λ-sweep with a fresh engine per rep
    (a fresh engine per topology is exactly what the runner pays)."""
    best = None
    rows = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend=backend)
        start = time.perf_counter()
        rows = padding_sweep(
            engine, attacker=attacker, victim=victim, paddings=range(1, 9)
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, rows


def test_bench_fig09_sweep_speedup(worlds):
    """The compiled backend must hold >= 1.5x over the reference on the
    Figure-9 λ-sweep (the tentpole's acceptance gate is 2x; the CI bar
    leaves headroom for noisy shared runners)."""
    world = worlds[1.0]
    graph = world.graph
    tier1 = sorted(
        world.topology.tier1, key=lambda asn: -len(customer_cone(graph, asn))
    )
    attacker, victim = tier1[0], tier1[1]

    reference_s, reference_rows = _time_fig09_sweep(graph, "reference", attacker, victim)
    compiled_s, compiled_rows = _time_fig09_sweep(graph, "compiled", attacker, victim)
    assert compiled_rows == reference_rows, "backends disagree on sweep rows"

    speedup = reference_s / compiled_s
    _merge_bench(
        "fig09_lambda_sweep",
        {
            "topology_ases": len(graph),
            "reference_ms": round(reference_s * 1000, 2),
            "compiled_ms": round(compiled_s * 1000, 2),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\nfig09 sweep: reference {reference_s * 1000:.1f} ms, "
        f"compiled {compiled_s * 1000:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= 1.5, (
        f"compiled backend regressed to {speedup:.2f}x over reference "
        f"(floor is 1.5x)"
    )


def _time_fig09_recompute(graph, attacker, victim, repeats=3):
    """Min-of-N wall clock of the fig09 λ-sweep under the full-recompute
    discipline: every point converges its baseline cold and re-floods
    the whole topology for the attack — no cross-λ cache, no delta.
    This is what the sweep costs without any warm-reuse machinery."""
    from repro.attack.interception import simulate_interception

    best = None
    rows = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend="compiled")
        start = time.perf_counter()
        rows = []
        for padding in range(1, 9):
            prepending = PrependingPolicy.uniform_origin(victim, padding)
            baseline = engine.propagate(victim, prepending=prepending)
            result = simulate_interception(
                engine,
                victim=victim,
                attacker=attacker,
                origin_padding=padding,
                prepending=prepending,
                baseline=baseline,
            )
            rows.append(
                (
                    padding,
                    100 * result.report.before_fraction,
                    100 * result.report.after_fraction,
                )
            )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, rows


def _time_fig09_mode(graph, mode, attacker, victim, repeats=3):
    """Min-of-N wall clock of the production λ-sweep pipeline (shared
    baseline cache, uniform-λ derivations) under one engine mode."""
    best = None
    rows = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend="compiled", mode=mode)
        start = time.perf_counter()
        rows = padding_sweep(
            engine, attacker=attacker, victim=victim, paddings=range(1, 9)
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, rows


def test_bench_fig09_delta_speedup(worlds):
    """Delta mode on the fig09 λ-sweep, measured honestly.

    Figure 9 pits the two largest Tier-1s against each other, so the
    attacker's affected cone covers most of the topology (~78% of ASes
    on the seed world) and a delta flood does nearly as much work as a
    full one — the headline delta win lives on grids of small-cone
    attackers (see ``test_bench_grid_delta_speedup``, which carries the
    5x gate).  What delta must deliver *here* is (a) bit-identical rows
    and (b) a solid margin over the full-recompute discipline (cold
    baseline + whole-topology re-flood per point), without regressing
    the already-cached production pipeline.  The payload records all
    three disciplines so the provenance of every ratio is explicit; the
    CI floor is 1.4x over full recompute (measured 1.6-2.1x across
    runs, headroom for noisy shared runners).
    """
    world = worlds[1.0]
    graph = world.graph
    tier1 = sorted(
        world.topology.tier1, key=lambda asn: -len(customer_cone(graph, asn))
    )
    attacker, victim = tier1[0], tier1[1]

    recompute_s, recompute_rows = _time_fig09_recompute(graph, attacker, victim)
    full_s, full_rows = _time_fig09_mode(graph, "full", attacker, victim)
    delta_s, delta_rows = _time_fig09_mode(graph, "delta", attacker, victim)
    assert delta_rows == full_rows, "delta mode changed the sweep rows"
    assert delta_rows == recompute_rows, "delta mode disagrees with full recompute"

    speedup = recompute_s / delta_s
    _merge_bench(
        "fig09_delta_sweep",
        {
            "topology_ases": len(graph),
            "full_recompute_ms": round(recompute_s * 1000, 2),
            "full_pipeline_ms": round(full_s * 1000, 2),
            "delta_ms": round(delta_s * 1000, 2),
            "speedup_vs_recompute": round(speedup, 2),
            "speedup_vs_pipeline": round(full_s / delta_s, 2),
        },
    )
    print(
        f"\nfig09 delta: recompute {recompute_s * 1000:.1f} ms, "
        f"full pipeline {full_s * 1000:.1f} ms, delta {delta_s * 1000:.1f} ms, "
        f"{speedup:.2f}x vs recompute"
    )
    assert speedup >= 1.4, (
        f"delta mode at {speedup:.2f}x over full recompute on the fig09 "
        f"sweep (floor is 1.4x)"
    )
    assert delta_s <= full_s * 1.10, (
        f"delta mode regressed the cached pipeline: {delta_s * 1000:.1f} ms "
        f"vs {full_s * 1000:.1f} ms full"
    )


def _time_grid(graph, mode, pairs, repeats=3):
    """Min-of-N wall clock of a fixed-λ pair grid under one engine mode
    (fresh baseline cache per rep, engine construction excluded)."""
    from repro.experiments.sweeps import pair_grid

    best = None
    results = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend="compiled", mode=mode)
        start = time.perf_counter()
        results = pair_grid(engine, pairs, origin_padding=3)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, results


def _time_grid_recompute(graph, pairs, repeats=2):
    """Min-of-N wall clock of the grid under the per-pair full-recompute
    discipline: every cell converges its victim's baseline cold and
    runs the attack from it, with no cache shared between cells.  This
    is the reference oracle the golden grid test pins delta against,
    and what the grid costs without any reuse machinery."""
    from repro.attack.interception import simulate_interception
    from repro.runner import SweepPointResult

    best = None
    results = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend="compiled")
        start = time.perf_counter()
        results = []
        for attacker, victim in pairs:
            prepending = PrependingPolicy.uniform_origin(victim, 3)
            baseline = engine.propagate(victim, prepending=prepending)
            result = simulate_interception(
                engine,
                victim=victim,
                attacker=attacker,
                origin_padding=3,
                prepending=prepending,
                baseline=baseline,
            )
            results.append(
                SweepPointResult(
                    attacker=attacker,
                    victim=victim,
                    padding=3,
                    before_fraction=result.report.before_fraction,
                    after_fraction=result.report.after_fraction,
                    attacker_kept_route=result.attacker_has_route,
                )
            )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, results


def test_bench_grid_delta_speedup(worlds):
    """The delta-reuse gate: >= 5x on an exhaustive attack grid.

    This is the workload delta mode exists for — many attackers probing
    the same victims, each touching only its own neighbourhood.  The
    grid pits small-cone Tier-4 transit attackers (the paper's "mostly
    Tier-4/Tier-5 attackers" regime) against the two largest Tier-1
    victims.  Under the per-pair full-recompute discipline every cell
    pays a cold whole-topology convergence; delta pays two cold
    convergences total (one canonical pass per victim) and then only
    each cell's affected cone — a handful of ASes here — so the reuse
    ratio, not cache locality, carries the gate.  The warm cached
    pipeline (full mode, shared baseline cache) is recorded alongside
    for provenance: its worklist is already change-driven, so delta's
    margin over *it* is modest and is gated only as a no-regression
    bound.  Rows must be bit-identical cell for cell across all three
    disciplines.
    """
    world = worlds[1.0]
    graph = world.graph
    tier1 = sorted(
        world.topology.tier1, key=lambda asn: -len(customer_cone(graph, asn))
    )
    victims = tier1[:2]
    attackers = sorted(
        world.topology.tier4, key=lambda asn: (len(customer_cone(graph, asn)), asn)
    )[:64]
    pairs = [(a, v) for a in attackers for v in victims if a != v]

    recompute_s, recompute_results = _time_grid_recompute(graph, pairs)
    full_s, full_results = _time_grid(graph, "full", pairs)
    delta_s, delta_results = _time_grid(graph, "delta", pairs)
    assert delta_results == full_results, "delta mode changed grid cells"
    assert delta_results == recompute_results, "delta disagrees with full recompute"

    speedup = recompute_s / delta_s
    _merge_bench(
        "exhaustive_grid_delta",
        {
            "topology_ases": len(graph),
            "grid_cells": len(pairs),
            "full_recompute_ms": round(recompute_s * 1000, 2),
            "full_pipeline_ms": round(full_s * 1000, 2),
            "delta_ms": round(delta_s * 1000, 2),
            "speedup_vs_recompute": round(speedup, 2),
            "speedup_vs_pipeline": round(full_s / delta_s, 2),
        },
    )
    print(
        f"\ngrid delta: {len(pairs)} cells, recompute {recompute_s * 1000:.1f} ms, "
        f"full pipeline {full_s * 1000:.1f} ms, delta {delta_s * 1000:.1f} ms, "
        f"{speedup:.2f}x vs recompute"
    )
    assert speedup >= 5.0, (
        f"delta mode at {speedup:.2f}x over per-pair full recompute on the "
        f"exhaustive grid (gate is 5x)"
    )
    assert delta_s <= full_s * 1.10, (
        f"delta mode regressed the cached pipeline: {delta_s * 1000:.1f} ms "
        f"vs {full_s * 1000:.1f} ms full"
    )


def _time_secpol_sweep(graph, attacker, victim, secpol, repeats=5):
    """Min-of-N wall clock of the fig09-shaped λ-sweep pipeline run with
    an explicit security-policy argument (possibly None)."""
    from repro.attack.interception import simulate_interception

    best = None
    rows = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend="compiled")
        start = time.perf_counter()
        rows = []
        for padding in range(1, 9):
            prepending = PrependingPolicy.uniform_origin(victim, padding)
            baseline = engine.propagate(victim, prepending=prepending)
            result = simulate_interception(
                engine,
                victim=victim,
                attacker=attacker,
                origin_padding=padding,
                prepending=prepending,
                baseline=baseline,
                secpol=secpol,
            )
            rows.append(
                (padding, result.report.before_fraction, result.report.after_fraction)
            )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, rows


def test_bench_secpol_noop_overhead(worlds):
    """The security-policy hook must be free when nothing is deployed.

    An active ``secpol`` argument with *zero* deployers exercises the
    whole plumbing (checker construction, per-neighbour deployment test
    in the hot loop) without filtering anything; the rows must be
    bit-identical to the policy-free sweep and the wall-clock within 5%.
    """
    from repro.secpol import RovPolicy, SecurityDeployment

    world = worlds[1.0]
    graph = world.graph
    tier1 = sorted(
        world.topology.tier1, key=lambda asn: -len(customer_cone(graph, asn))
    )
    attacker, victim = tier1[0], tier1[1]
    hollow = SecurityDeployment(RovPolicy(victim), ())

    plain_s, plain_rows = _time_secpol_sweep(graph, attacker, victim, None)
    hooked_s, hooked_rows = _time_secpol_sweep(graph, attacker, victim, hollow)
    assert hooked_rows == plain_rows, "a zero-deployment policy changed the rows"

    overhead = hooked_s / plain_s - 1.0
    _merge_bench(
        "secpol_noop_overhead",
        {
            "topology_ases": len(graph),
            "plain_ms": round(plain_s * 1000, 2),
            "hooked_ms": round(hooked_s * 1000, 2),
            "overhead_pct": round(100 * overhead, 2),
        },
    )
    print(
        f"\nsecpol no-op: plain {plain_s * 1000:.1f} ms, "
        f"hooked {hooked_s * 1000:.1f} ms, overhead {100 * overhead:.2f}%"
    )
    assert overhead <= 0.05, (
        f"undeployed security-policy hook costs {100 * overhead:.2f}% "
        f"(budget is 5%)"
    )
