"""Micro-benchmarks of the propagation engine itself.

Unlike the figure benchmarks (one full experiment per run), these use
pytest-benchmark's statistics properly: many rounds of a single
propagation, at three topology scales, plus the warm-start attack path.
They guard the engine's performance envelope — every experiment in the
repository is some multiple of these operations.
"""

from __future__ import annotations

import pytest

from repro.attack.interception import ASPPInterceptionAttack
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.experiments.base import build_world


@pytest.fixture(scope="module")
def worlds():
    return {scale: build_world(seed=7, scale=scale) for scale in (0.25, 0.5, 1.0)}


@pytest.mark.parametrize("scale", [0.25, 0.5, 1.0])
def test_bench_cold_propagation(benchmark, worlds, scale):
    world = worlds[scale]
    victim = world.topology.content[0]
    prepending = PrependingPolicy.uniform_origin(victim, 3)
    outcome = benchmark(
        world.engine.propagate, victim, prepending=prepending
    )
    assert outcome.best[victim] is not None
    reachable = sum(1 for route in outcome.best.values() if route is not None)
    assert reachable == len(world.graph)


def test_bench_warm_start_attack(benchmark, worlds):
    world = worlds[1.0]
    victim = world.topology.content[0]
    attacker = world.topology.tier1[0]
    prepending = PrependingPolicy.uniform_origin(victim, 3)
    baseline = world.engine.propagate(victim, prepending=prepending)
    modifier = ASPPInterceptionAttack(attacker=attacker, victim=victim).modifier()

    def attack_run():
        return world.engine.propagate(
            victim,
            prepending=prepending,
            modifiers={attacker: modifier},
            warm_start=baseline,
        )

    outcome = benchmark(attack_run)
    assert outcome.rounds >= 0


def test_bench_engine_construction(benchmark, worlds):
    """Adjacency pre-compilation cost (paid once per topology)."""
    graph = worlds[1.0].graph
    engine = benchmark(PropagationEngine, graph)
    assert engine.graph is graph
