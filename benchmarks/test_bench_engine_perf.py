"""Micro-benchmarks of the propagation engine itself.

Unlike the figure benchmarks (one full experiment per run), these use
pytest-benchmark's statistics properly: many rounds of a single
propagation, at three topology scales, plus the warm-start attack path
— each measured for **both** backends, so the compiled core's envelope
is tracked against the reference interpreter it replaced.

``test_bench_fig09_sweep_speedup`` is the regression gate: it times the
full Figure-9 λ-sweep pipeline (canonical baseline, cached λ
derivations, eight warm-started attacks, pollution reports) on both
backends, asserts the rows are bit-identical, writes the measurement to
``BENCH_engine.json`` at the repository root, and fails if the compiled
backend drops below 1.5× the reference.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.attack.interception import ASPPInterceptionAttack
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.experiments.base import build_world
from repro.experiments.sweeps import padding_sweep
from repro.topology.tiers import customer_cone

BACKENDS = ("reference", "compiled")

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _merge_bench(entry: str, payload: dict) -> None:
    """Read-modify-write one named record of ``BENCH_engine.json`` —
    several benchmarks share the file, so nobody may clobber it whole."""
    records: dict = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            existing = {}
        if isinstance(existing, dict):
            if "benchmark" in existing:  # legacy single-record layout
                records[str(existing["benchmark"])] = {
                    k: v for k, v in existing.items() if k != "benchmark"
                }
            else:
                records = existing
    records[entry] = payload
    BENCH_JSON.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def worlds():
    return {scale: build_world(seed=7, scale=scale) for scale in (0.25, 0.5, 1.0)}


@pytest.fixture(scope="module")
def engines(worlds):
    return {
        (scale, backend): PropagationEngine(world.graph, backend=backend)
        for scale, world in worlds.items()
        for backend in BACKENDS
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scale", [0.25, 0.5, 1.0])
def test_bench_cold_propagation(benchmark, worlds, engines, scale, backend):
    world = worlds[scale]
    engine = engines[(scale, backend)]
    victim = world.topology.content[0]
    prepending = PrependingPolicy.uniform_origin(victim, 3)
    outcome = benchmark(engine.propagate, victim, prepending=prepending)
    assert outcome.best[victim] is not None
    reachable = sum(1 for route in outcome.best.values() if route is not None)
    assert reachable == len(world.graph)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_warm_start_attack(benchmark, worlds, engines, backend):
    world = worlds[1.0]
    engine = engines[(1.0, backend)]
    victim = world.topology.content[0]
    attacker = world.topology.tier1[0]
    prepending = PrependingPolicy.uniform_origin(victim, 3)
    baseline = engine.propagate(victim, prepending=prepending)
    modifier = ASPPInterceptionAttack(attacker=attacker, victim=victim).modifier()

    def attack_run():
        return engine.propagate(
            victim,
            prepending=prepending,
            modifiers={attacker: modifier},
            warm_start=baseline,
        )

    outcome = benchmark(attack_run)
    assert outcome.rounds >= 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_engine_construction(benchmark, worlds, backend):
    """Table pre-compilation cost (paid once per topology)."""
    graph = worlds[1.0].graph
    engine = benchmark(PropagationEngine, graph, backend=backend)
    assert engine.graph is graph


def _time_fig09_sweep(graph, backend, attacker, victim, repeats=3):
    """Min-of-N wall clock of the λ-sweep with a fresh engine per rep
    (a fresh engine per topology is exactly what the runner pays)."""
    best = None
    rows = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend=backend)
        start = time.perf_counter()
        rows = padding_sweep(
            engine, attacker=attacker, victim=victim, paddings=range(1, 9)
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, rows


def test_bench_fig09_sweep_speedup(worlds):
    """The compiled backend must hold >= 1.5x over the reference on the
    Figure-9 λ-sweep (the tentpole's acceptance gate is 2x; the CI bar
    leaves headroom for noisy shared runners)."""
    world = worlds[1.0]
    graph = world.graph
    tier1 = sorted(
        world.topology.tier1, key=lambda asn: -len(customer_cone(graph, asn))
    )
    attacker, victim = tier1[0], tier1[1]

    reference_s, reference_rows = _time_fig09_sweep(graph, "reference", attacker, victim)
    compiled_s, compiled_rows = _time_fig09_sweep(graph, "compiled", attacker, victim)
    assert compiled_rows == reference_rows, "backends disagree on sweep rows"

    speedup = reference_s / compiled_s
    _merge_bench(
        "fig09_lambda_sweep",
        {
            "topology_ases": len(graph),
            "reference_ms": round(reference_s * 1000, 2),
            "compiled_ms": round(compiled_s * 1000, 2),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\nfig09 sweep: reference {reference_s * 1000:.1f} ms, "
        f"compiled {compiled_s * 1000:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= 1.5, (
        f"compiled backend regressed to {speedup:.2f}x over reference "
        f"(floor is 1.5x)"
    )


def _time_secpol_sweep(graph, attacker, victim, secpol, repeats=5):
    """Min-of-N wall clock of the fig09-shaped λ-sweep pipeline run with
    an explicit security-policy argument (possibly None)."""
    from repro.attack.interception import simulate_interception

    best = None
    rows = None
    for _ in range(repeats):
        engine = PropagationEngine(graph, backend="compiled")
        start = time.perf_counter()
        rows = []
        for padding in range(1, 9):
            prepending = PrependingPolicy.uniform_origin(victim, padding)
            baseline = engine.propagate(victim, prepending=prepending)
            result = simulate_interception(
                engine,
                victim=victim,
                attacker=attacker,
                origin_padding=padding,
                prepending=prepending,
                baseline=baseline,
                secpol=secpol,
            )
            rows.append(
                (padding, result.report.before_fraction, result.report.after_fraction)
            )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, rows


def test_bench_secpol_noop_overhead(worlds):
    """The security-policy hook must be free when nothing is deployed.

    An active ``secpol`` argument with *zero* deployers exercises the
    whole plumbing (checker construction, per-neighbour deployment test
    in the hot loop) without filtering anything; the rows must be
    bit-identical to the policy-free sweep and the wall-clock within 5%.
    """
    from repro.secpol import RovPolicy, SecurityDeployment

    world = worlds[1.0]
    graph = world.graph
    tier1 = sorted(
        world.topology.tier1, key=lambda asn: -len(customer_cone(graph, asn))
    )
    attacker, victim = tier1[0], tier1[1]
    hollow = SecurityDeployment(RovPolicy(victim), ())

    plain_s, plain_rows = _time_secpol_sweep(graph, attacker, victim, None)
    hooked_s, hooked_rows = _time_secpol_sweep(graph, attacker, victim, hollow)
    assert hooked_rows == plain_rows, "a zero-deployment policy changed the rows"

    overhead = hooked_s / plain_s - 1.0
    _merge_bench(
        "secpol_noop_overhead",
        {
            "topology_ases": len(graph),
            "plain_ms": round(plain_s * 1000, 2),
            "hooked_ms": round(hooked_s * 1000, 2),
            "overhead_pct": round(100 * overhead, 2),
        },
    )
    print(
        f"\nsecpol no-op: plain {plain_s * 1000:.1f} ms, "
        f"hooked {hooked_s * 1000:.1f} ms, overhead {100 * overhead:.2f}%"
    )
    assert overhead <= 0.05, (
        f"undeployed security-policy hook costs {100 * overhead:.2f}% "
        f"(budget is 5%)"
    )
