"""Campaign-store dedupe gate: a warm figure query must be >= 10x
faster than recomputing it, with zero engine propagations.

The store's whole value proposition is that the second identical query
is a log read, not a campaign.  This benchmark runs ``fig09`` cold
(computing and storing every cell plus the experiment record), then
queries the same figure warm, and gates:

* the warm query is served ``from_store`` with rows bit-identical to
  the cold run,
* the warm registry records no ``engine.*`` counters at all,
* warm latency beats the cold recompute by >= 10x.

The measured profile is merged into ``BENCH_engine.json`` as the
``campaign_store_dedupe`` record.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from test_bench_engine_perf import _merge_bench

from repro.store import CampaignStore, query_experiment
from repro.telemetry.metrics import RunMetrics

#: keeps the cold leg around a second while leaving enough work for
#: the 10x gate to be meaningful rather than noise-dominated.
SCALE = 0.3
GATE = 10.0


def test_store_dedupe_speedup_gate():
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        with CampaignStore(root) as store:
            cold_metrics = RunMetrics()
            t0 = time.perf_counter()
            cold = query_experiment(
                store, "fig09", metrics=cold_metrics, scale=SCALE
            )
            cold_ms = (time.perf_counter() - t0) * 1000.0
            assert not cold.from_store

            warm_metrics = RunMetrics()
            t0 = time.perf_counter()
            warm = query_experiment(
                store, "fig09", metrics=warm_metrics, scale=SCALE
            )
            warm_ms = (time.perf_counter() - t0) * 1000.0

            assert warm.from_store, "second query must be a pure store hit"
            assert warm.result.rows == cold.result.rows
            assert warm.result.summary == cold.result.summary
            engine_counters = [
                name
                for name in warm_metrics.counters
                if name.startswith("engine.")
            ]
            assert engine_counters == [], (
                f"warm query touched the engine: {engine_counters}"
            )

            speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
            stats = store.stats()

        print(
            f"\nstore dedupe: cold {cold_ms:.1f} ms -> warm {warm_ms:.2f} ms "
            f"({speedup:.0f}x, {stats['records']} records, "
            f"{stats['bytes']} bytes)"
        )
        _merge_bench(
            "campaign_store_dedupe",
            {
                "cold_ms": round(cold_ms, 2),
                "warm_ms": round(warm_ms, 3),
                "speedup": round(speedup, 1),
                "store_records": stats["records"],
                "store_bytes": stats["bytes"],
                "gate": GATE,
            },
        )
        assert speedup >= GATE, (
            f"warm store query only {speedup:.1f}x faster than recompute "
            f"(gate {GATE}x): cold {cold_ms:.1f} ms, warm {warm_ms:.2f} ms"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
