"""Internet-scale benchmarks of the vectorized propagation core.

The engine benchmarks (``test_bench_engine_perf``) track the compiled
core on the paper's ~1k-AS worlds; these track the NumPy CSR core on
the scales the paper's methodology actually needs — 10k ASes in CI's
``scale-smoke`` job, 80k (CAIDA-snapshot order) locally behind the
``slow`` marker.

Three disciplines are timed and recorded so each ratio's provenance is
explicit:

* ``compiled_ms`` — one cold compiled-backend propagation, the oracle
  the vectorized core must match bit for bit;
* ``vectorized_ms`` — the same cold run end to end through the engine
  (fixpoint + route/RIB emission + outcome assembly);
* ``core_ms`` — the raw packed-key fixpoint alone
  (:func:`vectorized_fixpoint`), the piece that scales to 80k where
  materialising per-AS route objects would dwarf the convergence.

The ≥10x acceptance gate rides on the core kernel: emission materials
(intern-table paths, Route objects, Python dicts) are shared overhead
both backends pay, and at 80k nobody pays them at all.  The end-to-end
engine ratio is recorded alongside, ungated, so the full-run picture
stays honest in ``BENCH_engine.json``.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy", reason="vectorized benchmarks require numpy")

from test_bench_engine_perf import _merge_bench

from repro.bgp.compiled import CompiledTopology
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.vectorized import vectorized_fixpoint
from repro.topology.generators import PowerLawConfig, generate_powerlaw_topology

#: Internet-realistic density at CI scale: ~44k edges, mean degree ~8.8.
SCALE_10K = PowerLawConfig(
    num_ases=10_000,
    tier1_size=20,
    transit_fraction=0.30,
    transit_providers=(2, 4),
    stub_providers=(1, 3),
    transit_peering_degree=(4, 24),
)

#: CAIDA-snapshot order (an as-rel2 file is ~75-80k ASes), kept sparser
#: so the slow rung stays a local minutes-not-hours check.
SCALE_80K = PowerLawConfig(
    num_ases=80_000,
    tier1_size=20,
    transit_fraction=0.15,
    transit_providers=(2, 4),
    stub_providers=(1, 3),
    transit_peering_degree=(2, 12),
)


def _min_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


@pytest.fixture(scope="module")
def world_10k():
    return generate_powerlaw_topology(SCALE_10K, seed=7)


@pytest.fixture(scope="module")
def topo_10k(world_10k):
    return CompiledTopology.from_graph(world_10k.graph)


def test_bench_fig09_vectorized_10k(world_10k, topo_10k):
    """Cold λ=3 propagation at 10k ASes: compiled vs vectorized vs the
    raw fixpoint core, with bit-identity asserted before any timing is
    trusted.  Gate: the core kernel holds ≥10x over the compiled run."""
    graph = world_10k.graph
    victim = world_10k.tier1[0]
    prep = PrependingPolicy.uniform_origin(victim, 3)

    eng_c = PropagationEngine(graph, backend="compiled")
    eng_v = PropagationEngine(graph, backend="vectorized")
    oc = eng_c.propagate(victim, prepending=prep)
    ov = eng_v.propagate(victim, prepending=prep)
    assert list(oc.best.items()) == list(ov.best.items())
    assert oc.best_keys == ov.best_keys
    for a, offers in oc.adj_rib_in.items():
        present = {s: o for s, o in offers.items() if o is not None}
        assert present == ov.adj_rib_in[a]

    compiled_s, _ = _min_of(3, lambda: eng_c.propagate(victim, prepending=prep))
    vectorized_s, _ = _min_of(3, lambda: eng_v.propagate(victim, prepending=prep))
    core_s, (keys, waves, _) = _min_of(
        5, lambda: vectorized_fixpoint(topo_10k, [victim], prepending=prep)
    )
    assert int((keys[:, 0] < (np.int64(5) << 53)).sum()) == len(graph)

    core_speedup = compiled_s / core_s
    _merge_bench(
        "fig09_vectorized_10k",
        {
            "topology_ases": len(graph),
            "topology_edges": graph.num_edges,
            "compiled_ms": round(compiled_s * 1000, 2),
            "vectorized_ms": round(vectorized_s * 1000, 2),
            "core_ms": round(core_s * 1000, 2),
            "speedup_engine": round(compiled_s / vectorized_s, 2),
            "speedup_core": round(core_speedup, 2),
            "waves": waves,
        },
    )
    print(
        f"\n10k cold: compiled {compiled_s * 1000:.1f} ms, "
        f"vectorized {vectorized_s * 1000:.1f} ms "
        f"({compiled_s / vectorized_s:.1f}x), "
        f"core {core_s * 1000:.2f} ms ({core_speedup:.1f}x)"
    )
    assert core_speedup >= 10.0, (
        f"vectorized core at {core_speedup:.1f}x over compiled at 10k "
        f"(gate is 10x)"
    )


def test_bench_grid_vectorized_10k(world_10k, topo_10k):
    """Batched canonical baselines at 10k — the grid-prefetch shape:
    eight victims converge as one walk, per-column cost vs one compiled
    run each.  Gate: ≥10x per column on the batched core."""
    graph = world_10k.graph
    tier1 = set(world_10k.tier1)
    mid_transit = [a for a in world_10k.transit_ases if a not in tier1]
    victims = list(world_10k.tier1[:4]) + mid_transit[:4]
    b = len(victims)

    eng_c = PropagationEngine(graph, backend="compiled")
    eng_v = PropagationEngine(graph, backend="vectorized")
    batch = eng_v.propagate_batch(victims)
    for v in victims:
        oc = eng_c.propagate(v)
        assert list(oc.best.items()) == list(batch[v].best.items())
        assert oc.best_keys == batch[v].best_keys

    compiled_s, _ = _min_of(
        2, lambda: [eng_c.propagate(v) for v in victims]
    )
    batch_s, _ = _min_of(2, lambda: eng_v.propagate_batch(victims))
    core_s, _ = _min_of(3, lambda: vectorized_fixpoint(topo_10k, victims))

    per_col_core = core_s / b
    core_speedup = (compiled_s / b) / per_col_core
    _merge_bench(
        "grid_vectorized_10k",
        {
            "topology_ases": len(graph),
            "batch_columns": b,
            "compiled_ms_per_col": round(compiled_s / b * 1000, 2),
            "batch_ms_per_col": round(batch_s / b * 1000, 2),
            "core_ms_per_col": round(per_col_core * 1000, 2),
            "speedup_engine": round(compiled_s / batch_s, 2),
            "speedup_core": round(core_speedup, 2),
        },
    )
    print(
        f"\n10k batch x{b}: compiled {compiled_s / b * 1000:.1f} ms/col, "
        f"batch {batch_s / b * 1000:.1f} ms/col "
        f"({compiled_s / batch_s:.1f}x), "
        f"core {per_col_core * 1000:.2f} ms/col ({core_speedup:.1f}x)"
    )
    assert core_speedup >= 10.0, (
        f"batched vectorized core at {core_speedup:.1f}x per column at 10k "
        f"(gate is 10x)"
    )


@pytest.mark.slow
def test_bench_fixpoint_vectorized_80k():
    """The 80k rung — local only (``-m slow``).  No oracle exists at
    this scale (a compiled run would take minutes per origin), so the
    checks are structural: full reachability, sane wave count, and the
    batched columns identical to single-source runs."""
    world = generate_powerlaw_topology(SCALE_80K, seed=7)
    topo = CompiledTopology.from_graph(world.graph)
    origins = list(world.tier1[:2])

    core_s, (keys, waves, _) = _min_of(
        2, lambda: vectorized_fixpoint(topo, origins)
    )
    inf = np.int64(5) << 53
    for col, origin in enumerate(origins):
        assert int((keys[:, col] < inf).sum()) == len(world.graph)
        single, _, _ = vectorized_fixpoint(topo, [origin])
        assert np.array_equal(keys[:, col], single[:, 0])
    assert waves <= 5 * (topo.n + 2)

    _merge_bench(
        "fixpoint_vectorized_80k",
        {
            "topology_ases": len(world.graph),
            "topology_edges": world.graph.num_edges,
            "batch_columns": len(origins),
            "core_ms_per_col": round(core_s / len(origins) * 1000, 2),
            "waves": waves,
        },
    )
    print(
        f"\n80k fixpoint: {core_s / len(origins) * 1000:.1f} ms/col, "
        f"{waves} waves"
    )
