"""Ablation bench: monitor-placement strategies (the paper's future work)."""


def test_bench_ablation_monitors(run_recorded):
    result = run_recorded("ablation-monitors")
    assert len(result.rows) == 4
    accuracies = dict(result.rows)
    # Every strategy detects something; no strategy exceeds 100%.
    assert all(0.0 < value <= 100.0 for value in accuracies.values())
    # The set-cover placement must beat the paper's degree ranking both
    # in attacker coverage and in realized detection accuracy.
    assert result.summary["coverage_greedy"] >= result.summary["coverage_top_degree"]
    assert (
        accuracies["greedy-cover (ours)"] >= accuracies["top-degree (paper)"] - 1e-9
    )
