"""Wall-clock benchmark: the sweep runner vs the seed serial path.

The "before" side is the repository's original λ-sweep loop — one
:func:`simulate_interception` per λ, each re-converging its own
baseline — executed on the propagation engine vendored verbatim from
the seed commit (``benchmarks/_seed_engine.py``).  The "after" side is
``padding_sweep(..., workers=4)``: the runner's baseline cache derives
all λ>1 baselines from one canonical convergence, and the worker pool
fans the points out when the host actually has spare cores (single-CPU
hosts clamp to the serial cached path — the speedup floor asserted
here holds either way).

Both sides produce identical rows; the assertion pins the ≥2× speedup
the runner subsystem was built to deliver on the Figure-9 sweep.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import _seed_engine

from repro.attack.interception import simulate_interception
from repro.experiments.base import build_world
from repro.experiments.sweeps import padding_sweep
from repro.topology.tiers import customer_cone

SCALE = 0.25
PADDINGS = tuple(range(1, 9))
REPEATS = 3


def _fig09_pair(world) -> tuple[int, int]:
    """Attacker/victim exactly as fig09 picks them: top-2 customer cones."""
    graph = world.graph
    by_cone = sorted(
        world.topology.tier1, key=lambda t: (-len(customer_cone(graph, t)), t)
    )
    return by_cone[0], by_cone[1]


def _seed_sweep(engine, victim: int, attacker: int):
    """The seed repo's padding_sweep loop, verbatim semantics."""
    rows = []
    for padding in PADDINGS:
        result = simulate_interception(
            engine, victim=victim, attacker=attacker, origin_padding=padding
        )
        rows.append(
            (
                padding,
                100 * result.report.before_fraction,
                100 * result.report.after_fraction,
            )
        )
    return rows


def _best_of(fn):
    best, value = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_bench_runner_speedup_over_seed_path():
    world = build_world(seed=7, scale=SCALE)
    attacker, victim = _fig09_pair(world)

    seed_engine = _seed_engine.PropagationEngine(world.graph)
    seed_time, seed_rows = _best_of(lambda: _seed_sweep(seed_engine, victim, attacker))

    runner_time, runner_rows = _best_of(
        lambda: padding_sweep(
            world.engine,
            victim=victim,
            attacker=attacker,
            paddings=PADDINGS,
            workers=4,
        )
    )

    assert runner_rows == seed_rows, "runner must reproduce the seed rows exactly"
    ratio = seed_time / runner_time
    print(
        f"\nfig09 λ-sweep (scale={SCALE}, λ=1..{PADDINGS[-1]}): "
        f"seed serial {seed_time * 1e3:.1f} ms, "
        f"runner (workers=4) {runner_time * 1e3:.1f} ms, "
        f"speedup {ratio:.2f}x"
    )
    assert ratio >= 2.0, f"runner speedup regressed: {ratio:.2f}x < 2x"
