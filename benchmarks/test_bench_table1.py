"""Bench: regenerate Table I (traceroute during the Facebook anomaly)."""


def test_bench_table1_traceroute(run_recorded):
    result = run_recorded("table1")
    # The data path follows the anomalous BGP route through China/Korea
    # and the RTT inflates severely (paper: ~40ms -> ~250ms).
    assert result.summary["anomalous_path_traverses_AS4134"] == 1.0
    assert result.summary["anomalous_path_traverses_AS9318"] == 1.0
    assert result.summary["rtt_inflation"] > 3.0
    assert result.summary["anomaly_rtt_ms"] > 180
