#!/usr/bin/env python3
"""Relationship inference with a ground truth (the §IV-A pipeline).

The paper builds its simulation topology by running Gao's algorithm
and CAIDA's algorithm over months of BGP tables and keeping the agreed
relationship pairs — with no way to know how accurate the result is.
Our synthetic worlds come with ground-truth relationships, so this
example closes that loop:

1. generate a world and collect AS paths the way RouteViews would
   (best routes of a mixed core+edge monitor fleet, many origins);
2. run Gao, the CAIDA-style algorithm, and the paper's combination;
3. score each against the known relationships;
4. save/reload the inferred graph through the CAIDA serial-1 format.

Run:  python examples/topology_inference.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import (
    InternetTopologyConfig,
    PropagationEngine,
    generate_internet_topology,
    infer_caida,
    infer_combined,
    infer_gao,
    load_caida,
    save_caida,
    score_inference,
)
from repro.utils.tables import format_table


def collect_paths(world, engine, *, origins=120, seed=17):
    """Best-route paths from a RouteViews-like monitor fleet."""
    rng = random.Random(seed)
    graph = world.graph
    monitors = sorted(graph.ases, key=lambda a: -graph.degree(a))[:25]
    monitors += rng.sample(world.stubs, 35)
    paths = []
    for origin in rng.sample(graph.ases, origins):
        outcome = engine.propagate(origin)
        for monitor in monitors:
            route = outcome.best.get(monitor)
            if route is not None and route.path:
                paths.append(route.path)
    return paths


def main() -> None:
    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    engine = PropagationEngine(world.graph)
    paths = collect_paths(world, engine)
    print(f"collected {len(paths)} AS paths from the monitor fleet")

    inferred = {
        "Gao": infer_gao(paths),
        "CAIDA-style": infer_caida(paths, seed_clique=world.tier1),
        "combined (paper §IV-A)": infer_combined(paths),
    }
    rows = []
    for name, graph in inferred.items():
        score = score_inference(world.graph, graph)
        rows.append(
            (
                name,
                score.num_common_edges,
                f"{score.accuracy:.1%}",
                score.num_missing_edges,
                score.num_spurious_edges,
            )
        )
    print(
        format_table(
            ("algorithm", "edges_scored", "label_accuracy", "unobserved", "spurious"),
            rows,
            title="Inference accuracy vs ground truth",
        )
    )
    print()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "inferred.caida"
        save_caida(inferred["combined (paper §IV-A)"], path,
                   header="inferred topology (combined)")
        reloaded = load_caida(path)
        print(f"serial-1 round trip: {reloaded.num_edges} edges intact "
              f"({path.stat().st_size} bytes)")
    print()
    print(
        "'Unobserved' edges never appeared in any monitor path — the same\n"
        "visibility limit the paper's real-data topology inherits silently."
    )


if __name__ == "__main__":
    main()
