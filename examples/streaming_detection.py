#!/usr/bin/env python3
"""Watching an interception attack arrive, one BGP update at a time.

The paper frames deployment as continuous monitoring with "real time
notifications".  This example replays an ASPP interception as the
sequence of updates the route monitors would emit (ordered by the
propagation clock) and feeds them to the streaming detector, printing
the moment the first alarm fires and how much of the Internet was
already polluted by then.

Run:  python examples/streaming_detection.py
"""

from __future__ import annotations

import random

from repro import (
    ASPPInterceptionDetector,
    InternetTopologyConfig,
    PropagationEngine,
    RouteCollector,
    StreamingDetector,
    attack_update_stream,
    generate_internet_topology,
    simulate_interception,
    top_degree_monitors,
)

PADDING = 4


def main() -> None:
    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    graph = world.graph
    engine = PropagationEngine(graph)
    victim = world.content[0]
    attacker = world.tier2[0]
    result = simulate_interception(
        engine, victim=victim, attacker=attacker, origin_padding=PADDING
    )
    print(
        f"AS{attacker} strips AS{victim}'s λ={PADDING} padding; "
        f"{len(result.report.after)} ASes eventually polluted "
        f"({result.report.after_fraction:.1%})"
    )
    print()

    collector = RouteCollector(graph, top_degree_monitors(graph, 200))
    streaming = StreamingDetector(ASPPInterceptionDetector(graph))
    streaming.prime(collector.snapshot(result.baseline))

    messages = attack_update_stream(result, collector)
    print(f"the monitor fleet emits {len(messages)} updates as the attack spreads:")
    rounds = result.attacked.adoption_round
    detected_at = None
    for index, message in enumerate(messages, start=1):
        alarms = streaming.consume(message)
        stamp = rounds.get(message.monitor, 0)
        polluted_so_far = sum(
            1 for asn in result.report.after if rounds.get(asn, 0) <= stamp
        )
        marker = ""
        if alarms and detected_at is None:
            detected_at = (index, stamp, polluted_so_far)
            marker = "   <-- FIRST ALARM: " + str(alarms[0])
        print(
            f"  update {index:>2}: monitor AS{message.monitor:<5} "
            f"round {stamp}  polluted so far: {polluted_so_far:>4}{marker[:120]}"
        )
        if detected_at and index >= detected_at[0] + 3:
            remaining = len(messages) - index
            if remaining:
                print(f"  ... {remaining} more updates after detection")
            break

    print()
    if detected_at is None:
        print("the attack stayed below this monitor fleet's horizon")
    else:
        index, stamp, polluted = detected_at
        total = len(result.report.after)
        print(
            f"detected at update {index} (propagation round {stamp}), with "
            f"{polluted}/{total} of the eventual pollution in place "
            f"({polluted / max(1, total):.0%})"
        )


if __name__ == "__main__":
    main()
