#!/usr/bin/env python3
"""Defending against ASPP interception (the paper's future-work agenda).

Walks the three defences the library ships:

1. **prefix-owner self-check** — the victim compares observed padding
   against its own configured policy; this resolves the paper's §III
   ambiguity (the public detector cannot tell an attack by the victim's
   direct neighbour from the victim's own traffic engineering — the
   owner can);
2. **reactive padding reduction** — after an alarm, the victim
   re-originates with λ'=1, removing the attacker's entire advantage;
3. **cautious padding adoption** — transit ASes refuse routes whose
   padding undercuts the history for the same victim-adjacent AS
   (PGBGP-flavoured), measured at partial deployment.

Run:  python examples/defense_policies.py
"""

from __future__ import annotations

import random

from repro import (
    InternetTopologyConfig,
    PrefixOwnerSelfCheck,
    PrependingPolicy,
    PropagationEngine,
    RouteCollector,
    generate_internet_topology,
    reactive_padding_reduction,
    simulate_cautious_deployment,
    simulate_interception,
    top_degree_monitors,
)
from repro.casestudy import replay_facebook_anomaly
from repro.casestudy.facebook import AS_FACEBOOK, FACEBOOK_PADDING
from repro.utils.tables import format_table

PADDING = 4


def self_check_on_facebook() -> None:
    print("1. Prefix-owner self-check on the 2011 Facebook anomaly")
    replay = replay_facebook_anomaly()
    collector = RouteCollector(replay.graph, [7018, 2914, 3356])
    owner_policy = PrependingPolicy.uniform_origin(AS_FACEBOOK, FACEBOOK_PADDING)
    self_check = PrefixOwnerSelfCheck(AS_FACEBOOK, owner_policy)
    alarms = self_check.check_view(collector.snapshot(replay.anomalous))
    print(f"   public monitors alone could not prove the cause (paper §III);")
    print(f"   the owner's self-check raises {len(alarms)} high-confidence alarm(s):")
    for alarm in alarms[:2]:
        print(f"     {alarm}")
    print()


def reactive_and_cautious() -> None:
    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    engine = PropagationEngine(world.graph)
    victim = world.content[0]
    attacker = world.tier1[0]
    result = simulate_interception(
        engine, victim=victim, attacker=attacker, origin_padding=PADDING
    )
    print(f"2. Reactive padding reduction (AS{attacker} intercepting AS{victim})")
    print(f"   attack gain with λ={PADDING}:  {result.report.gain:.1%}")
    mitigation = reactive_padding_reduction(engine, result)
    print(f"   gain after re-originating with λ'=1:  {mitigation.report.gain:.1%}")
    print(f"   traffic-engineering entry points shifted: "
          f"{mitigation.traffic_engineering_shift:.1%}")
    print()

    print("3. Cautious padding adoption at partial deployment")
    rows = []
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        report = simulate_cautious_deployment(
            engine,
            victim=victim,
            attacker=attacker,
            origin_padding=PADDING,
            deployment_fraction=fraction,
            rng=random.Random(5),
        )
        rows.append((f"{fraction:.0%}", f"{report.gain:.1%}"))
    print(format_table(("deployment", "residual attack gain"), rows))
    print()
    monitors = top_degree_monitors(world.graph, 100)
    print(f"   (defences compose with detection: {len(monitors)} public monitors "
          f"watch for the alarm that triggers the reactive response)")


def main() -> None:
    self_check_on_facebook()
    reactive_and_cautious()


if __name__ == "__main__":
    main()
