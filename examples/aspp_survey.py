#!/usr/bin/env python3
"""Survey of AS-path prepending usage, §VI-A style.

Builds per-monitor routing tables over a synthetic Internet with the
empirical prepending-behaviour model, then prints the two
characterisations the paper opens its evaluation with:

* the per-monitor fraction of prefixes whose best route carries ASPP
  (Figure 5), and
* the distribution of padding counts among prepended routes (Figure 6),

plus a breakdown the paper only hints at: how often a *padded* origin
still wins the best-route race (the attack surface of the whole study).

Run:  python examples/aspp_survey.py
"""

from __future__ import annotations

import random
import statistics

from repro import (
    InternetTopologyConfig,
    PaddingBehaviorModel,
    PropagationEngine,
    RouteCollector,
    build_monitor_ribs,
    generate_internet_topology,
    padding_count_distribution,
    prepended_fraction_per_monitor,
    top_degree_monitors,
)
from repro.bgp.aspath import has_prepending
from repro.utils.cdf import EmpiricalCDF
from repro.utils.tables import format_table


def main() -> None:
    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    graph = world.graph
    engine = PropagationEngine(graph)
    monitors = top_degree_monitors(graph, 60)
    collector = RouteCollector(graph, monitors)
    model = PaddingBehaviorModel()

    ribs = build_monitor_ribs(
        graph,
        collector,
        num_prefixes=400,
        model=model,
        rng=random.Random(21),
        engine=engine,
    )

    fractions = prepended_fraction_per_monitor(ribs)
    cdf = EmpiricalCDF(fractions.values())
    print("Fraction of prefixes with prepended best routes, per monitor:")
    print(f"  monitors: {cdf.n}   mean: {cdf.mean:.1%}   "
          f"p10: {cdf.quantile(0.10):.1%}   median: {cdf.quantile(0.5):.1%}   "
          f"p90: {cdf.quantile(0.9):.1%}")
    print(f"  (paper: ~13% on average over RouteViews/RIPE monitors)")
    print()

    distribution = padding_count_distribution(ribs.all_paths())
    rows = [(count, f"{fraction:.1%}") for count, fraction in distribution.items()]
    print(format_table(("padding", "share of prepended routes"), rows,
                       title="Number of duplicate ASNs (Figure 6)"))
    print()

    # How often does a padded origin still end up in best routes?
    visibility = []
    for origin in sorted(ribs.prepending_origins):
        prefix = next(p for p, o in ribs.origins.items() if o == origin)
        seen = sum(
            1
            for table in ribs.tables.values()
            if prefix in table and has_prepending(table[prefix].path)
        )
        total = sum(1 for table in ribs.tables.values() if prefix in table)
        if total:
            visibility.append(seen / total)
    print(
        f"A prepending origin's padded route still wins the best-route race at "
        f"{statistics.mean(visibility):.0%} of monitors on average\n"
        f"— every one of those padded best routes is an opportunity for the "
        f"ASPP interception attack."
    )


if __name__ == "__main__":
    main()
