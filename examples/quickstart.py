#!/usr/bin/env python3
"""Quickstart: simulate an ASPP interception attack and detect it.

Walks the library's whole pipeline in ~30 lines of API:

1. generate an Internet-like AS topology (the substitute for the
   RouteViews/RIPE-inferred graph);
2. let a victim AS announce its prefix with AS-path prepending;
3. launch the ASPP interception attack from a Tier-1 AS and measure
   the fraction of the Internet whose traffic now crosses the attacker;
4. run the paper's multi-vantage-point detection algorithm.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    ASPPInterceptionDetector,
    InternetTopologyConfig,
    PropagationEngine,
    RouteCollector,
    generate_internet_topology,
    simulate_interception,
    top_degree_monitors,
)
from repro.detection import detection_timing
from repro.topology.stats import summarize
from repro.utils.tables import format_table


def main() -> None:
    # 1. The world: ~1,500 ASes in a five-tier hierarchy.
    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    graph = world.graph
    print(format_table(("property", "value"), summarize(graph).as_rows(),
                       title="Synthetic Internet"))
    print()

    # 2 + 3. The victim is a content AS announcing with 3 prepended
    # copies; the attacker is a Tier-1 that strips the padding.
    engine = PropagationEngine(graph)
    victim = world.content[0]
    attacker = world.tier1[0]
    result = simulate_interception(
        engine, victim=victim, attacker=attacker, origin_padding=3
    )
    report = result.report
    print(f"attack: Tier-1 AS{attacker} intercepts AS{victim} (λ=3)")
    print(f"  paths through the attacker before the attack: {report.before_fraction:6.1%}")
    print(f"  paths through the attacker under the attack:  {report.after_fraction:6.1%}")
    print(f"  newly polluted ASes:                          {len(report.newly_polluted)}")
    print(f"  attacker still holds a forwarding route:      {result.attacker_has_route}")
    print()

    # 4. Detection from 150 degree-ranked vantage points.
    collector = RouteCollector(graph, top_degree_monitors(graph, 150))
    detector = ASPPInterceptionDetector(graph)
    timing = detection_timing(result, collector, detector)
    print(f"detection with {len(collector.monitors)} monitors:")
    print(f"  detected:            {timing.detected}")
    if timing.detected:
        print(f"  detection round:     {timing.detection_round}")
        print(f"  polluted before it:  {timing.fraction_polluted_before_detection:.1%}")
        print(f"  first alarm:         {timing.alarms[0]}")


if __name__ == "__main__":
    main()
