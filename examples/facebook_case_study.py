#!/usr/bin/env python3
"""The 2011-03-22 Facebook routing anomaly, replayed end to end (§III).

Rebuilds the AS-level fragment around the incident (AT&T, Level3, NTT,
Sprint, China Telecom, the Korean ISP, Facebook), replays the
"AS9318 stripped two of Facebook's five padded ASNs" hypothesis through
the propagation engine, prints the Figure-1 announcements and the
per-AS route changes, and verifies the data plane with the Table-I
traceroute simulation.

Run:  python examples/facebook_case_study.py
"""

from __future__ import annotations

from repro.casestudy import replay_facebook_anomaly
from repro.casestudy.facebook import AS_ATT_CUSTOMER
from repro.casestudy.traceroute import TracerouteSimulator
from repro.experiments.table1_traceroute import FACEBOOK_REGIONS
from repro.utils.tables import format_table


def main() -> None:
    replay = replay_facebook_anomaly()

    print("Announcements around the anomaly (paper Figure 1):")
    for line in replay.figure1_announcements():
        print(" ", line)
    print()

    print(
        format_table(
            ("AS", "route before 7:15 GMT", "route after 7:15 GMT"),
            replay.route_change_rows(),
            title="BGP routes before/after the anomaly",
        )
    )
    print()

    tracer = TracerouteSimulator(regions=FACEBOOK_REGIONS)
    for label, outcome in (("normal", replay.baseline), ("anomaly", replay.anomalous)):
        path = outcome.path_of(AS_ATT_CUSTOMER)
        hops = tracer.trace(AS_ATT_CUSTOMER, path)
        print(
            format_table(
                ("Hop", "Delay", "IP", "ASN"),
                [hop.as_row() for hop in hops],
                title=f"Traceroute from the AT&T customer ({label} path)",
            )
        )
        print(f"  end-to-end RTT: {hops[-1].rtt_ms:.0f} ms")
        print()

    normal_rtt = tracer.end_to_end_rtt(AS_ATT_CUSTOMER, replay.baseline.path_of(AS_ATT_CUSTOMER))
    anomaly_rtt = tracer.end_to_end_rtt(AS_ATT_CUSTOMER, replay.anomalous.path_of(AS_ATT_CUSTOMER))
    print(
        f"The cross-ocean detour inflates the RTT {anomaly_rtt / normal_rtt:.1f}x "
        f"({normal_rtt:.0f} ms -> {anomaly_rtt:.0f} ms), matching the paper's "
        "Table I signature."
    )


if __name__ == "__main__":
    main()
