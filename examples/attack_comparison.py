#!/usr/bin/env python3
"""Three hijacks, three fingerprints: why ASPP interception is stealthy.

Launches the paper's attack and its two baselines from the same
attacker against the same victim, and runs every detector against each:

* **origin hijack** (MOAS) — blackholes traffic, caught instantly by
  PHAS-style origin monitoring;
* **Ballani-style path shortening** — intercepts traffic but fabricates
  an attacker-victim link, caught by new-link monitoring;
* **ASPP interception** — intercepts traffic with the true origin and
  only real links; both baselines stay silent, and only the paper's
  padding-inconsistency algorithm fires.

Run:  python examples/attack_comparison.py
"""

from __future__ import annotations

import random

from repro import (
    ASPPInterceptionDetector,
    InternetTopologyConfig,
    OriginHijackAttack,
    PathShorteningAttack,
    PrependingPolicy,
    PropagationEngine,
    RouteCollector,
    detect_moas,
    detect_new_links,
    generate_internet_topology,
    pollution_report,
    simulate_interception,
    top_degree_monitors,
)
from repro.utils.tables import format_table

PADDING = 3


def main() -> None:
    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    graph = world.graph
    engine = PropagationEngine(graph)
    victim = world.content[0]
    attacker = world.tier1[1]
    prepending = PrependingPolicy.uniform_origin(victim, PADDING)
    collector = RouteCollector(graph, top_degree_monitors(graph, 100))
    aspp_detector = ASPPInterceptionDetector(graph)

    baseline = engine.propagate(victim, prepending=prepending)
    baseline_view = collector.snapshot(baseline)

    rows = []
    scenarios = {
        "origin hijack (MOAS)": OriginHijackAttack(attacker, victim).modifier(),
        "path shortening (Ballani)": PathShorteningAttack(attacker, victim).modifier(),
        "ASPP interception (paper)": None,
    }
    for name, modifier in scenarios.items():
        if modifier is None:
            result = simulate_interception(
                engine, victim=victim, attacker=attacker, origin_padding=PADDING
            )
            attacked = result.attacked
        else:
            attacked = engine.propagate(
                victim,
                prepending=prepending,
                modifiers={attacker: modifier},
                warm_start=baseline,
            )
        report = pollution_report(
            baseline=baseline, attacked=attacked, attacker=attacker, victim=victim
        )
        view = collector.snapshot(attacked)
        moas = bool(detect_moas(view))
        new_link = bool(detect_new_links(view, graph))
        aspp_alarms = []
        for monitor in collector.monitors:
            before_route = baseline_view.routes[monitor]
            after_route = view.routes[monitor]
            if before_route != after_route:
                aspp_alarms += aspp_detector.inspect_change(
                    monitor, before_route, after_route, view
                )
        rows.append(
            (
                name,
                f"{report.after_fraction:.0%}",
                "YES" if moas else "no",
                "YES" if new_link else "no",
                "YES" if aspp_alarms else "no",
            )
        )

    print(
        format_table(
            ("attack", "polluted", "MOAS alarm", "new-link alarm", "ASPP alarm"),
            rows,
            title=f"AS{attacker} attacks AS{victim} (victim pads x{PADDING})",
        )
    )
    print()
    print(
        "The ASPP interception pollutes comparably to the classic hijacks but\n"
        "raises neither a MOAS nor a new-link anomaly — only the paper's\n"
        "padding-inconsistency detector sees it."
    )


if __name__ == "__main__":
    main()
