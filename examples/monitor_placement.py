#!/usr/bin/env python3
"""Monitor placement for interception detection (the paper's future work).

The paper evaluates only degree-ranked monitors and leaves "the best
vantage point selection to guarantee the detection" as future work.
This example runs a small campaign of ASPP interception attacks and
compares three placements at equal budgets:

* top-degree (the paper's strategy),
* uniform random,
* victim-adjacent (self-defence monitors ringed around a protected
  prefix owner),
* greedy set-cover over attacker customer cones (the library's
  placement optimiser).

It also prints *why* attacks escape: an attack is only visible when the
malicious route reaches a monitor, so placements that cover customer
cones (where pollution lives) beat placements at the top of the
hierarchy.

Run:  python examples/monitor_placement.py
"""

from __future__ import annotations

import random

from repro import (
    ASPPInterceptionDetector,
    InternetTopologyConfig,
    PropagationEngine,
    RouteCollector,
    generate_internet_topology,
    greedy_cover_monitors,
    random_monitors,
    simulate_interception,
    top_degree_monitors,
    victim_adjacent_monitors,
)
from repro.detection import detection_timing
from repro.exceptions import DetectionError
from repro.utils.tables import format_table

BUDGETS = (50, 100, 200)
ATTACKS = 60
SEED = 11


def main() -> None:
    rng = random.Random(SEED)
    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    graph = world.graph
    engine = PropagationEngine(graph)
    detector = ASPPInterceptionDetector(graph)

    # A fixed campaign of effective attacks.
    attacks = []
    while len(attacks) < ATTACKS:
        attacker = rng.choice(world.transit_ases)
        victim = rng.choice(graph.ases)
        if victim == attacker:
            continue
        result = simulate_interception(
            engine, victim=victim, attacker=attacker, origin_padding=3
        )
        if result.report.after:
            attacks.append(result)

    rows = []
    for budget in BUDGETS:
        top = RouteCollector(graph, top_degree_monitors(graph, budget))
        rand = RouteCollector(
            graph, random_monitors(graph, budget, random.Random(SEED + budget))
        )

        def accuracy(collector: RouteCollector) -> float:
            hits = sum(
                detection_timing(a, collector, detector).detected for a in attacks
            )
            return 100 * hits / len(attacks)

        def accuracy_victim_adjacent() -> float:
            hits = 0
            for attack in attacks:
                try:
                    monitors = victim_adjacent_monitors(
                        graph, attack.attack.victim, budget
                    )
                except DetectionError:
                    continue
                hits += detection_timing(
                    attack, RouteCollector(graph, monitors), detector
                ).detected
            return 100 * hits / len(attacks)

        cover = RouteCollector(graph, greedy_cover_monitors(graph, budget))
        rows.append(
            (
                budget,
                round(accuracy(top), 1),
                round(accuracy(rand), 1),
                round(accuracy_victim_adjacent(), 1),
                round(accuracy(cover), 1),
            )
        )

    print(
        format_table(
            ("budget", "top-degree_%", "random_%", "victim-adjacent_%", "greedy-cover_%"),
            rows,
            title=f"Detection accuracy over {ATTACKS} attacks",
        )
    )
    print()
    print(
        "Pollution lives inside the attacker's customer cone, so monitors at\n"
        "the very top of the hierarchy often sit above it; spreading monitors\n"
        "into the edge (random) helps, and explicitly covering attacker cones\n"
        "(greedy set-cover) wins at every budget."
    )


if __name__ == "__main__":
    main()
