"""RouteViews / RIPE-style route collectors.

The paper's measurement and detection pipelines consume the best routes
of *monitor* ASes — networks that run an eBGP session to a public
collector and export their table ("The logs contain the best route from
all the peering routers").  :class:`RouteCollector` models exactly
that: given a propagation outcome and a set of monitor ASes, it yields
a :class:`MonitorView`, optionally as a time series of snapshots so the
detector can compare a route *change* against all other monitors'
current routes.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.bgp.engine import PathModifier, PropagationOutcome
from repro.bgp.route import Route
from repro.exceptions import DetectionError, UnknownASError
from repro.topology.asgraph import ASGraph

__all__ = ["MonitorView", "RouteCollector", "CollectorFeed"]


@dataclass(frozen=True)
class MonitorView:
    """One snapshot of the routes all monitors export for one prefix.

    ``routes`` maps monitor ASN to the best route it holds (``None``
    when the monitor has no route to the prefix).
    """

    prefix: str
    routes: dict[int, Route | None]

    @property
    def monitors(self) -> list[int]:
        return sorted(self.routes)

    def paths(self) -> dict[int, tuple[int, ...]]:
        """Monitor -> AS-PATH, skipping monitors without a route."""
        return {
            monitor: route.path
            for monitor, route in self.routes.items()
            if route is not None
        }

    def dump(self) -> str:
        """Human-readable RIB dump (one line per monitor)."""
        lines = [f"prefix {self.prefix}"]
        for monitor in self.monitors:
            route = self.routes[monitor]
            path = " ".join(str(a) for a in route.path) if route else "(no route)"
            lines.append(f"  monitor AS{monitor}: {path}")
        return "\n".join(lines)


class RouteCollector:
    """Collects the best routes of a fixed set of monitor ASes."""

    def __init__(self, graph: ASGraph, monitors: Iterable[int]) -> None:
        self._monitors = tuple(sorted(set(monitors)))
        if not self._monitors:
            raise DetectionError("a collector needs at least one monitor AS")
        for monitor in self._monitors:
            if monitor not in graph:
                raise UnknownASError(monitor)
        self._graph = graph

    @property
    def monitors(self) -> tuple[int, ...]:
        return self._monitors

    def snapshot(
        self,
        outcome: PropagationOutcome,
        *,
        modifiers: Mapping[int, PathModifier] | None = None,
    ) -> MonitorView:
        """Capture the monitors' best routes from a converged outcome.

        ``modifiers`` mirrors the engine's attacker hook: the collector
        session is just another eBGP neighbour, so an attacker that
        happens to peer with the collector announces its *modified*
        route there too (announcing the unmodified one would expose the
        inconsistency directly on its own feed).
        """
        routes: dict[int, Route | None] = {}
        for monitor in self._monitors:
            route = outcome.best.get(monitor)
            if route is not None and modifiers and monitor in modifiers:
                route = Route(
                    prefix=route.prefix,
                    path=modifiers[monitor](route.path),
                    learned_from=route.learned_from,
                    pref=route.pref,
                )
            routes[monitor] = route
        return MonitorView(prefix=outcome.prefix, routes=routes)


@dataclass
class CollectorFeed:
    """An ordered series of snapshots for one prefix.

    The detection algorithm works on route *changes*: for each monitor
    it compares consecutive snapshots, and checks the new route against
    the latest routes of all other monitors.
    """

    prefix: str
    snapshots: list[MonitorView] = field(default_factory=list)

    def append(self, view: MonitorView) -> None:
        if view.prefix != self.prefix:
            raise DetectionError(
                f"snapshot is for prefix {view.prefix}, feed is for {self.prefix}"
            )
        self.snapshots.append(view)

    def changes(self) -> list[tuple[int, Route | None, Route | None, MonitorView]]:
        """All per-monitor route changes across consecutive snapshots.

        Yields ``(monitor, previous_route, new_route, current_view)``
        tuples in snapshot order.
        """
        result: list[tuple[int, Route | None, Route | None, MonitorView]] = []
        for before, after in zip(self.snapshots, self.snapshots[1:]):
            for monitor, new_route in after.routes.items():
                old_route = before.routes.get(monitor)
                if old_route != new_route:
                    result.append((monitor, old_route, new_route, after))
        return result
