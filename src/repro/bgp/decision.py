"""The BGP decision process used by the simulator.

The paper's route selection follows the standard profit-driven model:

1. highest local preference — customer routes beat sibling routes beat
   peer routes beat provider routes ("valley-free profit-driven
   policy");
2. shortest AS-PATH (this is where prepending, and the attack, act);
3. deterministic tie-break on the lowest announcing neighbour ASN, so
   simulations are exactly reproducible.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.bgp.route import Route

__all__ = ["preference_key", "best_route", "admit_offer"]


def preference_key(route: Route) -> tuple[int, int, int]:
    """Sort key for route preference: smaller is better."""
    return (
        int(route.pref),
        len(route.path),
        route.learned_from if route.learned_from is not None else -1,
    )


def best_route(candidates: Iterable[Route]) -> Route | None:
    """Select the most preferred route, or ``None`` if there are none."""
    best: Route | None = None
    best_key: tuple[int, int, int] | None = None
    for route in candidates:
        key = preference_key(route)
        if best_key is None or key < best_key:
            best, best_key = route, key
    return best


def admit_offer(
    receiver: int,
    sender: int,
    path: tuple[int, ...],
    security_check: Callable[[int, int, tuple[int, ...]], bool] | None = None,
    import_filter: Callable[[int, tuple[int, ...]], bool] | None = None,
    stats: list[int] | None = None,
) -> bool:
    """Receiver-side admission test, run before an offer is ranked.

    This fixes the composition order both engine backends implement: a
    deployed security policy (:class:`repro.bgp.policy.ImportPolicy`)
    judges the offer first, then any ad-hoc import filter — so the
    ``secpol.evaluated``/``secpol.filtered`` telemetry counts every
    offer the policy saw, regardless of what a stacked filter would
    have said.  ``stats`` is a mutable ``[evaluated, filtered]`` pair
    the caller aggregates across the propagation.
    """
    if security_check is not None:
        if stats is not None:
            stats[0] += 1
        if not security_check(receiver, sender, path):
            if stats is not None:
                stats[1] += 1
            return False
    return import_filter is None or import_filter(sender, path)
