"""Compiled dense-array propagation core.

This module is the ``backend="compiled"`` implementation behind
:class:`repro.bgp.engine.PropagationEngine`.  It trades the reference
engine's dict-of-tuples interpretation for three flat data structures:

* :class:`CompiledTopology` — ASNs renumbered into a dense ``0..N-1``
  index space (index order == ascending-ASN order, so index
  comparisons reproduce the reference engine's ASN tie-breaks) with
  adjacency flattened into contiguous CSR-style arrays
  (``array('i')``/``array('b')``): neighbour index, the preference
  class the neighbour assigns, the always-export bit and the sibling
  bit per directed edge slot, plus a reverse-slot map so an
  announcement lands directly in the receiver's Adj-RIB-in slot.

* :class:`InternTable` — AS-paths interned as canonical run-length
  chains, so the decision loop compares paths by ``(pref, length,
  sender)`` with plain ``int`` comparisons and checks loop prevention
  with one big-int mask AND, never materialising a tuple.  Paths are
  reified into real tuples only when a
  :class:`~repro.bgp.engine.PropagationOutcome` is built, which keeps
  the public API and every result bit-identical to the reference
  backend (the invariant/differential suites are the oracle).

* :class:`CompiledState` — a converged run's best/rib arrays, attached
  to the outcome so warm starts (attack onsets) and the baseline
  cache's uniform-λ derivations stay in compiled space: loading a warm
  start is five C-speed list copies, and deriving a λ variant rewrites
  each *distinct* interned path once instead of rebuilding every tuple.

Canonical interning is a correctness requirement, not just a speed-up:
the reference engine decides "did my best route actually change?" by
value equality, so two equal paths must always intern to the same id
(:meth:`InternTable.extend` merges adjacent runs of the same head to
guarantee this).
"""

from __future__ import annotations

import random
import struct
from array import array
from collections import deque
from collections.abc import Mapping
from typing import TYPE_CHECKING, Callable

from repro.bgp.policy import ExportPolicy
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import Route
from repro.exceptions import ConvergenceError
from repro.telemetry.metrics import RunMetrics
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import PrefClass, Relationship

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.bgp.engine import PropagationOutcome

__all__ = ["CompiledTopology", "InternTable", "CompiledState", "run_compiled"]

#: Relationship <-> byte code for the per-slot role array (the code is
#: the role of the neighbour relative to the slot's owner).
_REL_CODE = {
    Relationship.CUSTOMER: 0,
    Relationship.PROVIDER: 1,
    Relationship.PEER: 2,
    Relationship.SIBLING: 3,
}
_CODE_REL = (
    Relationship.CUSTOMER,
    Relationship.PROVIDER,
    Relationship.PEER,
    Relationship.SIBLING,
)

#: PrefClass members indexable by their integer value (0..4).
_PREF_OF = tuple(sorted(PrefClass, key=int))

#: Export-to-peers/providers is allowed for ORIGIN/CUSTOMER/SIBLING
#: routes — the largest such class value, as an int for the hot loop.
_EXPORTABLE_UP_MAX = int(PrefClass.SIBLING)

_PAYLOAD_HEADER = struct.Struct("<qq")


class CompiledTopology:
    """A relationship-annotated AS graph in dense CSR form.

    ``asn[i]`` is the AS number at index ``i`` and ascending index is
    ascending ASN.  Slot ``k`` in ``indptr[i]:indptr[i+1]`` describes
    the directed edge from ``i`` to ``nbr[k]`` (neighbours ascending,
    matching the reference engine's announcement order):

    * ``inv_pref[k]`` — preference class ``nbr[k]`` assigns to routes
      announced by ``i`` (the relationship seen from the far side);
    * ``always_export[k]`` — 1 when valley-free export from ``i`` to
      ``nbr[k]`` is unconditional (customer or sibling);
    * ``is_sibling[k]`` — 1 for sibling edges (the receiver inherits
      the sender's own preference class);
    * ``role_code[k]`` — the neighbour's role relative to ``i``
      (:data:`_REL_CODE`), kept for non-stock export policies;
    * ``rev_slot[k]`` — the slot of ``i`` inside ``nbr[k]``'s block,
      i.e. the receiver-side Adj-RIB-in cell this edge announces into.

    ``iter_order`` preserves the source graph's insertion order so
    emitted outcome dicts iterate exactly like the reference engine's.
    The arrays round-trip through :meth:`to_payload` /
    :meth:`from_payload`, which is what the runner ships through
    ``multiprocessing.shared_memory`` instead of pickling the graph
    into every pool worker.
    """

    __slots__ = (
        "n",
        "asn",
        "index",
        "iter_order",
        "indptr",
        "nbr",
        "inv_pref",
        "always_export",
        "is_sibling",
        "role_code",
        "rev_slot",
        "_hot",
        "_slot_index",
        "_roles",
        "_bits",
        "_np",
    )

    def __init__(
        self,
        *,
        asn: array,
        iter_order: array,
        indptr: array,
        nbr: array,
        inv_pref: array,
        always_export: array,
        is_sibling: array,
        role_code: array,
        rev_slot: array,
    ) -> None:
        self.n = len(asn)
        self.asn = asn
        self.index = {a: i for i, a in enumerate(asn)}
        self.iter_order = iter_order
        self.indptr = indptr
        self.nbr = nbr
        self.inv_pref = inv_pref
        self.always_export = always_export
        self.is_sibling = is_sibling
        self.role_code = role_code
        self.rev_slot = rev_slot
        self._hot: tuple[list, ...] | None = None
        self._slot_index: list[dict[int, int]] | None = None
        self._roles: list[Relationship] | None = None
        self._bits: list[int] | None = None
        # NumPy edge views, built lazily by repro.bgp.vectorized.
        self._np = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: ASGraph) -> "CompiledTopology":
        """Compile ``graph`` (index ``i`` = rank of the ASN in sorted order)."""
        asns = graph.ases  # sorted
        index = {a: i for i, a in enumerate(asns)}
        indptr = array("i", [0])
        nbr = array("i")
        inv_pref = array("b")
        always_export = array("b")
        is_sibling = array("b")
        role_code = array("b")
        for a in asns:
            for b in graph.sorted_neighbors(a):
                role = graph.relationship(a, b)
                nbr.append(index[b])
                inv_pref.append(int(PrefClass.for_relationship(role.inverse())))
                always_export.append(
                    1 if role in (Relationship.CUSTOMER, Relationship.SIBLING) else 0
                )
                is_sibling.append(1 if role is Relationship.SIBLING else 0)
                role_code.append(_REL_CODE[role])
            indptr.append(len(nbr))
        n = len(asns)
        slot_index: list[dict[int, int]] = [
            {nbr[k]: k for k in range(indptr[i], indptr[i + 1])} for i in range(n)
        ]
        rev_slot = array("i", (slot_index[nbr[k]][i]
                               for i in range(n)
                               for k in range(indptr[i], indptr[i + 1])))
        topo = cls(
            asn=array("q", asns),
            iter_order=array("i", (index[a] for a in graph)),
            indptr=indptr,
            nbr=nbr,
            inv_pref=inv_pref,
            always_export=always_export,
            is_sibling=is_sibling,
            role_code=role_code,
            rev_slot=rev_slot,
        )
        topo._slot_index = slot_index
        return topo

    # ------------------------------------------------------------------
    def to_payload(self) -> bytes:
        """Serialise to one contiguous buffer (shared-memory transport)."""
        return b"".join(
            (
                _PAYLOAD_HEADER.pack(self.n, len(self.nbr)),
                self.asn.tobytes(),
                self.iter_order.tobytes(),
                self.indptr.tobytes(),
                self.nbr.tobytes(),
                self.rev_slot.tobytes(),
                self.inv_pref.tobytes(),
                self.always_export.tobytes(),
                self.is_sibling.tobytes(),
                self.role_code.tobytes(),
            )
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "CompiledTopology":
        """Rebuild from :meth:`to_payload` bytes (same host/ABI)."""
        n, num_slots = _PAYLOAD_HEADER.unpack_from(payload, 0)
        offset = _PAYLOAD_HEADER.size

        def take(typecode: str, count: int) -> array:
            nonlocal offset
            arr = array(typecode)
            nbytes = arr.itemsize * count
            arr.frombytes(payload[offset : offset + nbytes])
            offset += nbytes
            return arr

        return cls(
            asn=take("q", n),
            iter_order=take("i", n),
            indptr=take("i", n + 1),
            nbr=take("i", num_slots),
            rev_slot=take("i", num_slots),
            inv_pref=take("b", num_slots),
            always_export=take("b", num_slots),
            is_sibling=take("b", num_slots),
            role_code=take("b", num_slots),
        )

    def to_asgraph(self) -> ASGraph:
        """Reconstruct an :class:`ASGraph` (AS insertion order preserved)."""
        graph = ASGraph()
        asn = self.asn
        for i in self.iter_order:
            graph.add_as(asn[i])
        indptr = self.indptr
        nbr = self.nbr
        role_code = self.role_code
        for i in range(self.n):
            a = asn[i]
            for k in range(indptr[i], indptr[i + 1]):
                j = nbr[k]
                code = role_code[k]
                if code == 0:  # j is a's customer: add once, provider side
                    graph.add_p2c(a, asn[j])
                elif code == 2 and i < j:
                    graph.add_p2p(a, asn[j])
                elif code == 3 and i < j:
                    graph.add_s2s(a, asn[j])
        return graph

    # ------------------------------------------------------------------
    def hot_arrays(self) -> tuple[list, ...]:
        """The CSR columns as plain lists (pre-boxed ints for the loop)."""
        if self._hot is None:
            self._hot = (
                list(self.indptr),
                list(self.nbr),
                list(self.inv_pref),
                list(self.always_export),
                list(self.is_sibling),
                list(self.rev_slot),
                list(self.asn),
            )
        return self._hot

    @property
    def slot_index(self) -> list[dict[int, int]]:
        """Per-receiver map of sender index -> Adj-RIB-in slot."""
        if self._slot_index is None:
            self._slot_index = [
                {self.nbr[k]: k for k in range(self.indptr[i], self.indptr[i + 1])}
                for i in range(self.n)
            ]
        return self._slot_index

    @property
    def roles(self) -> list[Relationship]:
        """Per-slot neighbour role (only non-stock export policies use it)."""
        if self._roles is None:
            self._roles = [_CODE_REL[code] for code in self.role_code]
        return self._roles

    @property
    def bits(self) -> list[int]:
        """``bits[i] == 1 << i`` — membership bits for loop prevention."""
        if self._bits is None:
            self._bits = [1 << i for i in range(self.n)]
        return self._bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTopology(ases={self.n}, slots={len(self.nbr)})"


class InternTable:
    """Canonical interning of AS-paths over one :class:`CompiledTopology`.

    A path is a chain of run-length nodes: node ``p`` represents
    ``(head[p],) * run[p] + path(parent[p])`` with the *tail* of the
    AS-path (the origin's padded run) at the bottom of the chain.  Node
    0 is the empty path.  Per node the table keeps the total ``length``
    and a big-int ``mask`` of member indices, so the propagation loop
    answers "how long is this path?" and "does it already contain AS
    ``i``?" in O(1)/one AND.

    :meth:`extend` is canonical — extending by a head equal to the
    base's own head merges into one run — so *equal paths always have
    equal ids*, which is what lets the engine replace tuple equality
    with id equality.  ASNs outside the topology (a path modifier may
    inject them) get synthetic indices ``>= n``.

    ``hits``/``misses`` count node lookups vs. creations; the engine
    reports them as ``engine.compiled.intern_hits/_misses``.
    """

    __slots__ = (
        "topo",
        "parent",
        "head",
        "run",
        "length",
        "mask",
        "_nodes",
        "_tuple_memo",
        "_reified",
        "_extra_index",
        "_extra_asn",
        "hits",
        "misses",
    )

    def __init__(self, topo: CompiledTopology) -> None:
        self.topo = topo
        self.parent: list[int] = [0]
        self.head: list[int] = [-1]
        self.run: list[int] = [0]
        self.length: list[int] = [0]
        self.mask: list[int] = [0]
        self._nodes: dict[tuple[int, int, int], int] = {}
        self._tuple_memo: dict[tuple[int, ...], int] = {(): 0}
        self._reified: dict[int, tuple[int, ...]] = {0: ()}
        self._extra_index: dict[int, int] = {}
        self._extra_asn: list[int] = []
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.parent)

    @property
    def reified_count(self) -> int:
        return len(self._reified)

    # ------------------------------------------------------------------
    def index_of(self, asn: int) -> int:
        """Index of ``asn``, allocating a synthetic one off-topology."""
        idx = self.topo.index.get(asn)
        if idx is None:
            idx = self._extra_index.get(asn)
            if idx is None:
                idx = self.topo.n + len(self._extra_asn)
                self._extra_index[asn] = idx
                self._extra_asn.append(asn)
        return idx

    def asn_of(self, idx: int) -> int:
        topo = self.topo
        return topo.asn[idx] if idx < topo.n else self._extra_asn[idx - topo.n]

    def extend(self, base: int, head_idx: int, count: int) -> int:
        """Id of ``(head,) * count + path(base)`` (canonical)."""
        if self.head[base] == head_idx:
            count += self.run[base]
            base = self.parent[base]
        key = (base, head_idx, count)
        pid = self._nodes.get(key)
        if pid is None:
            self.misses += 1
            pid = len(self.parent)
            self._nodes[key] = pid
            self.parent.append(base)
            self.head.append(head_idx)
            self.run.append(count)
            self.length.append(self.length[base] + count)
            self.mask.append(self.mask[base] | (1 << head_idx))
        else:
            self.hits += 1
        return pid

    def intern_tuple(self, path: tuple[int, ...]) -> int:
        """Id of an explicit AS-path tuple (memoised)."""
        pid = self._tuple_memo.get(path)
        if pid is None:
            pid = 0
            current: int | None = None
            count = 0
            for asn in reversed(path):
                if asn == current:
                    count += 1
                else:
                    if count:
                        pid = self.extend(pid, self.index_of(current), count)
                    current = asn
                    count = 1
            if count:
                pid = self.extend(pid, self.index_of(current), count)
            self._tuple_memo[path] = pid
        return pid

    def reify(self, pid: int) -> tuple[int, ...]:
        """The real AS-path tuple for ``pid`` (memoised; shared suffixes
        are built once per table)."""
        path = self._reified.get(pid)
        if path is None:
            head_idx = self.head[pid]
            topo = self.topo
            asn = (
                topo.asn[head_idx]
                if head_idx < topo.n
                else self._extra_asn[head_idx - topo.n]
            )
            path = (asn,) * self.run[pid] + self.reify(self.parent[pid])
            self._reified[pid] = path
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InternTable(nodes={len(self.parent)}, reified={len(self._reified)})"


class CompiledState:
    """A converged routing state in compiled (index / intern-id) space.

    Attached to every :class:`~repro.bgp.engine.PropagationOutcome` the
    compiled backend produces (and to baselines the cache derives), so
    a warm start loads the arrays straight back instead of re-interning
    thousands of path tuples.  ``best_pref[i] == -1`` means no route;
    ``rib_pid[k]`` is ``-2`` for an absent offer and ``-1`` for an
    explicit withdrawal — the distinction the reference engine keeps
    between "never offered" and ``None`` in the Adj-RIB-in.

    The state pins its :class:`InternTable` (and through it the
    topology); it is derived data and never pickled
    (``PropagationOutcome.__getstate__`` drops it).
    """

    __slots__ = (
        "table",
        "best_pref",
        "best_pid",
        "best_from",
        "rib_pid",
        "rib_pref",
        "_trav",
    )

    def __init__(
        self,
        table: InternTable,
        best_pref: list[int],
        best_pid: list[int],
        best_from: list[int],
        rib_pid: list[int],
        rib_pref: list[int],
    ) -> None:
        self.table = table
        self.best_pref = best_pref
        self.best_pid = best_pid
        self.best_from = best_from
        self.rib_pid = rib_pid
        self.rib_pref = rib_pref
        #: per-attacker traversal membership memo (lazily created by
        #: :mod:`repro.attack.impact`); converged states are immutable,
        #: so the memo never invalidates.
        self._trav: dict[int, frozenset[int]] | None = None

    @property
    def topo(self) -> CompiledTopology:
        return self.table.topo

    def derive_uniform(self, victim: int, padding: int) -> "CompiledState":
        """The state for uniform origin padding ``λ = padding``, derived
        from this canonical ``λ = 1`` state.

        Mirrors :func:`repro.runner.cache.derive_uniform_baseline` in
        compiled space: every path ends with the victim's padded run,
        so each *distinct* interned path is rewritten exactly once (the
        memo walks each chain node once), instead of rebuilding a tuple
        per AS and per Adj-RIB-in offer.
        """
        table = self.table
        victim_idx = table.topo.index[victim]
        parent = table.parent
        head = table.head
        run = table.run
        extend = table.extend
        memo = {0: 0}

        def rewrite(pid: int) -> int:
            new = memo.get(pid)
            if new is None:
                above = parent[pid]
                if above == 0 and head[pid] == victim_idx:
                    # The trailing victim run: λ copies instead of one.
                    new = extend(0, victim_idx, padding)
                else:
                    new = extend(rewrite(above), head[pid], run[pid])
                memo[pid] = new
            return new

        return CompiledState(
            table,
            self.best_pref.copy(),
            [rewrite(pid) for pid in self.best_pid],
            self.best_from.copy(),
            [pid if pid < 0 else rewrite(pid) for pid in self.rib_pid],
            self.rib_pref.copy(),
        )


# ----------------------------------------------------------------------
def run_compiled(
    topo: CompiledTopology,
    table: InternTable,
    *,
    origin: int,
    prefix: str,
    prepending: PrependingPolicy,
    modifiers: Mapping[int, Callable[[tuple[int, ...]], tuple[int, ...]]],
    export_policy: ExportPolicy,
    import_filters: Mapping[int, Callable[[int, tuple[int, ...]], bool]],
    warm_start: "PropagationOutcome | None",
    seed: set[int] | None,
    activation: str,
    activation_rng: random.Random | None,
    incremental: bool,
    max_activations: int,
    metrics: RunMetrics | None,
    secpol: object | None = None,
) -> "PropagationOutcome":
    """One propagation fixpoint on the compiled arrays.

    Arguments arrive validated and defaulted by
    :meth:`PropagationEngine.propagate`; the control flow below mirrors
    the reference loop statement for statement (same activation trace,
    same fast-path accounting, same adoption stamps) with paths held as
    intern ids until the outcome is emitted.  ``secpol`` is the
    security-policy deployment hook: deployed receivers are marked in a
    dense bytearray and take the full decision scan, where the policy's
    pid-space checker judges each offer without reifying a tuple —
    admission order (policy first, then any import filter) matches
    :func:`repro.bgp.decision.admit_offer`.
    """
    index = topo.index
    n = topo.n
    indptr, nbr, inv_pref, always_export, is_sib, rev, asn_of = topo.hot_arrays()
    bits = topo.bits
    length = table.length
    mask = table.mask
    extend = table.extend
    reify = table.reify
    origin_idx = index[origin]
    num_slots = len(nbr)

    track = metrics is not None and metrics.enabled
    if track:
        announcements = fastpath_hits = fastpath_misses = best_changes = 0
        peak_queue = 0
        intern_hits_start = table.hits
        intern_misses_start = table.misses
        reified_start = table.reified_count

    warm_fast = False
    if warm_start is not None:
        state = warm_start.compiled_state
        if isinstance(state, CompiledState) and state.table is table:
            # The usual case: warm-starting from a compiled (or cache-
            # derived) outcome over the same table — five array copies.
            best_pref = state.best_pref.copy()
            best_pid = state.best_pid.copy()
            best_from = state.best_from.copy()
            rib_pid = state.rib_pid.copy()
            rib_pref = state.rib_pref.copy()
            warm_fast = True
        else:
            # Foreign outcome (reference backend, other engine): intern
            # its tuples into this table once.
            best_pref = [-1] * n
            best_pid = [0] * n
            best_from = [-1] * n
            rib_pid = [-2] * num_slots
            rib_pref = [0] * num_slots
            intern = table.intern_tuple
            for a, route in warm_start.best.items():
                if route is None:
                    continue
                i = index[a]
                best_pref[i] = int(route.pref)
                best_pid[i] = intern(route.path)
                learned = route.learned_from
                best_from[i] = -1 if learned is None else index[learned]
            slot_index = topo.slot_index
            for a, offers in warm_start.adj_rib_in.items():
                slots = slot_index[index[a]]
                for sender_asn, offer in offers.items():
                    k = slots[index[sender_asn]]
                    if offer is None:
                        rib_pid[k] = -1
                    else:
                        rib_pid[k] = intern(offer[0])
                        rib_pref[k] = int(offer[1])
        adoption: dict[int, int] = {}
        initial = sorted(index[a] for a in seed)
    else:
        best_pref = [-1] * n
        best_pid = [0] * n
        best_from = [-1] * n
        best_pref[origin_idx] = int(PrefClass.ORIGIN)
        rib_pid = [-2] * num_slots
        rib_pref = [0] * num_slots
        adoption = {origin_idx: 0}
        initial = [origin_idx]

    # Policy state in index space (non-graph ASNs can never activate).
    stock_export = type(export_policy) is ExportPolicy
    violator_idx = {index[a] for a in export_policy.violators if a in index}
    pad_senders = {index[a] for a in prepending.senders() if a in index}
    mods = {index[a]: fn for a, fn in modifiers.items()}
    imps = {index[a]: fn for a, fn in import_filters.items() if a in index}
    roles = topo.roles if not stock_export else None

    # Security-policy deployment as a dense bitmask: the hot loop pays
    # one bytearray index per offer whether or not a policy is attached,
    # and the pid-space checker runs only inside deployed receivers'
    # full scans.  Counter semantics mirror the reference backend's
    # admit_offer accounting exactly.
    sec_deployed = bytearray(n)
    sec_fn = None
    sec_count = 0
    if secpol is not None:
        sec_fn = secpol.compiled_checker(table)
        for a in secpol.deployers:
            i = index.get(a)
            if i is not None and not sec_deployed[i]:
                sec_deployed[i] = 1
                sec_count += 1
    sec_eval = sec_filt = 0

    def decide(recv: int, imp, sec) -> tuple[int, int, int]:
        """Full Adj-RIB-in scan: min preference key, reference order."""
        nonlocal sec_eval, sec_filt
        b_pref = -1
        b_pid = 0
        b_from = -1
        b_len = 0
        for k in range(indptr[recv], indptr[recv + 1]):
            pid = rib_pid[k]
            if pid < 0:
                continue
            p = rib_pref[k]
            snd = nbr[k]
            if sec is not None:
                sec_eval += 1
                if not sec(recv, snd, pid):
                    sec_filt += 1
                    continue
            if imp is not None and not imp(asn_of[snd], reify(pid)):
                continue
            plen = length[pid]
            if (
                b_from < 0
                or p < b_pref
                or (p == b_pref and (plen < b_len or (plen == b_len and snd < b_from)))
            ):
                b_pref = p
                b_pid = pid
                b_from = snd
                b_len = plen
        return b_pref, b_pid, b_from

    round_of = [0] * n
    # Receivers whose Adj-RIB-in changed — warm-run emission rebuilds
    # only these (the compiled mirror of the reference backend's
    # copy-on-write clone).
    rib_touched: set[int] = set()
    queue: deque[int] = deque(initial)
    queued = bytearray(n)
    for i in initial:
        queued[i] = 1
    operations = 0
    budget = max_activations * max(1, n)
    max_round = 0
    randrange = activation_rng.randrange if activation_rng is not None else None
    padding_of = prepending.padding
    while queue:
        operations += 1
        if operations > budget:
            raise ConvergenceError(operations)
        if activation == "fifo":
            s = queue.popleft()
        elif activation == "lifo":
            s = queue.pop()
        else:
            pick = randrange(len(queue))
            queue[pick], queue[-1] = queue[-1], queue[pick]
            s = queue.pop()
        queued[s] = 0
        s_pref = best_pref[s]
        has_route = s_pref >= 0
        sender_round = round_of[s]
        block_start = indptr[s]
        block_end = indptr[s + 1]
        if track:
            qlen = len(queue) + 1  # including the activation just popped
            if qlen > peak_queue:
                peak_queue = qlen
            announcements += block_end - block_start
        if has_route:
            base_pid = best_pid[s]
            modifier = mods.get(s)
            if modifier is not None:
                base_pid = table.intern_tuple(modifier(reify(base_pid)))
            exportable_up = s_pref <= _EXPORTABLE_UP_MAX
            sender_violates = s in violator_idx
            sender_pads = s in pad_senders
            s_asn = asn_of[s]
            pid_by_count: dict[int, int] = {}
        for k in range(block_start, block_end):
            nb = nbr[k]
            offer_pid = -1  # None/no offer
            offer_pref = 0
            if has_route:
                if stock_export:
                    allowed = sender_violates or always_export[k] or exportable_up
                else:
                    allowed = export_policy.allows_export(
                        s_asn, roles[k], _PREF_OF[s_pref]
                    )
                if allowed:
                    count = padding_of(s_asn, asn_of[nb]) if sender_pads else 1
                    pid = pid_by_count.get(count)
                    if pid is None:
                        pid = extend(base_pid, s, count)
                        pid_by_count[count] = pid
                    # Receiver-side loop prevention: one mask AND
                    # instead of scanning the path tuple.
                    if not mask[pid] & bits[nb]:
                        offer_pid = pid
                        offer_pref = s_pref if is_sib[k] else inv_pref[k]
            slot = rev[k]
            if offer_pid < 0:
                if rib_pid[slot] < 0:
                    # absent or already-withdrawn: rib.get(sender) == None
                    continue
                rib_pid[slot] = -1
            else:
                if rib_pid[slot] == offer_pid and rib_pref[slot] == offer_pref:
                    continue
                rib_pid[slot] = offer_pid
                rib_pref[slot] = offer_pref
            rib_touched.add(nb)
            if nb == origin_idx:
                continue  # the owner always keeps its own route
            cur_pref = best_pref[nb]
            imp = imps.get(nb)
            if imp is not None or sec_deployed[nb] or not incremental:
                if track:
                    fastpath_misses += 1
                new_pref, new_pid, new_from = decide(
                    nb, imp, sec_fn if sec_deployed[nb] else None
                )
            elif offer_pid < 0:
                if cur_pref >= 0 and best_from[nb] == s:
                    # The best offer was withdrawn: full re-decision.
                    if track:
                        fastpath_misses += 1
                    new_pref, new_pid, new_from = decide(nb, None, None)
                else:
                    if track:
                        fastpath_hits += 1
                    continue  # losing a non-best offer changes nothing
            elif cur_pref < 0:
                if track:
                    fastpath_hits += 1
                new_pref, new_pid, new_from = offer_pref, offer_pid, s
            elif best_from[nb] == s:
                # cand_key <= current_key with an equal sender component.
                if offer_pref < cur_pref or (
                    offer_pref == cur_pref
                    and length[offer_pid] <= length[best_pid[nb]]
                ):
                    if track:
                        fastpath_hits += 1
                    new_pref, new_pid, new_from = offer_pref, offer_pid, s
                else:
                    if track:
                        fastpath_misses += 1
                    new_pref, new_pid, new_from = decide(nb, None, None)
            else:
                if offer_pref > cur_pref:
                    if track:
                        fastpath_hits += 1
                    continue  # a worse-ranked offer cannot displace the best
                if offer_pref == cur_pref:
                    cand_len = length[offer_pid]
                    best_len = length[best_pid[nb]]
                    if cand_len > best_len or (
                        cand_len == best_len and s > best_from[nb]
                    ):
                        if track:
                            fastpath_hits += 1
                        continue
                if track:
                    fastpath_hits += 1
                new_pref, new_pid, new_from = offer_pref, offer_pid, s
            # Unchanged decision: canonical interning makes path
            # equality id equality, so this is the reference engine's
            # ``new_best == current`` test in three int compares.
            if new_pref == cur_pref and (
                cur_pref < 0 or (new_pid == best_pid[nb] and new_from == best_from[nb])
            ):
                continue
            if track:
                best_changes += 1
            if new_pref < 0:
                best_pref[nb] = -1
                best_pid[nb] = 0
                best_from[nb] = -1
            else:
                best_pref[nb] = new_pref
                best_pid[nb] = new_pid
                best_from[nb] = new_from
            stamp = sender_round + 1
            adoption[nb] = stamp
            round_of[nb] = stamp
            if stamp > max_round:
                max_round = stamp
            if not queued[nb]:
                queue.append(nb)
                queued[nb] = 1

    # ------------------------------------------------------------------
    # Emission: reify interned paths into the public tuple-based outcome
    # (memoised per table, so repeated paths are built once).  Cold runs
    # build every dict in the reference engine's iteration order; warm
    # runs copy the warm start's dicts and rebuild only what the attack
    # actually perturbed — the compiled counterpart of the reference
    # backend's copy-on-write clone, with identical dict contents.
    # Emission is *deferred*: the outcome carries this closure and runs
    # it on first access to ``best``/``adj_rib_in``/``best_keys``, so a
    # pipeline that only consumes the attached compiled state (warm
    # starts, λ derivations, pollution masks) never builds a tuple.
    def materialise(out: "PropagationOutcome") -> None:
        pref_of = _PREF_OF

        def emit_best(i: int) -> tuple[Route | None, tuple[int, int, int] | None]:
            p = best_pref[i]
            if p < 0:
                return None, None
            pid = best_pid[i]
            learned_idx = best_from[i]
            learned = None if learned_idx < 0 else asn_of[learned_idx]
            return (
                Route(prefix, reify(pid), learned, pref_of[p]),
                (p, length[pid], -1 if learned is None else learned),
            )

        def emit_offers(i: int) -> dict[int, tuple[tuple[int, ...], PrefClass] | None]:
            offers: dict[int, tuple[tuple[int, ...], PrefClass] | None] = {}
            for k in range(indptr[i], indptr[i + 1]):
                pid = rib_pid[k]
                if pid == -2:
                    continue
                offers[asn_of[nbr[k]]] = (
                    None if pid == -1 else (reify(pid), pref_of[rib_pref[k]])
                )
            return offers

        if warm_start is not None:
            best_out = dict(warm_start.best)
            adj_out = dict(warm_start.adj_rib_in)
            warm_keys = warm_start.best_keys
            if warm_keys is not None:
                keys_out = dict(warm_keys)
                for i in adoption:
                    a = asn_of[i]
                    best_out[a], keys_out[a] = emit_best(i)
            else:
                keys_out = {}
                for i in topo.iter_order:
                    a = asn_of[i]
                    if i in adoption:
                        best_out[a], keys_out[a] = emit_best(i)
                    else:
                        route = best_out[a]
                        keys_out[a] = (
                            None
                            if route is None
                            else (int(route.pref), len(route.path), route.learned_from
                                  if route.learned_from is not None else -1)
                        )
            for i in rib_touched:
                adj_out[asn_of[i]] = emit_offers(i)
        else:
            best_out = {}
            keys_out = {}
            adj_out = {}
            for i in topo.iter_order:
                a = asn_of[i]
                best_out[a], keys_out[a] = emit_best(i)
                adj_out[a] = emit_offers(i)
        out._set_materialised(best_out, adj_out, keys_out)

    from repro.bgp.engine import PropagationOutcome  # deferred: engine imports us

    outcome = PropagationOutcome(
        prefix=prefix,
        origin=origin,
        adoption_round={asn_of[i]: stamp for i, stamp in adoption.items()},
        rounds=max_round,
        emit=materialise,
    )
    outcome.compiled_state = CompiledState(
        table, best_pref, best_pid, best_from, rib_pid, rib_pref
    )

    if track:
        # Identical warm/cold accounting to the reference backend (the
        # pooled-vs-serial determinism contract covers engine.warm.*),
        # plus compiled-only counters under engine.compiled.* — those
        # depend on intern-table locality and stay out of deterministic
        # snapshots, like cache.*.
        ns = "engine.warm" if warm_start is not None else "engine.cold"
        metrics.count(f"{ns}.propagations")
        metrics.count(f"{ns}.activations", operations)
        metrics.count(f"{ns}.announcements", announcements)
        metrics.count(f"{ns}.fastpath_hits", fastpath_hits)
        metrics.count(f"{ns}.fastpath_misses", fastpath_misses)
        metrics.count(f"{ns}.best_changes", best_changes)
        metrics.observe(f"{ns}.convergence_rounds", max_round)
        metrics.observe(f"{ns}.queue_peak", peak_queue)
        if secpol is not None:
            metrics.count("secpol.evaluated", sec_eval)
            metrics.count("secpol.filtered", sec_filt)
            metrics.count("secpol.deployed_ases", sec_count)
        metrics.count("engine.compiled.propagations")
        metrics.count("engine.compiled.intern_hits", table.hits - intern_hits_start)
        metrics.count(
            "engine.compiled.intern_misses", table.misses - intern_misses_start
        )
        metrics.count(
            "engine.compiled.reified_paths", table.reified_count - reified_start
        )
        if warm_start is not None:
            metrics.count(
                "engine.compiled.warm_fast_loads"
                if warm_fast
                else "engine.compiled.warm_tuple_loads"
            )

    return outcome
