"""Text persistence for collector views (offline detection pipelines).

Real deployments of the paper's detector consume archived collector
dumps rather than a live simulator (the paper's study itself parsed
RouteViews table archives).  This module serialises
:class:`~repro.bgp.collectors.MonitorView` snapshots to a compact,
line-oriented text format and parses them back, so detection can run
on files the same way it runs on in-memory outcomes::

    # repro-rib 1
    prefix 203.0.113.0/24
    7018|peer|3356|3356 32934 32934 32934
    2914|-|-|-

Fields are ``monitor|pref|learned_from|path``; ``-`` marks a monitor
with no route.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.bgp.collectors import MonitorView
from repro.bgp.route import Route
from repro.exceptions import SerializationError
from repro.topology.relationships import PrefClass

__all__ = ["dumps_view", "loads_view", "save_view", "load_view"]

_MAGIC = "# repro-rib 1"


def dumps_view(view: MonitorView) -> str:
    """Serialise one monitor-view snapshot."""
    out = io.StringIO()
    out.write(f"{_MAGIC}\n")
    out.write(f"prefix {view.prefix}\n")
    for monitor in view.monitors:
        route = view.routes[monitor]
        if route is None:
            out.write(f"{monitor}|-|-|-\n")
            continue
        learned = route.learned_from if route.learned_from is not None else "-"
        path = " ".join(str(asn) for asn in route.path) if route.path else "-"
        out.write(f"{monitor}|{route.pref.name.lower()}|{learned}|{path}\n")
    return out.getvalue()


def loads_view(text: str) -> MonitorView:
    """Parse a snapshot produced by :func:`dumps_view`."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0].strip() != _MAGIC:
        raise SerializationError(f"missing magic header {_MAGIC!r}")
    if len(lines) < 2 or not lines[1].startswith("prefix "):
        raise SerializationError("missing 'prefix <p>' line")
    prefix = lines[1].split(" ", 1)[1].strip()
    routes: dict[int, Route | None] = {}
    for line_number, raw in enumerate(lines[2:], start=3):
        parts = raw.split("|")
        if len(parts) != 4:
            raise SerializationError(
                f"line {line_number}: expected 'monitor|pref|learned|path', got {raw!r}"
            )
        monitor_text, pref_text, learned_text, path_text = (
            part.strip() for part in parts
        )
        try:
            monitor = int(monitor_text)
        except ValueError as exc:
            raise SerializationError(
                f"line {line_number}: bad monitor ASN {monitor_text!r}"
            ) from exc
        if pref_text == "-":
            routes[monitor] = None
            continue
        try:
            pref = PrefClass[pref_text.upper()]
        except KeyError as exc:
            raise SerializationError(
                f"line {line_number}: unknown preference class {pref_text!r}"
            ) from exc
        learned = None if learned_text == "-" else int(learned_text)
        path: tuple[int, ...] = ()
        if path_text != "-":
            try:
                path = tuple(int(asn) for asn in path_text.split())
            except ValueError as exc:
                raise SerializationError(
                    f"line {line_number}: bad AS path {path_text!r}"
                ) from exc
        routes[monitor] = Route(prefix, path, learned, pref)
    return MonitorView(prefix=prefix, routes=routes)


def save_view(view: MonitorView, path: str | Path) -> None:
    """Write a snapshot to ``path``."""
    Path(path).write_text(dumps_view(view))


def load_view(path: str | Path) -> MonitorView:
    """Read a snapshot from ``path``."""
    return loads_view(Path(path).read_text())
