"""Per-neighbour AS-path prepending schedules.

An AS's prepending configuration is a map from (sender, receiver) to
the *total* number of copies of the sender's ASN inserted when the
sender announces to that receiver (1 = no prepending).  This captures
both flavours the paper describes:

* **source prepending** — the prefix owner pads its origination,
  possibly differently per neighbour (Figure 3: ``[V V]`` to one
  neighbour, ``[V V V]`` to another, to steer inbound traffic);
* **intermediary prepending** — a transit AS pads routes it forwards.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import PolicyError

__all__ = ["PrependingPolicy"]


class PrependingPolicy:
    """Mutable map of per-neighbour prepending counts.

    Lookups fall back per-sender (uniform padding towards all
    neighbours) and then to 1 (no prepending).
    """

    def __init__(self) -> None:
        self._per_link: dict[tuple[int, int], int] = {}
        self._per_sender: dict[int, int] = {}

    @staticmethod
    def _check_count(count: int) -> None:
        if not isinstance(count, int) or count < 1:
            raise PolicyError(f"prepending count must be an integer >= 1, got {count!r}")

    def set_padding(self, sender: int, receiver: int, count: int) -> None:
        """Pad announcements from ``sender`` to ``receiver`` with ``count`` copies."""
        self._check_count(count)
        self._per_link[(sender, receiver)] = count

    def set_uniform(self, sender: int, count: int) -> None:
        """Pad every announcement from ``sender`` with ``count`` copies."""
        self._check_count(count)
        self._per_sender[sender] = count

    def clear(self, sender: int, receiver: int | None = None) -> None:
        """Remove a per-link override (or, with ``receiver=None``, the
        sender's uniform setting and all its per-link overrides)."""
        if receiver is None:
            self._per_sender.pop(sender, None)
            for key in [k for k in self._per_link if k[0] == sender]:
                del self._per_link[key]
        else:
            self._per_link.pop((sender, receiver), None)

    def padding(self, sender: int, receiver: int) -> int:
        """Number of copies of ``sender`` inserted towards ``receiver``."""
        per_link = self._per_link.get((sender, receiver))
        if per_link is not None:
            return per_link
        return self._per_sender.get(sender, 1)

    def senders(self) -> frozenset[int]:
        """All ASes with a non-default prepending configuration."""
        return frozenset(self._per_sender) | frozenset(s for s, _ in self._per_link)

    def fingerprint(self) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int, int], ...]]:
        """A hashable canonical form of the schedule.

        Two policies that pad every link identically produce the same
        fingerprint (entries that merely restate the no-prepending
        default, or a per-link entry equal to its sender's uniform
        setting, are dropped).  This is the cache key the sweep runner's
        baseline memoisation is built on.
        """
        per_sender = tuple(
            sorted((s, c) for s, c in self._per_sender.items() if c != 1)
        )
        per_link = tuple(
            sorted(
                (s, r, c)
                for (s, r), c in self._per_link.items()
                if c != self._per_sender.get(s, 1)
            )
        )
        return per_sender, per_link

    def uniform_origin_count(self, origin: int) -> int | None:
        """``λ`` when this schedule is exactly "``origin`` pads every
        announcement with ``λ`` copies and nobody else pads" (``1``
        covers the empty schedule); ``None`` for any other shape.

        Uniform-origin schedules are the family the baseline cache can
        derive from a single converged run per victim.
        """
        per_sender, per_link = self.fingerprint()
        if per_link:
            return None
        if not per_sender:
            return 1
        if len(per_sender) == 1 and per_sender[0][0] == origin:
            return per_sender[0][1]
        return None

    def copy(self) -> "PrependingPolicy":
        clone = PrependingPolicy()
        clone._per_link = dict(self._per_link)
        clone._per_sender = dict(self._per_sender)
        return clone

    @classmethod
    def uniform_origin(cls, origin: int, count: int) -> "PrependingPolicy":
        """Convenience: a policy where only ``origin`` pads, uniformly."""
        policy = cls()
        policy.set_uniform(origin, count)
        return policy

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int, int]]) -> "PrependingPolicy":
        """Build from ``(sender, receiver, count)`` triples."""
        policy = cls()
        for sender, receiver, count in pairs:
            policy.set_padding(sender, receiver, count)
        return policy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrependingPolicy(uniform={len(self._per_sender)}, "
            f"per_link={len(self._per_link)})"
        )
