"""The paper's Figure-2 three-phase AS-level path algorithm.

The paper computes attack-free AS-level routes the standard way
(following Mao et al., "On AS-Level Path Inference"): shortest *uphill*
(customer-to-provider) paths first, then routes through a single
peering link, then provider routes propagating *downhill* — reflecting
the customer > peer > provider local preference.

This module implements that algorithm directly as an independent oracle
for the general worklist engine (:mod:`repro.bgp.engine`): property
tests assert both produce the same preference class and path length for
every AS, on sibling-free topologies.  (Sibling edges are excluded here
because the three-phase formulation has no natural place for
export-everything relationships; the worklist engine handles them.)

Per-neighbour prepending is supported: the "length" of a hop from
sender ``s`` to receiver ``r`` is ``padding(s, r)``, so an origin that
pads ``λ`` times contributes ``λ`` to every path using that first hop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.bgp.prepending import PrependingPolicy
from repro.exceptions import SimulationError, UnknownASError
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import PrefClass

__all__ = ["ThreePhaseRoute", "three_phase_routes"]


@dataclass(frozen=True, slots=True)
class ThreePhaseRoute:
    """Best route at one AS as computed by the three-phase algorithm."""

    pref: PrefClass
    length: int
    path: tuple[int, ...]


def three_phase_routes(
    graph: ASGraph,
    origin: int,
    *,
    prepending: PrependingPolicy | None = None,
) -> dict[int, ThreePhaseRoute]:
    """Compute every AS's best route to ``origin`` without any attacker.

    Returns a map from ASN to :class:`ThreePhaseRoute`; ASes with no
    valley-free route to the origin are absent.  The origin itself maps
    to an ``ORIGIN``-class route with an empty path.

    Raises :class:`SimulationError` if the topology contains sibling
    edges (see module docstring).
    """
    if origin not in graph:
        raise UnknownASError(origin)
    for asn in graph:
        if graph.siblings_of(asn):
            raise SimulationError(
                "three-phase algorithm does not support sibling edges; "
                "use PropagationEngine"
            )
    prepending = prepending or PrependingPolicy()

    # ---- Phase 1: uphill (customer-learned) routes -------------------
    # Dijkstra from the origin along customer->provider edges.  The
    # state per AS is (length, sender, path); ties prefer the lowest
    # announcing neighbour ASN, matching the engine's tie-break.
    uphill: dict[int, tuple[int, int, tuple[int, ...]]] = {}
    heap: list[tuple[int, int, int, tuple[int, ...]]] = []
    for provider in sorted(graph.providers_of(origin)):
        count = prepending.padding(origin, provider)
        path = (origin,) * count
        heapq.heappush(heap, (len(path), origin, provider, path))
    while heap:
        length, sender, node, path = heapq.heappop(heap)
        settled = uphill.get(node)
        if settled is not None and (settled[0], settled[1]) <= (length, sender):
            continue
        uphill[node] = (length, sender, path)
        for provider in sorted(graph.providers_of(node)):
            count = prepending.padding(node, provider)
            new_path = (node,) * count + path
            if provider in new_path:
                continue
            heapq.heappush(
                heap, (len(new_path), node, provider, new_path)
            )

    # ---- Phase 2: routes across one peering link ---------------------
    # A peer exports only its customer-learned (or self-originated)
    # routes.  The origin's own announcement to a peer is the
    # zero-uphill special case.
    peer_routes: dict[int, tuple[int, int, tuple[int, ...]]] = {}
    for node in graph:
        if node == origin:
            continue
        best: tuple[int, int, tuple[int, ...]] | None = None
        for peer in sorted(graph.peers_of(node)):
            if peer == origin:
                count = prepending.padding(origin, node)
                candidate_path = (origin,) * count
            elif peer in uphill:
                count = prepending.padding(peer, node)
                candidate_path = (peer,) * count + uphill[peer][2]
            else:
                continue
            if node in candidate_path:
                continue
            candidate = (len(candidate_path), peer, candidate_path)
            if best is None or (candidate[0], candidate[1]) < (best[0], best[1]):
                best = candidate
        if best is not None:
            peer_routes[node] = best

    # ---- Phase 3: downhill (provider-learned) routes ------------------
    # Providers export their overall best route to customers.  ASes that
    # already hold a customer or peer route never prefer a provider
    # route; for the rest we run a downhill Dijkstra seeded by every AS
    # that has a better-class route.
    best_class: dict[int, tuple[PrefClass, int, tuple[int, ...]]] = {
        origin: (PrefClass.ORIGIN, 0, ())
    }
    for node, (length, _sender, path) in uphill.items():
        best_class[node] = (PrefClass.CUSTOMER, length, path)
    for node, (length, _sender, path) in peer_routes.items():
        if node not in best_class:
            best_class[node] = (PrefClass.PEER, length, path)

    downhill: dict[int, tuple[int, int, tuple[int, ...]]] = {}
    heap = []
    for node, (_pref, _length, path) in best_class.items():
        for customer in sorted(graph.customers_of(node)):
            if customer in best_class:
                continue
            count = prepending.padding(node, customer)
            candidate = (node,) * count + (path if node != origin else ())
            if node == origin:
                candidate = (origin,) * prepending.padding(origin, customer)
            if customer in candidate:
                continue
            heapq.heappush(heap, (len(candidate), node, customer, candidate))
    while heap:
        length, sender, node, path = heapq.heappop(heap)
        if node in best_class:
            continue
        settled = downhill.get(node)
        if settled is not None and (settled[0], settled[1]) <= (length, sender):
            continue
        downhill[node] = (length, sender, path)
        for customer in sorted(graph.customers_of(node)):
            if customer in best_class:
                continue
            count = prepending.padding(node, customer)
            new_path = (node,) * count + path
            if customer in new_path:
                continue
            heapq.heappush(heap, (len(new_path), node, customer, new_path))
    for node, (length, _sender, path) in downhill.items():
        best_class[node] = (PrefClass.PROVIDER, length, path)

    return {
        node: ThreePhaseRoute(pref=pref, length=length, path=path)
        for node, (pref, length, path) in best_class.items()
    }
