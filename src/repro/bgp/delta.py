"""Incremental delta propagation over a converged compiled baseline.

:func:`run_delta` re-converges an attack from a warm baseline the way
:func:`repro.bgp.compiled.run_compiled` does — same worklist, same
activation trace, same adoption stamps — but never copies the baseline
arrays: the flood reads the converged :class:`CompiledState` in place
and records every write in sparse *overlay* dicts, so the cost of one
attack run is O(touched cone), not O(topology).  Untouched rows stay
physically shared with the baseline (copy-on-write), which is what
turns an attackers × victims × λ campaign grid into one canonical
convergence per victim plus the sum of the affected cones.

Two further reuse levels ride on the same idea:

* **λ reuse** — a uniform-λ baseline is the canonical λ=1 state with
  the victim's trailing run rewritten, so the delta flood runs directly
  against the *canonical* arrays and carries the length shift
  ``Δ = λ-1`` in the comparisons instead of materialising a derived
  copy.  Each stored route carries a *family* bit: baseline-family
  entries are canonical ids whose real path is the λ-rewrite
  (``+Δ`` on every length), attacker-family entries (everything
  descending from a path modifier's output) are literal.  Equal real
  paths always compare equal and unequal ones never do, so the
  activation trace — and with it every adoption stamp — is bit-identical
  to a full recompute on the derived baseline.  The λ=1 / plain-state
  case is simply ``Δ = 0``.

* **Interned-path reuse** — all λ points of a sweep extend the *same*
  canonical intern table, so the attacker's announcement subtree is
  built once and every later λ point's extends are table hits.

:class:`DerivedUniformState` makes the baseline cache's λ derivation
lazy (the delta path never materialises it; the full path pays the old
eager cost on first array access), and :class:`DeltaState` is the
overlay-backed result state — a :class:`CompiledState` whose array
attributes are lazy real-space views, so warm starts, pollution masks
and every other downstream consumer keep working unchanged.

The reference engine remains the bit-identical oracle:
``tests/bgp/test_delta_differential.py`` pins ``run_delta`` against
cold full propagations on both backends, including adoption stamps and
withdrawal sentinels.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Callable, Mapping
from typing import TYPE_CHECKING

from repro.bgp.compiled import (
    _EXPORTABLE_UP_MAX,
    _PREF_OF,
    CompiledState,
    CompiledTopology,
    InternTable,
)
from repro.bgp.policy import ExportPolicy
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import Route
from repro.exceptions import ConvergenceError, SimulationError
from repro.telemetry.metrics import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.attack.interception import ASPPInterceptionAttack
    from repro.bgp.engine import PropagationOutcome

__all__ = [
    "DeltaState",
    "DerivedUniformState",
    "propagate_delta",
    "run_delta",
    "uniform_rewriter",
]


def uniform_rewriter(
    table: InternTable, victim_idx: int, padding: int
) -> Callable[[int], int]:
    """A memoised canonical→λ path rewriter over ``table``.

    Maps a canonical (λ=1) interned path id to the id of the same path
    with the victim's trailing run padded to ``padding`` copies.  Paths
    that do not terminate in the victim's run rewrite to themselves.
    Each distinct chain node is rewritten at most once per rewriter.
    """
    parent = table.parent
    head = table.head
    run = table.run
    extend = table.extend
    memo = {0: 0}

    def rewrite(pid: int) -> int:
        new = memo.get(pid)
        if new is None:
            above = parent[pid]
            if above == 0 and head[pid] == victim_idx:
                new = extend(0, victim_idx, padding)
            else:
                new = extend(rewrite(above), head[pid], run[pid])
            memo[pid] = new
        return new

    return rewrite


class DerivedUniformState(CompiledState):
    """A uniform-λ baseline state, derived *lazily* from the canonical λ=1.

    The delta path reads straight through to the canonical arrays (the
    length shift lives in the flood's comparisons), so constructing this
    state is O(1).  Any consumer that touches the array attributes —
    the full-recompute warm path, direct inspection — triggers the same
    eager rewrite :meth:`CompiledState.derive_uniform` used to do, with
    identical results.  ``best_pref``/``best_from``/``rib_pref`` are
    λ-invariant and alias the canonical lists (every consumer treats
    converged states as immutable; the warm loader copies before
    mutating).
    """

    __slots__ = ("canonical", "victim_asn", "victim_idx", "padding", "_rw", "_mat")

    def __init__(self, canonical: CompiledState, victim: int, padding: int) -> None:
        if padding < 2:
            raise SimulationError("derived uniform states are for padding >= 2")
        self.table = canonical.table
        self.canonical = canonical
        self.victim_asn = victim
        self.victim_idx = canonical.table.topo.index[victim]
        self.padding = padding
        self._rw = None
        self._mat = None
        self._trav = None

    def rewriter(self) -> Callable[[int], int]:
        """The shared canonical→λ rewrite memo for this state."""
        if self._rw is None:
            self._rw = uniform_rewriter(self.table, self.victim_idx, self.padding)
        return self._rw

    def _materialised(self) -> CompiledState:
        if self._mat is None:
            self._mat = self.canonical.derive_uniform(self.victim_asn, self.padding)
        return self._mat

    @property
    def best_pref(self) -> list[int]:
        return self.canonical.best_pref

    @property
    def best_from(self) -> list[int]:
        return self.canonical.best_from

    @property
    def rib_pref(self) -> list[int]:
        return self.canonical.rib_pref

    @property
    def best_pid(self) -> list[int]:
        return self._materialised().best_pid

    @property
    def rib_pid(self) -> list[int]:
        return self._materialised().rib_pid


class _OverlaidInts:
    """A list view: ``base`` with sparse ``over`` writes on top (CoW)."""

    __slots__ = ("base", "over")

    def __init__(self, base: list[int], over: dict[int, int]) -> None:
        self.base = base
        self.over = over

    def __len__(self) -> int:
        return len(self.base)

    def __getitem__(self, i: int) -> int:
        v = self.over.get(i)
        return self.base[i] if v is None else v

    def __iter__(self):
        over = self.over
        base = self.base
        for i in range(len(base)):
            v = over.get(i)
            yield base[i] if v is None else v

    def copy(self) -> list[int]:
        out = self.base.copy()
        for i, v in self.over.items():
            out[i] = v
        return out


class _OverlaidPids:
    """A pid-list view presenting *real* (λ-space) path ids.

    Base entries are canonical and rewrite through ``rw``; overlay
    entries carry a family bit (``fam[i]`` truthy = literal/attacker
    family).  Negative sentinels (-1 withdrawn, -2 absent) pass through.
    With ``rw=None`` (Δ=0) everything is literal.
    """

    __slots__ = ("base", "over", "fam", "rw")

    def __init__(
        self,
        base: list[int],
        over: dict[int, int],
        fam,
        rw: Callable[[int], int] | None,
    ) -> None:
        self.base = base
        self.over = over
        self.fam = fam
        self.rw = rw

    def _real(self, i: int) -> int:
        v = self.over.get(i)
        if v is None:
            v = self.base[i]
            literal = False
        else:
            literal = bool(self.fam[i])
        rw = self.rw
        if rw is None or literal or v < 0:
            return v
        return rw(v)

    def __len__(self) -> int:
        return len(self.base)

    def __getitem__(self, i: int) -> int:
        return self._real(i)

    def __iter__(self):
        for i in range(len(self.base)):
            yield self._real(i)

    def copy(self) -> list[int]:
        return [self._real(i) for i in range(len(self.base))]


class DeltaState(CompiledState):
    """An attack's converged state as sparse overlays over its baseline.

    Subclasses :class:`CompiledState` so every existing consumer (warm
    loads, λ derivations, pollution masks, ``attacker_has_route``)
    works unchanged: the array attributes are lazy views that present
    real λ-space path ids.  ``touched`` is the set of AS indices whose
    best route changed at least once during the delta flood (a superset
    of the finally-changed set); ``rib_touched`` the set whose
    Adj-RIB-in changed.  Everything outside ``touched`` physically
    shares the baseline's row.
    """

    __slots__ = (
        "base",
        "shift",
        "over_best_pref",
        "over_best_pid",
        "over_best_from",
        "over_rib_pid",
        "over_rib_pref",
        "best_fam",
        "rib_fam",
        "touched",
        "rib_touched",
        "_rw",
        "_views",
    )

    def __init__(
        self,
        base: CompiledState,
        *,
        shift: int,
        rw: Callable[[int], int] | None,
        over_best_pref: dict[int, int],
        over_best_pid: dict[int, int],
        over_best_from: dict[int, int],
        over_rib_pid: dict[int, int],
        over_rib_pref: dict[int, int],
        best_fam,
        rib_fam,
        touched: frozenset[int],
        rib_touched: frozenset[int],
    ) -> None:
        self.table = base.table
        self.base = base
        self.shift = shift
        self._rw = rw
        self.over_best_pref = over_best_pref
        self.over_best_pid = over_best_pid
        self.over_best_from = over_best_from
        self.over_rib_pid = over_rib_pid
        self.over_rib_pref = over_rib_pref
        self.best_fam = best_fam
        self.rib_fam = rib_fam
        self.touched = touched
        self.rib_touched = rib_touched
        self._views = {}
        self._trav = None

    def _view(self, name: str):
        view = self._views.get(name)
        if view is None:
            base = self.base
            if name == "best_pref":
                view = _OverlaidInts(base.best_pref, self.over_best_pref)
            elif name == "best_from":
                view = _OverlaidInts(base.best_from, self.over_best_from)
            elif name == "rib_pref":
                view = _OverlaidInts(base.rib_pref, self.over_rib_pref)
            elif name == "best_pid":
                view = _OverlaidPids(
                    base.best_pid, self.over_best_pid, self.best_fam, self._rw
                )
            else:
                view = _OverlaidPids(
                    base.rib_pid, self.over_rib_pid, self.rib_fam, self._rw
                )
            self._views[name] = view
        return view

    @property
    def best_pref(self):
        return self._view("best_pref")

    @property
    def best_pid(self):
        return self._view("best_pid")

    @property
    def best_from(self):
        return self._view("best_from")

    @property
    def rib_pid(self):
        return self._view("rib_pid")

    @property
    def rib_pref(self):
        return self._view("rib_pref")


def _delta_base(
    state: object, table: InternTable
) -> tuple[CompiledState, int, Callable[[int], int] | None] | None:
    """Resolve a warm-start state into ``(read base, Δ, rewriter)``.

    Returns ``None`` when the state cannot back a delta flood (foreign
    table, reference-backend outcome, chained delta overlays — the
    caller falls back to the full recompute).
    """
    if isinstance(state, DerivedUniformState):
        canonical = state.canonical
        if type(canonical) is CompiledState and canonical.table is table:
            return canonical, state.padding - 1, state.rewriter()
        return None
    if type(state) is CompiledState and state.table is table:
        return state, 0, None
    return None


# ----------------------------------------------------------------------
def run_delta(
    topo: CompiledTopology,
    table: InternTable,
    *,
    origin: int,
    prefix: str,
    prepending: PrependingPolicy,
    modifiers: Mapping[int, Callable[[tuple[int, ...]], tuple[int, ...]]],
    export_policy: ExportPolicy,
    import_filters: Mapping[int, Callable[[int, tuple[int, ...]], bool]],
    warm_start: "PropagationOutcome",
    seed: set[int],
    activation: str,
    activation_rng: random.Random | None,
    incremental: bool,
    max_activations: int,
    metrics: RunMetrics | None,
    secpol: object | None = None,
) -> "PropagationOutcome | None":
    """One warm propagation fixpoint as a delta over the baseline state.

    Mirrors :func:`repro.bgp.compiled.run_compiled`'s warm path
    decision for decision — identical activation trace, adoption
    stamps, fast-path accounting and withdrawal sentinels — while
    writing every change into copy-on-write overlays instead of copied
    arrays, with uniform-λ baselines read in canonical space under the
    ``Δ = λ-1`` length shift (module docstring).  Returns ``None`` when
    the inputs cannot take the delta path; the engine then falls back
    to the full recompute, which stays the oracle.
    """
    state = warm_start.compiled_state
    plan = _delta_base(state, table)
    if plan is None:
        return None
    base, shift, rw = plan

    index = topo.index
    n = topo.n
    origin_idx = index[origin]
    if origin in seed:
        # The origin re-announcing interacts with its own padding
        # schedule; keep that rare shape on the oracle path.
        return None
    pad_senders = {index[a] for a in prepending.senders() if a in index}
    if shift:
        # Canonical-space reads are only valid when the real baseline is
        # exactly the uniform-λ rewrite of the canonical state: the
        # origin is the sole prepender and its count matches.
        if prepending.uniform_origin_count(origin) != shift + 1:
            return None
        if pad_senders - {origin_idx}:
            return None

    indptr, nbr, inv_pref, always_export, is_sib, rev, asn_of = topo.hot_arrays()
    bits = topo.bits
    length = table.length
    mask = table.mask
    extend = table.extend
    reify = table.reify
    intern_tuple = table.intern_tuple
    num_slots = len(nbr)

    track = metrics is not None and metrics.enabled
    if track:
        announcements = fastpath_hits = fastpath_misses = best_changes = 0
        peak_queue = 0
        intern_hits_start = table.hits
        intern_misses_start = table.misses
        reified_start = table.reified_count

    # The flood runs on *scratch copies* of the baseline arrays (C-speed
    # list copies, then plain indexing in the hot loop); the sparse
    # copy-on-write overlays handed to :class:`DeltaState` are extracted
    # from the written rows after convergence, so the result still
    # shares every untouched row with the baseline.
    bp = base.best_pref.copy()
    bpid = base.best_pid.copy()
    bfrom = base.best_from.copy()
    rpid = base.rib_pid.copy()
    rpref = base.rib_pref.copy()
    #: rib slots written at least once (the rib overlay's key set)
    written: set[int] = set()
    # Family bit per AS / slot: truthy = literal (attacker-family) path,
    # falsy = canonical baseline-family path carrying the +Δ shift.
    bfam = bytearray(n)
    rfam = bytearray(num_slots)

    adoption: dict[int, int] = {}
    initial = sorted(index[a] for a in seed)

    stock_export = type(export_policy) is ExportPolicy
    violator_idx = {index[a] for a in export_policy.violators if a in index}
    mods = {index[a]: fn for a, fn in modifiers.items()}
    imps = {index[a]: fn for a, fn in import_filters.items() if a in index}
    roles = topo.roles if not stock_export else None

    sec_deployed = bytearray(n)
    sec_fn = None
    sec_count = 0
    if secpol is not None:
        sec_fn = secpol.compiled_checker(table)
        for a in secpol.deployers:
            i = index.get(a)
            if i is not None and not sec_deployed[i]:
                sec_deployed[i] = 1
                sec_count += 1
    sec_eval = sec_filt = 0
    plain = stock_export and not imps and sec_count == 0 and incremental

    def real_pid(pid: int, fam: int) -> int:
        """The λ-space id of a stored path (literal for fam/Δ=0)."""
        if rw is None or fam or pid < 0:
            return pid
        return rw(pid)

    def decide(recv: int, imp, sec) -> tuple[int, int, int, int]:
        """Full Adj-RIB-in scan, reference order, Δ-aware lengths."""
        nonlocal sec_eval, sec_filt
        b_pref = -1
        b_pid = 0
        b_from = -1
        b_len = 0
        b_fam = 0
        for k in range(indptr[recv], indptr[recv + 1]):
            pid = rpid[k]
            if pid < 0:
                continue
            fam = rfam[k]
            p = rpref[k]
            snd = nbr[k]
            if sec is not None:
                sec_eval += 1
                if not sec(recv, snd, real_pid(pid, fam)):
                    sec_filt += 1
                    continue
            if imp is not None and not imp(asn_of[snd], reify(real_pid(pid, fam))):
                continue
            plen = length[pid] if fam else length[pid] + shift
            if (
                b_from < 0
                or p < b_pref
                or (p == b_pref and (plen < b_len or (plen == b_len and snd < b_from)))
            ):
                b_pref = p
                b_pid = pid
                b_from = snd
                b_len = plen
                b_fam = fam
        return b_pref, b_pid, b_from, b_fam

    round_of = [0] * n
    rib_touched: set[int] = set()
    queue: deque[int] = deque(initial)
    queued = bytearray(n)
    for i in initial:
        queued[i] = 1
    operations = 0
    budget = max_activations * max(1, n)
    max_round = 0
    randrange = activation_rng.randrange if activation_rng is not None else None
    padding_of = prepending.padding
    while queue:
        operations += 1
        if operations > budget:
            raise ConvergenceError(operations)
        if activation == "fifo":
            s = queue.popleft()
        elif activation == "lifo":
            s = queue.pop()
        else:
            pick = randrange(len(queue))
            queue[pick], queue[-1] = queue[-1], queue[pick]
            s = queue.pop()
        queued[s] = 0
        s_pref = bp[s]
        has_route = s_pref >= 0
        sender_round = round_of[s]
        block_start = indptr[s]
        block_end = indptr[s + 1]
        if track:
            qlen = len(queue) + 1  # including the activation just popped
            if qlen > peak_queue:
                peak_queue = qlen
            announcements += block_end - block_start
        if has_route:
            base_pid = bpid[s]
            s_fam = bfam[s]
            modifier = mods.get(s)
            if modifier is not None:
                base_pid = intern_tuple(modifier(reify(real_pid(base_pid, s_fam))))
                s_fam = 1
            exportable_all = (
                s_pref <= _EXPORTABLE_UP_MAX or s in violator_idx
            )
            sender_pads = s in pad_senders
            s_asn = asn_of[s]
            pid_plain = -9  # lazily extended once: count == 1 for non-padders
            pid_by_count: dict[int, int] = {}
        for k in range(block_start, block_end):
            nb = nbr[k]
            offer_pid = -1  # None/no offer
            offer_pref = 0
            offer_fam = 0
            if has_route:
                if stock_export:
                    allowed = exportable_all or always_export[k]
                else:
                    allowed = export_policy.allows_export(
                        s_asn, roles[k], _PREF_OF[s_pref]
                    )
                if allowed:
                    if sender_pads:
                        count = padding_of(s_asn, asn_of[nb])
                        pid = pid_by_count.get(count)
                        if pid is None:
                            pid = extend(base_pid, s, count)
                            pid_by_count[count] = pid
                    else:
                        pid = pid_plain
                        if pid < 0:
                            pid = pid_plain = extend(base_pid, s, 1)
                    if not mask[pid] & bits[nb]:
                        offer_pid = pid
                        offer_pref = s_pref if is_sib[k] else inv_pref[k]
                        offer_fam = s_fam
            slot = rev[k]
            rp = rpid[slot]
            if offer_pid < 0:
                if rp < 0:
                    # absent or already-withdrawn: rib.get(sender) == None
                    continue
                rpid[slot] = -1
                written.add(slot)
            else:
                if rp == offer_pid and (
                    rpref[slot] == offer_pref
                    and (not shift or rfam[slot] == offer_fam)
                ):
                    continue
                rpid[slot] = offer_pid
                rpref[slot] = offer_pref
                rfam[slot] = offer_fam
                written.add(slot)
            rib_touched.add(nb)
            if nb == origin_idx:
                continue  # the owner always keeps its own route
            cur_pref = bp[nb]
            cur_from = bfrom[nb]
            if plain:
                imp = None
                full_scan = False
            else:
                imp = imps.get(nb)
                full_scan = imp is not None or sec_deployed[nb] or not incremental
            if full_scan:
                if track:
                    fastpath_misses += 1
                new_pref, new_pid, new_from, new_fam = decide(
                    nb, imp, sec_fn if sec_deployed[nb] else None
                )
            elif offer_pid < 0:
                if cur_pref >= 0 and cur_from == s:
                    # The best offer was withdrawn: full re-decision.
                    if track:
                        fastpath_misses += 1
                    new_pref, new_pid, new_from, new_fam = decide(nb, None, None)
                else:
                    if track:
                        fastpath_hits += 1
                    continue  # losing a non-best offer changes nothing
            elif cur_pref < 0:
                if track:
                    fastpath_hits += 1
                new_pref, new_pid, new_from, new_fam = (
                    offer_pref, offer_pid, s, offer_fam,
                )
            else:
                cur_pid = bpid[nb]
                cur_fam = bfam[nb]
                cand_len = length[offer_pid] if offer_fam else length[offer_pid] + shift
                best_len = length[cur_pid] if cur_fam else length[cur_pid] + shift
                if cur_from == s:
                    # cand_key <= current_key with an equal sender component.
                    if offer_pref < cur_pref or (
                        offer_pref == cur_pref and cand_len <= best_len
                    ):
                        if track:
                            fastpath_hits += 1
                        new_pref, new_pid, new_from, new_fam = (
                            offer_pref, offer_pid, s, offer_fam,
                        )
                    else:
                        if track:
                            fastpath_misses += 1
                        new_pref, new_pid, new_from, new_fam = decide(nb, None, None)
                else:
                    if offer_pref > cur_pref:
                        if track:
                            fastpath_hits += 1
                        continue  # a worse-ranked offer cannot displace the best
                    if offer_pref == cur_pref and (
                        cand_len > best_len or (cand_len == best_len and s > cur_from)
                    ):
                        if track:
                            fastpath_hits += 1
                        continue
                    if track:
                        fastpath_hits += 1
                    new_pref, new_pid, new_from, new_fam = (
                        offer_pref, offer_pid, s, offer_fam,
                    )
            # Unchanged decision: canonical interning plus the family
            # bit make real-path equality an id/bit comparison.
            if new_pref == cur_pref and cur_pref < 0:
                continue
            if new_pref == cur_pref and new_from == cur_from:
                if new_pid == bpid[nb] and (not shift or new_fam == bfam[nb]):
                    continue
            if track:
                best_changes += 1
            if new_pref < 0:
                bp[nb] = -1
                bpid[nb] = 0
                bfrom[nb] = -1
                bfam[nb] = 0
            else:
                bp[nb] = new_pref
                bpid[nb] = new_pid
                bfrom[nb] = new_from
                bfam[nb] = new_fam
            stamp = sender_round + 1
            adoption[nb] = stamp
            round_of[nb] = stamp
            if stamp > max_round:
                max_round = stamp
            if not queued[nb]:
                queue.append(nb)
                queued[nb] = 1

    # ------------------------------------------------------------------
    # Extract the sparse copy-on-write overlays from the scratch arrays:
    # exactly the rows the flood wrote (``adoption`` keys for best,
    # ``written`` slots for the rib).  Everything else stays physically
    # the baseline's row.
    o_bp = {i: bp[i] for i in adoption}
    o_bpid = {i: bpid[i] for i in adoption}
    o_bfrom = {i: bfrom[i] for i in adoption}
    o_rpid = {k: rpid[k] for k in written}
    o_rpref = {k: rpref[k] for k in written}

    # Emission mirrors run_compiled's warm branch: copy the baseline's
    # dicts, rebuild only what the delta touched, with overlay pids
    # rewritten to λ space on the way out.  Deferred like the original.
    def materialise(out: "PropagationOutcome") -> None:
        pref_of = _PREF_OF

        def emit_best(i: int) -> tuple[Route | None, tuple[int, int, int] | None]:
            p = bp[i]
            if p < 0:
                return None, None
            pid = real_pid(bpid[i], bfam[i])
            learned_idx = bfrom[i]
            learned = None if learned_idx < 0 else asn_of[learned_idx]
            return (
                Route(prefix, reify(pid), learned, pref_of[p]),
                (p, length[pid], -1 if learned is None else learned),
            )

        def emit_offers(i: int) -> dict[int, tuple[tuple[int, ...], object] | None]:
            offers: dict[int, tuple[tuple[int, ...], object] | None] = {}
            for k in range(indptr[i], indptr[i + 1]):
                pid = real_pid(rpid[k], rfam[k])
                if pid == -2:
                    continue
                offers[asn_of[nbr[k]]] = (
                    None if pid == -1 else (reify(pid), pref_of[rpref[k]])
                )
            return offers

        best_out = dict(warm_start.best)
        adj_out = dict(warm_start.adj_rib_in)
        warm_keys = warm_start.best_keys
        if warm_keys is not None:
            keys_out = dict(warm_keys)
            for i in adoption:
                a = asn_of[i]
                best_out[a], keys_out[a] = emit_best(i)
        else:
            keys_out = {}
            for i in topo.iter_order:
                a = asn_of[i]
                if i in adoption:
                    best_out[a], keys_out[a] = emit_best(i)
                else:
                    route = best_out[a]
                    keys_out[a] = (
                        None
                        if route is None
                        else (int(route.pref), len(route.path), route.learned_from
                              if route.learned_from is not None else -1)
                    )
        for i in rib_touched:
            adj_out[asn_of[i]] = emit_offers(i)
        out._set_materialised(best_out, adj_out, keys_out)

    from repro.bgp.engine import PropagationOutcome  # deferred: engine imports us

    outcome = PropagationOutcome(
        prefix=prefix,
        origin=origin,
        adoption_round={asn_of[i]: stamp for i, stamp in adoption.items()},
        rounds=max_round,
        emit=materialise,
    )
    outcome.compiled_state = DeltaState(
        base,
        shift=shift,
        rw=rw,
        over_best_pref=o_bp,
        over_best_pid=o_bpid,
        over_best_from=o_bfrom,
        over_rib_pid=o_rpid,
        over_rib_pref=o_rpref,
        best_fam=bfam,
        rib_fam=rfam,
        touched=frozenset(adoption),
        rib_touched=frozenset(rib_touched),
    )

    if track:
        # engine.warm.* accounting is bit-identical to the full warm
        # path (same trace, same fast-path branches), preserving the
        # pooled-vs-serial determinism contract; engine.delta.* adds
        # the reuse telemetry this mode exists for.
        touched_all = rib_touched | adoption.keys()
        metrics.count("engine.warm.propagations")
        metrics.count("engine.warm.activations", operations)
        metrics.count("engine.warm.announcements", announcements)
        metrics.count("engine.warm.fastpath_hits", fastpath_hits)
        metrics.count("engine.warm.fastpath_misses", fastpath_misses)
        metrics.count("engine.warm.best_changes", best_changes)
        metrics.observe("engine.warm.convergence_rounds", max_round)
        metrics.observe("engine.warm.queue_peak", peak_queue)
        if secpol is not None:
            metrics.count("secpol.evaluated", sec_eval)
            metrics.count("secpol.filtered", sec_filt)
            metrics.count("secpol.deployed_ases", sec_count)
        metrics.count("engine.compiled.propagations")
        metrics.count("engine.compiled.intern_hits", table.hits - intern_hits_start)
        metrics.count(
            "engine.compiled.intern_misses", table.misses - intern_misses_start
        )
        metrics.count(
            "engine.compiled.reified_paths", table.reified_count - reified_start
        )
        metrics.count("engine.delta.propagations")
        metrics.observe("engine.delta.frontier_size", len(initial))
        metrics.observe("engine.delta.touched_ases", len(touched_all))
        metrics.observe(
            "engine.delta.reuse_ratio", (n - len(touched_all)) / n if n else 0.0
        )

    return outcome


# ----------------------------------------------------------------------
def propagate_delta(
    baseline: "PropagationOutcome",
    attack: "ASPPInterceptionAttack",
    *,
    secpol: object | None = None,
    metrics: RunMetrics | None = None,
    max_activations: int = 50,
    activation: str = "fifo",
    activation_rng: random.Random | None = None,
    incremental: bool = True,
) -> "PropagationOutcome":
    """Re-converge ``attack`` as a delta over a converged ``baseline``.

    The compiled-core entry point: ``baseline`` must carry a
    :class:`CompiledState` (every compiled-backend and cache-derived
    outcome does), and the attack's victim must be the baseline's
    origin.  Equivalent to warm-starting
    ``engine.propagate(victim, modifiers={attacker: attack.modifier()},
    export_policy=..., warm_start=baseline)`` on a delta-mode engine —
    and bit-identical to the same call on a full-recompute engine,
    which the differential suite enforces.
    """
    state = baseline.compiled_state
    if not isinstance(state, CompiledState):
        raise SimulationError(
            "propagate_delta needs a baseline with compiled state "
            "(a compiled-backend or cache-derived outcome)"
        )
    victim = baseline.origin
    if attack.victim != victim:
        raise SimulationError(
            f"attack victim AS{attack.victim} does not match the baseline "
            f"origin AS{victim}"
        )
    table = state.table
    padding = state.padding if isinstance(state, DerivedUniformState) else 1
    prepending = PrependingPolicy.uniform_origin(victim, padding)
    export_policy = (
        ExportPolicy(frozenset({attack.attacker}))
        if attack.violate_policy
        else ExportPolicy()
    )
    outcome = run_delta(
        table.topo,
        table,
        origin=victim,
        prefix=baseline.prefix,
        prepending=prepending,
        modifiers={attack.attacker: attack.modifier()},
        export_policy=export_policy,
        import_filters={},
        warm_start=baseline,
        seed={attack.attacker} | set(export_policy.violators),
        activation=activation,
        activation_rng=activation_rng,
        incremental=incremental,
        max_activations=max_activations,
        metrics=metrics,
        secpol=secpol,
    )
    if outcome is None:
        raise SimulationError(
            "baseline state cannot back a delta flood (foreign table or "
            "chained delta overlays) — use the full engine"
        )
    return outcome
