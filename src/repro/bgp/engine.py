"""Policy-aware BGP route-propagation engine.

This is the simulator at the heart of the paper (§IV-B): it emulates
BGP announcement propagation and the decision process for a single
destination prefix over a relationship-annotated AS graph, under the
valley-free profit-driven policy, with:

* per-neighbour AS-path **prepending** schedules (source and
  intermediary prepending);
* per-AS **path modifiers** — the hook the ASPP interception attacker
  uses to strip the victim's padding before re-announcing;
* per-AS **export-policy violation** (the attacker variant of the
  paper's Figures 11-12);
* standard AS-PATH **loop prevention** (an AS never accepts a path that
  already contains its own ASN) — this is also what automatically keeps
  the attacker's own valid route to the victim intact;
* a synchronous **round clock**: the round at which each AS adopted its
  final route is recorded, giving the logical time base for the
  pollution-before-detection analysis (Figure 14);
* **warm starts**: an attack can be launched from a converged baseline
  so that adoption rounds measure post-attack propagation.

The engine is an asynchronous (Gauss-Seidel) worklist fixpoint: one AS
at a time re-announces to its neighbours, and any receiver whose
decision changes joins the worklist.  Sequential activation matters —
simultaneous (Jacobi-style) updates oscillate even on valley-free
configurations (two peers can adopt routes through each other in the
same step, then both retract on loop detection, forever).  Under
valley-free policies the asynchronous iteration converges (Gao-Rexford
stability holds for any fair activation order); an operation budget
guards the policy-violating configurations.

The logical clock is derived from propagation causality rather than
iteration order: the origin (or attack seed) starts at round 0, and an
AS that changes its route because of an announcement from an AS at
round ``r`` is stamped ``r + 1`` — i.e. the number of AS-hops the
triggering news travelled, which is the natural unit of BGP
propagation time.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.bgp.compiled import CompiledState, CompiledTopology, InternTable, run_compiled
from repro.bgp.decision import admit_offer, preference_key
from repro.bgp.policy import ExportPolicy
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import DEFAULT_PREFIX, Route
from repro.exceptions import ConvergenceError, SimulationError, UnknownASError
from repro.telemetry.metrics import RunMetrics
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import PrefClass, Relationship

__all__ = ["PropagationEngine", "PropagationOutcome", "PathModifier", "ImportFilter"]

#: A path transformation applied by an AS to the route it re-announces.
#: Receives the AS-PATH currently in use (not yet including the
#: announcing AS) and returns the possibly modified path.
PathModifier = Callable[[tuple[int, ...]], tuple[int, ...]]

#: A receiver-side import filter: called with (sender ASN, offered
#: AS-PATH); returning False rejects the offer before the decision
#: process.  This is the hook defensive route-vetting policies (e.g.
#: PGBGP-style cautious adoption) plug into.
ImportFilter = Callable[[int, tuple[int, ...]], bool]


class PropagationOutcome:
    """The converged routing state for one prefix.

    ``best`` maps every AS to its selected route (``None`` when the AS
    has no route to the prefix).  ``adj_rib_in`` maps each AS to the
    offer currently announced by each neighbour — an ``(as_path,
    pref_class)`` pair, or ``None`` for no offer / withdrawn.  The
    class rides along with the offer because sibling-learned routes
    inherit the class the sibling assigned (siblings are one
    organisation), so the receiver cannot derive it from the
    relationship alone.  ``adoption_round`` is the logical propagation
    round at which each AS last changed its best route (0 = unchanged
    since the start state).

    The tuple-based maps may be materialised *lazily*: the compiled
    backend and the baseline cache construct outcomes with an ``emit``
    callback instead of eager ``best``/``adj_rib_in`` dicts, and the
    callback reifies the interned state into tuples on first access.
    The sweep pipeline (warm starts, λ derivations, pollution reports)
    reads only the attached compiled state, so it never pays for the
    dicts; any consumer that does touch them sees exactly what an eager
    build would have produced — equality, pickling and :meth:`clone`
    all force materialisation first.
    """

    __slots__ = (
        "prefix",
        "origin",
        "adoption_round",
        "rounds",
        "compiled_state",
        "_best",
        "_adj_rib_in",
        "_best_keys",
        "_emit",
    )

    def __init__(
        self,
        prefix: str,
        origin: int,
        best: dict[int, Route | None] | None = None,
        adj_rib_in: dict[int, dict[int, tuple[tuple[int, ...], PrefClass] | None]]
        | None = None,
        adoption_round: dict[int, int] | None = None,
        rounds: int = 0,
        best_keys: dict[int, tuple[int, int, int] | None] | None = None,
        *,
        emit: Callable[["PropagationOutcome"], None] | None = None,
    ) -> None:
        if emit is None and (best is None or adj_rib_in is None):
            raise SimulationError(
                "an outcome needs either eager best/adj_rib_in maps or an emit callback"
            )
        self.prefix = prefix
        self.origin = origin
        self.adoption_round = {} if adoption_round is None else adoption_round
        self.rounds = rounds
        self._best = best
        self._adj_rib_in = adj_rib_in
        #: preference key per AS, carried so warm starts skip
        #: recomputing them; purely derived data, excluded from equality.
        self._best_keys = best_keys
        self._emit = emit
        #: the same converged state in the compiled backend's (index,
        #: intern-id) space (:class:`repro.bgp.compiled.CompiledState`),
        #: attached by the compiled engine and the baseline cache so
        #: warm starts and λ derivations stay in compiled space.
        #: Derived data: excluded from equality and dropped on pickling
        #: (an intern table is engine-local and must not cross process
        #: boundaries).
        self.compiled_state: Any | None = None

    # -- lazy materialisation -------------------------------------------
    def _materialise(self) -> None:
        emit = self._emit
        self._emit = None
        emit(self)

    def _set_materialised(
        self,
        best: dict[int, Route | None],
        adj_rib_in: dict[int, dict[int, tuple[tuple[int, ...], PrefClass] | None]],
        best_keys: dict[int, tuple[int, int, int] | None] | None,
    ) -> None:
        """Called by the ``emit`` callback with the reified maps."""
        self._best = best
        self._adj_rib_in = adj_rib_in
        self._best_keys = best_keys

    @property
    def best(self) -> dict[int, Route | None]:
        if self._best is None:
            self._materialise()
        return self._best

    @property
    def adj_rib_in(
        self,
    ) -> dict[int, dict[int, tuple[tuple[int, ...], PrefClass] | None]]:
        if self._adj_rib_in is None:
            self._materialise()
        return self._adj_rib_in

    @property
    def best_keys(self) -> dict[int, tuple[int, int, int] | None] | None:
        if self._emit is not None:
            self._materialise()
        return self._best_keys

    # -- value semantics (matching the former dataclass definition) -----
    def __eq__(self, other: object) -> bool:
        if other.__class__ is not PropagationOutcome:
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.origin == other.origin
            and self.rounds == other.rounds
            and self.adoption_round == other.adoption_round
            and self.best == other.best
            and self.adj_rib_in == other.adj_rib_in
        )

    __hash__ = None  # mutable value type, like the dataclass it replaces

    def __repr__(self) -> str:
        state = "lazy" if self._best is None else f"ases={len(self._best)}"
        return (
            f"PropagationOutcome(prefix={self.prefix!r}, origin={self.origin}, "
            f"rounds={self.rounds}, {state})"
        )

    def __getstate__(self) -> dict[str, Any]:
        return {
            "prefix": self.prefix,
            "origin": self.origin,
            "best": self.best,  # forces materialisation before pickling
            "adj_rib_in": self.adj_rib_in,
            "adoption_round": self.adoption_round,
            "rounds": self.rounds,
            "best_keys": self.best_keys,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.prefix = state["prefix"]
        self.origin = state["origin"]
        self._best = state["best"]
        self._adj_rib_in = state["adj_rib_in"]
        self.adoption_round = state["adoption_round"]
        self.rounds = state["rounds"]
        self._best_keys = state["best_keys"]
        self._emit = None
        self.compiled_state = None

    def path_of(self, asn: int) -> tuple[int, ...] | None:
        """The AS-PATH ``asn`` uses towards the prefix (``None`` if unreachable)."""
        route = self.best.get(asn)
        return route.path if route is not None else None

    def reachable_ases(self) -> list[int]:
        """ASes that hold a route to the prefix (including the origin)."""
        return [asn for asn, route in self.best.items() if route is not None]

    def ases_traversing(self, transit: int) -> list[int]:
        """ASes whose selected path traverses ``transit`` (excluding itself)."""
        result = []
        for asn, route in self.best.items():
            if asn != transit and route is not None and transit in route.path:
                result.append(asn)
        return result

    def clone(self) -> "PropagationOutcome":
        """Copy for use as a warm start.

        The outer maps are copied, but the per-AS Adj-RIB-in maps are
        *shared* with this outcome: the engine copies an inner map the
        first time it writes to it (copy-on-write), so an attack onset
        pays for the ASes it actually perturbs instead of rebuilding
        the whole topology's RIB state per clone.
        """
        return PropagationOutcome(
            prefix=self.prefix,
            origin=self.origin,
            best=dict(self.best),
            adj_rib_in=dict(self.adj_rib_in),
            adoption_round=dict(self.adoption_round),
            rounds=self.rounds,
            best_keys=dict(self.best_keys) if self.best_keys is not None else None,
        )


class PropagationEngine:
    """Single-prefix BGP propagation over an :class:`ASGraph`.

    The engine pre-compiles adjacency and preference tables once, then
    answers any number of :meth:`propagate` calls (different origins,
    prepending schedules, attackers) against the same topology.
    """

    #: distinct origins whose intern tables are kept alive by the
    #: engine itself; outcomes pin their own table, so eviction only
    #: bounds the engine's working set, never correctness.
    _TABLE_LRU = 32

    def __init__(
        self,
        graph: ASGraph,
        *,
        max_activations: int = 50,
        metrics: RunMetrics | None = None,
        backend: str = "compiled",
        mode: str = "full",
    ) -> None:
        """``max_activations`` bounds the worklist to that many
        activations *per AS* before :class:`ConvergenceError` is raised
        (valley-free configurations converge in a handful).

        ``metrics`` optionally attaches a telemetry registry; every
        :meth:`propagate` call then reports its work counts
        (``engine.*`` namespace).  The attribute is public and mutable
        so an existing engine can be instrumented for one run and
        detached afterwards; metrics never influence routing results.

        ``backend`` selects the propagation implementation:
        ``"compiled"`` (the default) runs on the dense-array core of
        :mod:`repro.bgp.compiled`; ``"reference"`` runs the
        dict-of-tuples interpreter in this module.  The two are
        bit-identical on every outcome field — the compiled-vs-
        reference differential suite pins that — so the switch is purely
        a speed/debuggability trade.

        ``mode`` selects how warm-started propagations are executed on
        the compiled backend: ``"full"`` (the default, and the oracle)
        recomputes over copied baseline arrays; ``"delta"`` runs
        :func:`repro.bgp.delta.run_delta` — copy-on-write overlays over
        the converged baseline, touching only the attack's cone — and
        falls back to the full recompute whenever a run's inputs cannot
        take the delta path (cold runs, foreign warm starts, origin
        reseeds).  Delta results are bit-identical to full ones; the
        differential suite pins that too.
        """
        if max_activations < 1:
            raise SimulationError("max_activations must be positive")
        if backend not in ("compiled", "reference", "vectorized"):
            raise SimulationError(
                "backend must be 'compiled', 'reference' or 'vectorized', "
                f"got {backend!r}"
            )
        if mode not in ("full", "delta"):
            raise SimulationError(f"mode must be 'full' or 'delta', got {mode!r}")
        if mode == "delta" and backend == "reference":
            raise SimulationError("mode='delta' requires a compiled-array backend")
        if backend == "vectorized":
            from repro.bgp.vectorized import numpy_available

            if not numpy_available():
                raise SimulationError(
                    "backend='vectorized' requires numpy, which is not installed"
                )
        self._mode = mode
        self._graph: ASGraph | None = graph
        self._max_activations = max_activations
        self.metrics = metrics
        self._backend = backend
        self._adjacency: dict[
            int,
            tuple[tuple[int, Relationship, PrefClass, PrefClass, bool, bool], ...],
        ] | None = None
        self._topo: CompiledTopology | None = None
        self._tables: OrderedDict[int, InternTable] = OrderedDict()
        if backend in ("compiled", "vectorized"):
            self._topo = CompiledTopology.from_graph(graph)
        else:
            self._build_adjacency()

    @classmethod
    def from_compiled(
        cls,
        topo: CompiledTopology,
        *,
        max_activations: int = 50,
        metrics: RunMetrics | None = None,
        mode: str = "full",
        backend: str = "compiled",
    ) -> "PropagationEngine":
        """An engine over pre-compiled arrays, without an ASGraph.

        This is the pool-worker bootstrap path: the runner ships
        :class:`CompiledTopology` buffers through shared memory and the
        worker builds its engine directly from them.  ``graph`` is
        materialised lazily (only detection/collector code needs it).
        ``backend`` accepts the compiled-array backends ("compiled" or
        "vectorized") — the reference backend needs a real graph.
        """
        engine = cls.__new__(cls)
        if max_activations < 1:
            raise SimulationError("max_activations must be positive")
        if mode not in ("full", "delta"):
            raise SimulationError(f"mode must be 'full' or 'delta', got {mode!r}")
        if backend not in ("compiled", "vectorized"):
            raise SimulationError(
                "from_compiled backend must be 'compiled' or 'vectorized', "
                f"got {backend!r}"
            )
        engine._graph = None
        engine._max_activations = max_activations
        engine.metrics = metrics
        engine._backend = backend
        engine._mode = mode
        engine._adjacency = None
        engine._topo = topo
        engine._tables = OrderedDict()
        return engine

    def _build_adjacency(self) -> None:
        # Pre-compiled adjacency for the reference backend: for each
        # AS, a tuple of entries (neighbor,
        #  role-of-neighbor-relative-to-AS, pref-of-routes-from-neighbor,
        #  pref-the-neighbor-assigns, always_export, is_sibling) —
        # everything the hot announcement loop would otherwise recompute
        # per offer.  ``for_relationship`` rejects unrelated pairs, so
        # every compiled role is a real relationship.
        graph = self.graph
        adjacency: dict[
            int,
            tuple[tuple[int, Relationship, PrefClass, PrefClass, bool, bool], ...],
        ] = {}
        for asn in graph:
            entries = []
            for neighbor in graph.sorted_neighbors(asn):
                role = graph.relationship(asn, neighbor)
                entries.append(
                    (
                        neighbor,
                        role,
                        PrefClass.for_relationship(role),
                        # The class the neighbour assigns to routes from
                        # ``asn``: its role seen from the other side.
                        PrefClass.for_relationship(role.inverse()),
                        # Valley-free export to this neighbour is
                        # unconditional for customers and siblings.
                        role in (Relationship.CUSTOMER, Relationship.SIBLING),
                        role is Relationship.SIBLING,
                    )
                )
            adjacency[asn] = tuple(entries)
        self._adjacency = adjacency

    @property
    def graph(self) -> ASGraph:
        if self._graph is None:
            self._graph = self._topo.to_asgraph()
        return self._graph

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def max_activations(self) -> int:
        return self._max_activations

    def _contains(self, asn: int) -> bool:
        if self._topo is not None:
            return asn in self._topo.index
        return asn in self._adjacency

    def _table_for(self, origin: int) -> InternTable:
        """The intern table for propagations originated at ``origin``.

        Tables are per-origin so a campaign over many victims does not
        accumulate every victim's path population in one table; the LRU
        only drops the engine's reference — outcomes keep their table
        alive through their attached :class:`CompiledState`.
        """
        table = self._tables.get(origin)
        if table is None:
            table = InternTable(self._topo)
            self._tables[origin] = table
        self._tables.move_to_end(origin)
        while len(self._tables) > self._TABLE_LRU:
            self._tables.popitem(last=False)
        return table

    # ------------------------------------------------------------------
    def propagate(
        self,
        origin: int,
        *,
        prefix: str = DEFAULT_PREFIX,
        prepending: PrependingPolicy | None = None,
        modifiers: Mapping[int, PathModifier] | None = None,
        export_policy: ExportPolicy | None = None,
        warm_start: PropagationOutcome | None = None,
        seed_ases: Iterable[int] | None = None,
        import_filters: Mapping[int, ImportFilter] | None = None,
        secpol: Any | None = None,
        activation: str = "fifo",
        activation_rng: random.Random | None = None,
        incremental: bool = True,
    ) -> PropagationOutcome:
        """Run propagation of ``origin``'s prefix to a routing fixpoint.

        ``prepending`` supplies per-neighbour padding counts (default:
        nobody prepends).  ``modifiers`` maps AS numbers to path
        transformations applied when that AS re-announces (the attack
        hook).  ``export_policy`` defaults to strict valley-free export.

        With ``warm_start`` the engine resumes from a previously
        converged outcome (for the same origin/prefix) and only
        re-announces from ``seed_ases`` (default: the modifier ASes and
        policy violators) — adoption rounds then count from the moment
        the attack begins, which Figure 14's timing analysis needs.

        ``import_filters`` maps an AS to a receiver-side vetting
        function: offers it returns False for never enter that AS's
        decision process (the deployment hook for defensive policies).

        ``secpol`` optionally attaches a security-policy deployment (a
        :class:`repro.secpol.SecurityDeployment`, duck-typed: anything
        with ``deployers``, ``check(receiver, sender, path)`` and
        ``compiled_checker(table)``).  Every deployed AS evaluates the
        policy on each offer before its decision process — policy
        first, then any stacked import filter
        (:func:`repro.bgp.decision.admit_offer`).  ``None`` (the
        default) is the exact pristine code path.

        ``activation`` selects the worklist discipline: ``"fifo"`` (the
        default, and the order every reproduction artefact is pinned
        to), ``"lifo"``, or ``"random"`` (drawing from
        ``activation_rng``).  Under valley-free policies the converged
        ``best`` routes are the same for every fair activation order
        (Gao-Rexford stability); only the adoption-round stamps are
        order-dependent.  The alternative orders exist so tests can
        check that determinism claim.

        ``incremental=False`` disables the O(1) per-offer decision fast
        path and reruns the full Adj-RIB-in scan on every rib change —
        the reference discipline, bit-identical by construction.  The
        invariant suite diffs the two modes, and benchmarks use the
        reference mode to time the pre-fast-path cost model.
        """
        if not self._contains(origin):
            raise UnknownASError(origin)
        if activation not in ("fifo", "lifo", "random"):
            raise SimulationError(
                f"activation must be 'fifo', 'lifo' or 'random', got {activation!r}"
            )
        if activation == "random" and activation_rng is None:
            activation_rng = random.Random(0)
        prepending = prepending or PrependingPolicy()
        modifiers = dict(modifiers or {})
        export_policy = export_policy or ExportPolicy()
        import_filters = dict(import_filters or {})
        for asn in modifiers:
            if not self._contains(asn):
                raise UnknownASError(asn)

        seed: set[int] | None = None
        if warm_start is not None:
            if warm_start.origin != origin or warm_start.prefix != prefix:
                raise SimulationError(
                    "warm start must come from the same origin and prefix"
                )
            if seed_ases is None:
                seed = set(modifiers) | set(export_policy.violators)
            else:
                seed = set(seed_ases)
            if not seed:
                raise SimulationError(
                    "warm start requires seed ASes (modifiers, violators, or explicit)"
                )

        if self._backend in ("compiled", "vectorized"):
            # An outcome already carrying compiled state over this
            # topology brings its own intern table (the cache's derived
            # baselines share the canonical run's table); otherwise the
            # engine keeps one table per origin.
            state = warm_start.compiled_state if warm_start is not None else None
            if (
                isinstance(state, CompiledState)
                and state.table.topo is self._topo
            ):
                table = state.table
            else:
                table = self._table_for(origin)
            if self._backend == "vectorized":
                # The vectorized core covers exactly the cold stock-
                # policy runs (the baseline convergences that dominate
                # sweeps); anything else — warm starts, modifiers,
                # filters, policies — falls through to run_compiled on
                # the same table, bit-identical by the differential
                # contract.
                if (
                    warm_start is None
                    and not modifiers
                    and not import_filters
                    and secpol is None
                    and type(export_policy) is ExportPolicy
                    and not export_policy.violators
                ):
                    from repro.bgp.vectorized import (
                        VectorizedUnsupported,
                        run_vectorized,
                    )

                    try:
                        return run_vectorized(
                            self._topo,
                            table,
                            origin=origin,
                            prefix=prefix,
                            prepending=prepending,
                            metrics=self.metrics,
                        )
                    except VectorizedUnsupported:
                        pass
                if self.metrics is not None and self.metrics.enabled:
                    self.metrics.count("engine.vectorized.fallbacks")
            if self._mode == "delta" and warm_start is not None:
                from repro.bgp.delta import run_delta

                outcome = run_delta(
                    self._topo,
                    table,
                    origin=origin,
                    prefix=prefix,
                    prepending=prepending,
                    modifiers=modifiers,
                    export_policy=export_policy,
                    import_filters=import_filters,
                    warm_start=warm_start,
                    seed=seed,
                    activation=activation,
                    activation_rng=activation_rng,
                    secpol=secpol,
                    incremental=incremental,
                    max_activations=self._max_activations,
                    metrics=self.metrics,
                )
                if outcome is not None:
                    return outcome
                if self.metrics is not None and self.metrics.enabled:
                    self.metrics.count("engine.delta.fallbacks")
            return run_compiled(
                self._topo,
                table,
                origin=origin,
                prefix=prefix,
                prepending=prepending,
                modifiers=modifiers,
                export_policy=export_policy,
                import_filters=import_filters,
                warm_start=warm_start,
                seed=seed,
                activation=activation,
                activation_rng=activation_rng,
                secpol=secpol,
                incremental=incremental,
                max_activations=self._max_activations,
                metrics=self.metrics,
            )

        if warm_start is not None:
            state = warm_start.clone()
            best = state.best
            adj_rib_in = state.adj_rib_in
            # The clone shares the warm start's inner Adj-RIB-in maps;
            # each one is copied right before its first write below.
            shared_ribs: set[int] | None = set(adj_rib_in)
            adoption: dict[int, int] = {}
            initial = sorted(seed)
        else:
            best = {asn: None for asn in self._adjacency}
            best[origin] = Route(prefix, (), None, PrefClass.ORIGIN)
            adj_rib_in = {asn: {} for asn in self._adjacency}
            shared_ribs = None
            adoption = {origin: 0}
            initial = [origin]

        # Preference key of each AS's current best route, kept in sync
        # with ``best`` so most offer arrivals decide in O(1) instead of
        # rescanning the receiver's whole Adj-RIB-in.  A warm start from
        # an engine-produced outcome reuses its carried keys.
        if warm_start is not None and warm_start.best_keys is not None:
            best_key: dict[int, tuple[int, int, int] | None] = state.best_keys
        else:
            best_key = {
                asn: (None if route is None else preference_key(route))
                for asn, route in best.items()
            }

        # Hoisted policy state: the stock valley-free export test and
        # the no-prepending common case are inlined in the hot loop;
        # ExportPolicy subclasses keep the full method-call path.
        stock_export = type(export_policy) is ExportPolicy
        violators = export_policy.violators
        pad_senders = prepending.senders()

        # Security-policy deployment: deployed receivers take the full
        # decision scan (same branch as import-filtered receivers), with
        # the policy applied per offer inside it.
        sec_check = None
        sec_deployed: frozenset[int] = frozenset()
        if secpol is not None:
            sec_check = secpol.check
            sec_deployed = frozenset(
                a for a in secpol.deployers if self._contains(a)
            )
        sec_stats = [0, 0]  # offers evaluated / offers filtered

        # Telemetry is accumulated in locals and flushed once at the
        # end, so an enabled registry costs one branch per activation
        # (plus a few per rib change) and a disabled one costs nothing
        # but this single check.
        metrics = self.metrics
        track = metrics is not None and metrics.enabled
        if track:
            announcements = fastpath_hits = fastpath_misses = best_changes = 0
            peak_queue = 0

        # Round stamp of the news each AS would currently announce.
        round_of: dict[int, int] = {asn: 0 for asn in initial}
        queue: deque[int] = deque(initial)
        queued: set[int] = set(initial)
        operations = 0
        budget = self._max_activations * max(1, len(self._adjacency))
        max_round = 0
        while queue:
            operations += 1
            if operations > budget:
                raise ConvergenceError(operations)
            if activation == "fifo":
                sender = queue.popleft()
            elif activation == "lifo":
                sender = queue.pop()
            else:
                index = activation_rng.randrange(len(queue))
                queue[index], queue[-1] = queue[-1], queue[index]
                sender = queue.pop()
            queued.discard(sender)
            route = best[sender]
            sender_round = round_of.get(sender, 0)
            if track:
                qlen = len(queue) + 1  # including the activation just popped
                if qlen > peak_queue:
                    peak_queue = qlen
                announcements += len(self._adjacency[sender])
            if route is not None:
                base = route.path
                modifier = modifiers.get(sender)
                if modifier is not None:
                    base = modifier(base)
                route_pref = route.pref
                # ORIGIN/CUSTOMER/SIBLING routes may cross peer and
                # provider links (policy.py's _EXPORTABLE_UPWARD).
                exportable_up = route_pref <= PrefClass.SIBLING
                sender_violates = sender in violators
                sender_pads = sender in pad_senders
                # Announced path per padding count: identical for every
                # neighbour with the same count, so build each once.
                paths_by_count: dict[int, tuple[int, ...]] = {}
            for neighbor, role, _pref, inv_pref, always_export, is_sibling in (
                self._adjacency[sender]
            ):
                if route is None:
                    offer = None
                elif not (
                    (sender_violates or always_export or exportable_up)
                    if stock_export
                    else export_policy.allows_export(sender, role, route_pref)
                ):
                    offer = None
                else:
                    count = prepending.padding(sender, neighbor) if sender_pads else 1
                    path_out = paths_by_count.get(count)
                    if path_out is None:
                        path_out = (sender,) * count + base
                        paths_by_count[count] = path_out
                    # Receiver-side loop prevention: an AS never accepts
                    # a path already containing its own ASN.
                    if neighbor in path_out:
                        offer = None
                    elif is_sibling:
                        # A sibling inherits the sender's own class (one
                        # organisation, two ASNs).
                        offer = (path_out, route_pref)
                    else:
                        # The sender's CUSTOMER is the receiver, for whom
                        # the sender is a PROVIDER, and vice versa; peers
                        # stay peers.
                        offer = (path_out, inv_pref)
                rib = adj_rib_in[neighbor]
                if rib.get(sender) == offer:
                    continue
                if shared_ribs is not None and neighbor in shared_ribs:
                    # First write to a warm-start-shared map: copy it now
                    # so the baseline outcome stays pristine.
                    rib = adj_rib_in[neighbor] = dict(rib)
                    shared_ribs.discard(neighbor)
                rib[sender] = offer
                if neighbor == origin:
                    continue  # the owner always keeps its own route
                current = best[neighbor]
                import_filter = import_filters.get(neighbor)
                if import_filter is not None or neighbor in sec_deployed or not incremental:
                    if track:
                        fastpath_misses += 1
                    new_best, new_key = self._decide(
                        neighbor,
                        prefix,
                        rib,
                        import_filter,
                        sec_check if neighbor in sec_deployed else None,
                        sec_stats,
                    )
                elif offer is None:
                    if current is not None and current.learned_from == sender:
                        # The best offer was withdrawn: full re-decision.
                        if track:
                            fastpath_misses += 1
                        new_best, new_key = self._decide(neighbor, prefix, rib, None)
                    else:
                        if track:
                            fastpath_hits += 1
                        continue  # losing a non-best offer changes nothing
                else:
                    path, pref = offer
                    cand_key = (int(pref), len(path), sender)
                    current_key = best_key[neighbor]
                    if current is None:
                        if track:
                            fastpath_hits += 1
                        new_best, new_key = Route(prefix, path, sender, pref), cand_key
                    elif current.learned_from == sender:
                        if cand_key <= current_key:
                            # The best offer improved (or kept its rank):
                            # it stays the best — keys of other offers are
                            # strictly worse than the old minimum.
                            if track:
                                fastpath_hits += 1
                            new_best, new_key = Route(prefix, path, sender, pref), cand_key
                        else:
                            if track:
                                fastpath_misses += 1
                            new_best, new_key = self._decide(neighbor, prefix, rib, None)
                    elif cand_key < current_key:
                        if track:
                            fastpath_hits += 1
                        new_best, new_key = Route(prefix, path, sender, pref), cand_key
                    else:
                        if track:
                            fastpath_hits += 1
                        continue  # a worse-ranked offer cannot displace the best
                if new_best == current:
                    best_key[neighbor] = new_key
                    continue
                if track:
                    best_changes += 1
                best[neighbor] = new_best
                best_key[neighbor] = new_key
                stamp = sender_round + 1
                adoption[neighbor] = stamp
                round_of[neighbor] = stamp
                max_round = max(max_round, stamp)
                if neighbor not in queued:
                    queue.append(neighbor)
                    queued.add(neighbor)

        if track:
            # Warm-started propagations (the attack runs — one per task,
            # starting from a bit-identical baseline) are worker-count
            # invariant; cold propagations (baseline convergences) depend
            # on per-worker cache locality, so the two are recorded under
            # separate namespaces and only ``engine.warm.*`` participates
            # in serial-vs-pooled determinism comparisons.
            ns = "engine.warm" if warm_start is not None else "engine.cold"
            metrics.count(f"{ns}.propagations")
            metrics.count(f"{ns}.activations", operations)
            metrics.count(f"{ns}.announcements", announcements)
            metrics.count(f"{ns}.fastpath_hits", fastpath_hits)
            metrics.count(f"{ns}.fastpath_misses", fastpath_misses)
            metrics.count(f"{ns}.best_changes", best_changes)
            metrics.observe(f"{ns}.convergence_rounds", max_round)
            metrics.observe(f"{ns}.queue_peak", peak_queue)
            if secpol is not None:
                metrics.count("secpol.evaluated", sec_stats[0])
                metrics.count("secpol.filtered", sec_stats[1])
                metrics.count("secpol.deployed_ases", len(sec_deployed))

        return PropagationOutcome(
            prefix=prefix,
            origin=origin,
            best=best,
            adj_rib_in=adj_rib_in,
            adoption_round=adoption,
            rounds=max_round,
            best_keys=best_key,
        )

    # ------------------------------------------------------------------
    def propagate_batch(
        self, origins: Iterable[int], *, prefix: str = DEFAULT_PREFIX
    ) -> dict[int, PropagationOutcome]:
        """Converge many origins' cold canonical baselines in one walk.

        Vectorized backend only: each origin becomes a column of the
        2-D key matrix, so a campaign's baselines share every topology
        gather instead of walking the graph once per victim.  Each
        outcome is built on its own per-origin intern table and is
        bit-identical to ``propagate(origin, prefix=prefix)`` — the
        batched-columns differential pins that.  Results come back
        keyed by origin, in input order.
        """
        if self._backend != "vectorized":
            raise SimulationError(
                "propagate_batch requires backend='vectorized'"
            )
        origins = list(origins)
        for origin in origins:
            if not self._contains(origin):
                raise UnknownASError(origin)
        if len(set(origins)) != len(origins):
            raise SimulationError("propagate_batch origins must be distinct")
        if not origins:
            return {}
        from repro.bgp.vectorized import (
            VectorizedUnsupported,
            run_vectorized_batch,
        )

        tables = {origin: self._table_for(origin) for origin in origins}
        try:
            outcomes = run_vectorized_batch(
                self._topo,
                tables,
                origins,
                prefix=prefix,
                metrics=self.metrics,
            )
        except VectorizedUnsupported:
            if self.metrics is not None and self.metrics.enabled:
                self.metrics.count("engine.vectorized.fallbacks", len(origins))
            return {
                origin: self.propagate(origin, prefix=prefix) for origin in origins
            }
        return dict(zip(origins, outcomes))

    # ------------------------------------------------------------------
    def _decide(
        self,
        receiver: int,
        prefix: str,
        offers: Mapping[int, tuple[tuple[int, ...], PrefClass] | None],
        import_filter: ImportFilter | None = None,
        sec_check: Callable[[int, int, tuple[int, ...]], bool] | None = None,
        sec_stats: list[int] | None = None,
    ) -> tuple[Route | None, tuple[int, int, int] | None]:
        """Run the full decision process over ``receiver``'s Adj-RIB-in.

        Returns the selected route together with its preference key (the
        propagation loop keeps per-AS keys to decide most offer arrivals
        incrementally, and only falls back to this scan when the current
        best offer worsened or a filter/policy is in play).
        """
        best_offer: tuple[tuple[int, ...], PrefClass] | None = None
        best_neighbor = -1
        best_key: tuple[int, int, int] | None = None
        filtered = import_filter is not None or sec_check is not None
        for entry in self._adjacency[receiver]:
            neighbor = entry[0]
            offer = offers.get(neighbor)
            if offer is None:
                continue
            path, pref = offer
            if filtered and not admit_offer(
                receiver, neighbor, path, sec_check, import_filter, sec_stats
            ):
                continue
            key = (int(pref), len(path), neighbor)
            if best_key is None or key < best_key:
                best_offer, best_neighbor, best_key = offer, neighbor, key
        if best_offer is None:
            return None, None
        return Route(prefix, best_offer[0], best_neighbor, best_offer[1]), best_key
