"""BGP substrate: AS paths, routes, policies, and propagation engines.

This package implements the inter-domain routing machinery the paper's
simulator is built on:

* :mod:`repro.bgp.aspath` — AS-PATH algebra including AS-path
  prepending (ASPP), padding extraction and stripping;
* :mod:`repro.bgp.route` / :mod:`repro.bgp.decision` — route records
  and the policy-first, length-second BGP decision process;
* :mod:`repro.bgp.policy` — valley-free export rules (with the
  policy-violation mode of the paper's Figures 11-12);
* :mod:`repro.bgp.prepending` — per-neighbour prepending schedules;
* :mod:`repro.bgp.engine` — the general worklist propagation engine
  (supports attacker transforms, warm starts, adoption-round clocks);
* :mod:`repro.bgp.vectorized` — the NumPy CSR batched frontier core
  for Internet-scale cold runs (``backend="vectorized"``);
* :mod:`repro.bgp.uphill` — the paper's Figure-2 three-phase algorithm,
  used as an independent oracle;
* :mod:`repro.bgp.collectors` — RouteViews/RIPE-style route collectors;
* :mod:`repro.bgp.updates` — update-stream (churn) simulation.
"""

from repro.bgp.aspath import (
    ASPath,
    collapse_prepending,
    origin_of,
    padding_of_origin,
    prepend,
    strip_origin_padding,
)
from repro.bgp.collectors import MonitorView, RouteCollector
from repro.bgp.compiled import CompiledState, CompiledTopology, InternTable
from repro.bgp.decision import best_route, preference_key
from repro.bgp.engine import PropagationEngine, PropagationOutcome
from repro.bgp.policy import ExportPolicy
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.ribdump import dumps_view, load_view, loads_view, save_view
from repro.bgp.route import Route
from repro.bgp.uphill import three_phase_routes
from repro.bgp.uphill_hijack import paper_hijack_estimate
from repro.bgp.vectorized import (
    VectorizedUnsupported,
    numpy_available,
    run_vectorized,
    run_vectorized_batch,
    vectorized_fixpoint,
)

__all__ = [
    "ASPath",
    "CompiledState",
    "CompiledTopology",
    "InternTable",
    "prepend",
    "origin_of",
    "padding_of_origin",
    "strip_origin_padding",
    "collapse_prepending",
    "Route",
    "preference_key",
    "best_route",
    "ExportPolicy",
    "PrependingPolicy",
    "PropagationEngine",
    "PropagationOutcome",
    "RouteCollector",
    "MonitorView",
    "three_phase_routes",
    "paper_hijack_estimate",
    "VectorizedUnsupported",
    "numpy_available",
    "run_vectorized",
    "run_vectorized_batch",
    "vectorized_fixpoint",
    "dumps_view",
    "loads_view",
    "save_view",
    "load_view",
]
