"""Update-stream (churn) simulation.

The paper's measurement section contrasts what monitors see in stable
routing *tables* with what shows up in *update* files: transient
events expose backup routes, which carry heavier prepending (operators
pad backup announcements so they are only used during failures).  We
reproduce that mechanism: a churn event takes a converged world, fails
one of the origin's provider/peer links, re-converges, and records each
monitor route that changed — those changed routes are the "update
messages" the characterisation of Figures 5-6 consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bgp.collectors import RouteCollector
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import Route
from repro.exceptions import SimulationError
from repro.topology.asgraph import ASGraph

__all__ = ["UpdateMessage", "SequencedUpdate", "simulate_update_stream"]


@dataclass(frozen=True, slots=True)
class UpdateMessage:
    """One simulated BGP update observed at a monitor."""

    monitor: int
    prefix: str
    path: tuple[int, ...]
    withdrawn: bool = False


@dataclass(frozen=True, slots=True)
class SequencedUpdate:
    """An update stamped with its position in the global stream.

    Real collector feeds carry per-message timestamps; the simulation's
    equivalent is a dense sequence number assigned when the stream is
    synthesized.  A multi-feed pipeline that receives disjoint slices
    of one stream merges them back into sequence order, which is what
    makes its alarms independent of the feed interleaving (see
    :class:`repro.detection.pipeline.StreamingPipeline`).
    """

    seq: int
    message: UpdateMessage


def simulate_update_stream(
    graph: ASGraph,
    origin: int,
    monitors: RouteCollector,
    *,
    prefix: str,
    prepending: PrependingPolicy | None = None,
    events: int = 3,
    rng: random.Random,
) -> list[UpdateMessage]:
    """Simulate ``events`` failure/recovery churn events for one prefix.

    Each event removes one randomly chosen link adjacent to the origin
    (its primary egress candidates), re-runs propagation on the degraded
    topology, and records the new best route of every monitor whose
    route changed.  The link is restored before the next event, and the
    recovery announcements (back to the baseline routes) are recorded
    too — real update files contain both directions of a flap.
    """
    if events < 0:
        raise SimulationError("events must be non-negative")
    neighbors = sorted(graph.neighbors_of(origin))
    if not neighbors:
        raise SimulationError(f"origin AS{origin} has no neighbours to fail")

    baseline_engine = PropagationEngine(graph)
    baseline = baseline_engine.propagate(origin, prefix=prefix, prepending=prepending)
    baseline_view = monitors.snapshot(baseline)

    messages: list[UpdateMessage] = []
    for _ in range(events):
        failed = rng.choice(neighbors)
        degraded = graph.copy()
        degraded.remove_edge(origin, failed)
        engine = PropagationEngine(degraded)
        outcome = engine.propagate(origin, prefix=prefix, prepending=prepending)
        degraded_view = monitors.snapshot(outcome)
        for monitor in monitors.monitors:
            before: Route | None = baseline_view.routes.get(monitor)
            after: Route | None = degraded_view.routes.get(monitor)
            if before == after:
                continue
            if after is None:
                messages.append(
                    UpdateMessage(monitor=monitor, prefix=prefix, path=(), withdrawn=True)
                )
            else:
                messages.append(
                    UpdateMessage(monitor=monitor, prefix=prefix, path=after.path)
                )
            # Recovery: the flap's second half re-announces the baseline.
            if before is not None:
                messages.append(
                    UpdateMessage(monitor=monitor, prefix=prefix, path=before.path)
                )
    return messages
