"""Vectorized (NumPy) cold-path propagation core.

This module is the ``backend="vectorized"`` implementation behind
:class:`repro.bgp.engine.PropagationEngine`: cold (baseline)
convergences run as a handful of NumPy gather/scatter-min passes over
the :class:`~repro.bgp.compiled.CompiledTopology` CSR arrays instead of
the compiled backend's per-activation Python loop.

Why this is exact
-----------------

Under stock valley-free policies every announcement step *strictly*
increases the decision key ``(pref class, path length)``: customer
routes (class ≤ 2) gain length going up or sideways, peer offers jump
to class 3, provider offers to class 4.  That strict monotonicity has
two consequences the core exploits:

* **Dijkstra-style wave scheduling is sound.**  The smallest
  unfinalised tentative key can never improve again (all future offers
  come from keys ≥ it and strictly increase), so each pass finalises
  the whole ``(class, length)`` level at once and relaxes only the
  newly-finalised senders' out-edges.  Every directed edge is relaxed
  exactly once per source — total work is O(E) in NumPy batch ops.
  Because the class field dominates the key, the wave schedule *is*
  the Gao-Rexford phase ordering: all customer-cone levels drain
  first (the customer-up sweep), then the single peer-exchange level
  band (class 3), then the provider-down levels (class 4).

* **Loop prevention needs no per-offer path scan.**  A looping offer
  announces a path containing the receiver, which makes the receiver
  an ancestor of the sender in the learned-from forest — so the
  receiver's own key is strictly smaller and the offer can never win
  a decision.  Loops only matter at Adj-RIB-in emission, where one
  Euler-tour ancestor test per slot (two array compares) reproduces
  the compiled backend's big-int mask check.

Keys pack into one ``int64`` — ``class·2^53 + length·2^21 + sender
index`` — so a full decision (class, then length, then lowest sender
index, matching the reference engine's ASN tie-break because index
order is ascending-ASN order) is a single ``np.minimum``.

Batching: :func:`run_vectorized_batch` converges B origins at once by
giving each origin a column in the ``(N, B)`` key matrix; every wave's
gather/scatter covers all columns, so a grid's canonical baselines
share one topology walk.  :func:`vectorized_fixpoint` exposes the raw
key matrix without building outcomes (the 80k-AS benchmark path — no
intern table, no Python-object emission).

Contract vs the compiled oracle (pinned by
``tests/bgp/test_vectorized_differential.py``): cold runs agree on
``best``/``best_keys``, every *present* Adj-RIB-in entry, pollution and
reachability sets, and the attached :class:`CompiledState` arrays —
and any warm-started attack run computed *from* a vectorized baseline
matches one from a compiled baseline on every decision-relevant field:
``best``, ``best_keys``, adoption stamps, round counts, pollution
sets, and every present Adj-RIB-in offer.  Two documented discipline
differences on the cold run itself: adoption stamps are the wave
clock (forest depth) rather than FIFO activation stamps, and
transient explicit-``None`` withdrawals never occur (a converged cold
Adj-RIB-in never needs them; the slot is simply absent), exactly like
the reference engine's ``rib.get(s) is None`` reading of both.  The
withdrawal difference can survive a warm run in slots the warm flood
never touches, which is why the oracle suite compares Adj-RIB-in
modulo explicit ``None``.
"""

from __future__ import annotations

from repro.bgp.compiled import (
    _PREF_OF,
    CompiledState,
    CompiledTopology,
    InternTable,
)
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import Route
from repro.exceptions import ConvergenceError
from repro.telemetry.metrics import RunMetrics

try:  # pragma: no cover - exercised only where numpy is absent
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

__all__ = [
    "VectorizedUnsupported",
    "numpy_available",
    "run_vectorized",
    "run_vectorized_batch",
    "vectorized_fixpoint",
]

# Packed decision key: class in bits 53+, length in bits 21..52,
# sender index in bits 0..20.  INF uses class 5 (> PROVIDER).
_CLS_SHIFT = 53
_LEN_SHIFT = 21
_SENDER_MASK = (1 << 21) - 1
_LEN_MASK = (1 << 32) - 1
_MAX_N = 1 << 21
_MAX_LEN = 1 << 31  # headroom below the 2^32 length field


def numpy_available() -> bool:
    """True when the vectorized backend can run at all."""
    return np is not None


class VectorizedUnsupported(Exception):
    """This run's inputs fall outside the vectorized core's domain.

    The engine catches this and falls back to :func:`run_compiled`
    (counted as ``engine.vectorized.fallbacks``) — raising instead of
    silently wrong answers keeps the fallback contract honest.
    """


def _inf():
    return np.int64(5) << _CLS_SHIFT


class _EdgeViews:
    """NumPy views of a topology's CSR arrays, announce-oriented.

    Slot ``k`` is the directed edge ``owner[k] -> nbr[k]``; ``rev[k]``
    is the matching Adj-RIB-in cell in the receiver's block.  Cached on
    the topology (building them is O(E)); all integer arrays are int64
    so packed-key arithmetic never needs casts.
    """

    __slots__ = ("n", "indptr", "nbr", "owner", "inv", "always", "sib", "rev")

    def __init__(self, topo: CompiledTopology) -> None:
        self.n = topo.n
        self.indptr = np.asarray(topo.indptr).astype(np.int64)
        self.nbr = np.asarray(topo.nbr).astype(np.int64)
        self.owner = np.repeat(
            np.arange(topo.n, dtype=np.int64), np.diff(self.indptr)
        )
        self.inv = np.asarray(topo.inv_pref).astype(np.int64)
        self.always = np.asarray(topo.always_export).astype(bool)
        self.sib = np.asarray(topo.is_sibling).astype(bool)
        self.rev = np.asarray(topo.rev_slot).astype(np.int64)


def _views(topo: CompiledTopology) -> _EdgeViews:
    ev = topo._np
    if ev is None:
        ev = topo._np = _EdgeViews(topo)
    return ev


def _ranges(lens):
    """Concatenated ``arange(l)`` for each l in ``lens``."""
    total = int(lens.sum())
    out = np.arange(total, dtype=np.int64)
    return out - np.repeat(np.cumsum(lens) - lens, lens)


def _slot_counts(topo: CompiledTopology, ev: _EdgeViews, prepending: PrependingPolicy):
    """Per-announce-slot prepend counts.

    Returns ``(counts, default_count, overrides)``: counts per slot,
    the per-sender modal count (used for the one-``extend``-per-sender
    emission gather), and ``{(sender, receiver): count}`` for the
    slots whose per-link padding differs from their sender's default.
    """
    counts = np.ones(len(ev.nbr), dtype=np.int64)
    default_count = np.ones(topo.n, dtype=np.int64)
    overrides: dict[tuple[int, int], int] = {}
    senders = prepending.senders()
    if senders:
        asn_of = topo.asn
        index = topo.index
        padding_of = prepending.padding
        indptr = topo.indptr
        nbr = topo.nbr
        for s_asn in senders:
            i = index.get(s_asn)
            if i is None:
                continue
            lo, hi = indptr[i], indptr[i + 1]
            if lo == hi:
                continue
            vals = [padding_of(s_asn, asn_of[nbr[k]]) for k in range(lo, hi)]
            counts[lo:hi] = vals
            default = max(set(vals), key=vals.count)
            default_count[i] = default
            for k, v in zip(range(lo, hi), vals):
                if v != default:
                    overrides[(i, int(nbr[k]))] = v
    return counts, default_count, overrides


def _fixpoint(ev: _EdgeViews, origin_idx, counts):
    """Converge packed keys for each origin column.

    ``origin_idx`` is an int64 array of origin indices (one column
    each); ``counts`` the shared per-slot prepend counts.  Returns
    ``(K, waves, levels)``: the (N, B) key matrix, the wave count, and
    the per-wave ``(class, length)`` level list (per column) that the
    Gao-phase property suite inspects.
    """
    inf = _inf()
    n = ev.n
    b = len(origin_idx)
    keys = np.full((n, b), inf, dtype=np.int64)
    keys[origin_idx, np.arange(b)] = 0
    final = np.zeros((n, b), dtype=bool)
    indptr = ev.indptr
    always = ev.always
    sib = ev.sib
    inv = ev.inv
    owner = ev.owner
    nbr = ev.nbr
    # Distinct (class, length) levels bound the wave count: 5 classes
    # times the longest possible padded path, plus slack.  Hitting this
    # is a bug (monotonicity guarantees termination), not an input
    # property.
    budget = 5 * (n * int(counts.max()) + 2)
    waves = 0
    levels: list = []
    if b == 1:
        # Single-column fast path: 1-D views, masked min (no tent
        # copy), and every selected row is newly final in *the*
        # column, so the freshness mask disappears and the scatter
        # only touches allowed slots.
        keys1 = keys[:, 0]
        final1 = final[:, 0]
        while True:
            m = np.min(keys1, where=~final1, initial=inf)
            if m >= inf:
                break
            level = m >> _LEN_SHIFT
            newly1 = (~final1) & ((keys1 >> _LEN_SHIFT) == level)
            final1 |= newly1
            waves += 1
            levels.append([(int(m >> _CLS_SHIFT), int((m >> _LEN_SHIFT) & _LEN_MASK))])
            if waves > budget:  # pragma: no cover - monotonicity violation
                raise ConvergenceError(waves)
            rows = np.nonzero(newly1)[0]
            lens = indptr[rows + 1] - indptr[rows]
            if not int(lens.sum()):
                continue
            slots = np.repeat(indptr[rows], lens) + _ranges(lens)
            src = owner[slots]
            ks = keys1[src]
            cls = ks >> _CLS_SHIFT
            allowed = always[slots] | (cls <= 2)
            slots = slots[allowed]
            src = src[allowed]
            ks = ks[allowed]
            cls = cls[allowed]
            ln = (ks >> _LEN_SHIFT) & _LEN_MASK
            ocls = np.where(sib[slots], cls, inv[slots])
            offer = (
                (ocls << _CLS_SHIFT) | ((ln + counts[slots]) << _LEN_SHIFT) | src
            )
            np.minimum.at(keys1, nbr[slots], offer)
        return keys, waves, levels
    # Batch path: every per-wave gather/scatter runs on the flattened
    # (node, column) pairs that are newly final, so the total relaxed
    # entries across all waves is one per directed edge per column —
    # the same work as B single-column runs, with the per-wave Python
    # overhead amortised across the batch.
    keys_flat = keys.reshape(-1)
    while True:
        m = np.min(keys, axis=0, where=~final, initial=inf)
        active = m < inf
        if not active.any():
            break
        level = m >> _LEN_SHIFT
        newly = (~final) & ((keys >> _LEN_SHIFT) == level[None, :]) & active[None, :]
        final |= newly
        waves += 1
        levels.append(
            [
                (int(c), int(ln)) if a else None
                for c, ln, a in zip(m >> _CLS_SHIFT, (m >> _LEN_SHIFT) & _LEN_MASK, active)
            ]
        )
        if waves > budget:  # pragma: no cover - monotonicity violation
            raise ConvergenceError(waves)
        rows, cols = np.nonzero(newly)
        lens = indptr[rows + 1] - indptr[rows]
        if not int(lens.sum()):
            continue
        slots = np.repeat(indptr[rows], lens) + _ranges(lens)
        scol = np.repeat(cols, lens)
        src = owner[slots]
        ks = keys_flat[src * b + scol]
        cls = ks >> _CLS_SHIFT
        allowed = always[slots] | (cls <= 2)
        slots = slots[allowed]
        scol = scol[allowed]
        src = src[allowed]
        ks = ks[allowed]
        cls = cls[allowed]
        ln = (ks >> _LEN_SHIFT) & _LEN_MASK
        ocls = np.where(sib[slots], cls, inv[slots])
        offer = (
            (ocls << _CLS_SHIFT) | ((ln + counts[slots]) << _LEN_SHIFT) | src
        )
        np.minimum.at(keys_flat, nbr[slots] * b + scol, offer)
    return keys, waves, levels


def _check_domain(topo: CompiledTopology, counts) -> None:
    if topo.n >= _MAX_N:
        raise VectorizedUnsupported(
            f"{topo.n} ASes exceed the 2^21 sender-index field"
        )
    if topo.n * int(counts.max()) >= _MAX_LEN:
        raise VectorizedUnsupported("padded path lengths overflow the key")


def _emit_column(
    topo: CompiledTopology,
    ev: _EdgeViews,
    table: InternTable,
    keys,
    *,
    origin: int,
    origin_idx: int,
    prefix: str,
    counts,
    default_count,
    overrides,
):
    """Build a full cold outcome (genuine :class:`CompiledState` plus
    the deferred tuple emission) from one converged key column."""
    from repro.bgp.engine import PropagationOutcome  # deferred: engine imports us

    inf = _inf()
    n = topo.n
    extend = table.extend
    routed = keys < inf
    cls_np = (keys >> _CLS_SHIFT).astype(np.int64)
    snd_np = (keys & _SENDER_MASK).astype(np.int64)

    # Node order by increasing final key: a node's parent (its
    # learned-from sender) always has a strictly smaller key, so one
    # walk resolves parent-before-child quantities (depths, pids).
    order = np.argsort(keys, kind="stable")[: int(routed.sum())]

    # Learned-from forest as a parent-pointer array with fixed points
    # at the origin and every unrouted node, then wave-clock depths
    # (the vectorized discipline's adoption stamps) by pointer
    # doubling — O(log depth) full-array gathers, no Python walk.
    idx = np.arange(n, dtype=np.int64)
    par = np.where(routed, snd_np, idx)
    par[origin_idx] = origin_idx
    depth_np = (par != idx).astype(np.int64)
    jump = par
    while True:
        gain = depth_np[jump]
        if not gain.any():
            break
        depth_np = depth_np + gain
        jump = jump[jump]
    max_depth = int(depth_np.max()) if n else 0

    # Adj-RIB-in presence.  An offer is present iff the sender is
    # routed, export is valley-free-allowed, and the receiver is not
    # on the announced path.  The announced path is the sender's
    # parent chain, so the loop test is an ancestor chase: walk the
    # parent pointers (at most ``max_depth`` hops, all allowed slots
    # at once) and flag slots whose receiver appears.  Fixed points
    # make the walk idempotent once it reaches the origin; everything
    # not emitted is an absent slot (-2), never an explicit
    # withdrawal.
    owner = ev.owner
    s_cls = cls_np[owner]
    allowed = routed[owner] & (ev.always | (s_cls <= 2))
    cand = np.nonzero(allowed)[0]
    walk = par[owner[cand]]
    recv = ev.nbr[cand]
    is_anc = walk == recv
    for _ in range(max_depth - 1):
        nxt = par[walk]
        if (nxt == walk).all():
            break
        walk = nxt
        is_anc |= walk == recv
    sel = cand[~is_anc]
    emit = np.zeros(len(owner), dtype=bool)
    emit[sel] = True

    # Interned pids, only where a pid is ever observable: a sender's
    # announcement ``(s,)*count + path(s)`` needs interning iff ``s``
    # actually emits an offer, and ``best_pid[v]`` is exactly the
    # parent's announcement pid — so the extend set is offer senders ∪
    # forest parents (the victim's export cone, typically a small
    # fraction of the graph), identical in construction to the
    # compiled hot loop's pids, so equal paths intern to equal pids on
    # a shared table.  A need node's parent is itself a need node (it
    # has that node as a child), so one key-ordered pass over the cone
    # resolves every extend parent-first.
    announces = np.zeros(n, dtype=bool)
    announces[owner[sel]] = True
    has_child = np.zeros(n, dtype=bool)
    nonorigin = routed.copy()
    nonorigin[origin_idx] = False
    has_child[snd_np[nonorigin]] = True
    need = announces | has_child
    par_l = par.tolist()
    dc_list = default_count.tolist()
    bp_l = [0] * n
    pe_l = [0] * n
    for v in order[need[order]].tolist():
        if v == origin_idx:
            pid = 0
        else:
            p = par_l[v]
            cnt = overrides.get((p, v))
            pid = pe_l[p] if cnt is None else extend(bp_l[p], p, cnt)
            bp_l[v] = pid
        pe_l[v] = extend(pid, v, dc_list[v])
    pid_export = np.asarray(pe_l, dtype=np.int64)

    best_pid_np = np.where(routed, pid_export[par], 0)
    best_pid_np[origin_idx] = 0
    if overrides:
        for (s, r), cnt in overrides.items():
            if routed[r] and par_l[r] == s:
                best_pid_np[r] = extend(bp_l[s], s, cnt)
    best_pid = best_pid_np.tolist()

    best_pref = np.where(routed, cls_np, -1).tolist()
    best_from = np.where(routed, snd_np, -1).tolist()
    best_from[origin_idx] = -1

    num_slots = len(ev.nbr)
    rib_pid_np = np.full(num_slots, -2, dtype=np.int64)
    rib_pref_np = np.zeros(num_slots, dtype=np.int64)
    rib_pid_np[ev.rev[sel]] = pid_export[owner[sel]]
    rib_pref_np[ev.rev[sel]] = np.where(ev.sib[sel], s_cls[sel], ev.inv[sel])
    if overrides:
        slot_index = topo.slot_index
        for (s, r), cnt in overrides.items():
            k = slot_index[s][r]
            if emit[k]:
                rib_pid_np[ev.rev[k]] = extend(bp_l[s], s, cnt)
    rib_pid = rib_pid_np.tolist()
    rib_pref = rib_pref_np.tolist()

    asn_of = topo.asn
    asn_np = np.asarray(asn_of, dtype=np.int64)
    adoption = dict(
        zip(asn_np[order].tolist(), depth_np[order].tolist())
    )

    indptr = topo.indptr
    nbr = topo.nbr
    reify = table.reify
    length = table.length

    def materialise(out: "PropagationOutcome") -> None:
        pref_of = _PREF_OF

        def emit_best(i: int):
            p = best_pref[i]
            if p < 0:
                return None, None
            pid = best_pid[i]
            learned_idx = best_from[i]
            learned = None if learned_idx < 0 else asn_of[learned_idx]
            return (
                Route(prefix, reify(pid), learned, pref_of[p]),
                (p, length[pid], -1 if learned is None else learned),
            )

        def emit_offers(i: int):
            offers: dict = {}
            for k in range(indptr[i], indptr[i + 1]):
                pid = rib_pid[k]
                if pid == -2:
                    continue
                offers[asn_of[nbr[k]]] = (reify(pid), pref_of[rib_pref[k]])
            return offers

        best_out = {}
        keys_out = {}
        adj_out = {}
        for i in topo.iter_order:
            a = asn_of[i]
            best_out[a], keys_out[a] = emit_best(i)
            adj_out[a] = emit_offers(i)
        out._set_materialised(best_out, adj_out, keys_out)

    outcome = PropagationOutcome(
        prefix=prefix,
        origin=origin,
        adoption_round=adoption,
        rounds=max_depth,
        emit=materialise,
    )
    outcome.compiled_state = CompiledState(
        table, best_pref, best_pid, best_from, rib_pid, rib_pref
    )
    return outcome


# ----------------------------------------------------------------------
def run_vectorized(
    topo: CompiledTopology,
    table: InternTable,
    *,
    origin: int,
    prefix: str,
    prepending: PrependingPolicy,
    metrics: RunMetrics | None = None,
):
    """One cold propagation on the vectorized core.

    Raises :class:`VectorizedUnsupported` when the topology or padding
    falls outside the packed-key domain; the engine's dispatch treats
    that as a silent fallback to :func:`run_compiled`.
    """
    ev = _views(topo)
    counts, default_count, overrides = _slot_counts(topo, ev, prepending)
    _check_domain(topo, counts)
    origin_idx = topo.index[origin]
    keys, waves, _ = _fixpoint(ev, np.asarray([origin_idx], dtype=np.int64), counts)
    outcome = _emit_column(
        topo,
        ev,
        table,
        keys[:, 0],
        origin=origin,
        origin_idx=origin_idx,
        prefix=prefix,
        counts=counts,
        default_count=default_count,
        overrides=overrides,
    )
    if metrics is not None and metrics.enabled:
        metrics.count("engine.vectorized.propagations")
        metrics.observe("engine.vectorized.waves", waves)
    return outcome


def run_vectorized_batch(
    topo: CompiledTopology,
    tables,
    origins,
    *,
    prefix: str,
    metrics: RunMetrics | None = None,
):
    """Converge many origins' canonical (λ=1) baselines in one walk.

    ``tables`` maps each origin ASN to the intern table its outcome
    should populate (the engine keeps one per origin); ``origins`` is
    the batch, one key-matrix column each.  Only un-prepended runs
    batch — the uniform-λ variants every sweep needs derive exactly
    from these via :meth:`CompiledState.derive_uniform`.
    """
    ev = _views(topo)
    counts = np.ones(len(ev.nbr), dtype=np.int64)
    _check_domain(topo, counts)
    default_count = np.ones(topo.n, dtype=np.int64)
    origin_idx = np.asarray([topo.index[o] for o in origins], dtype=np.int64)
    keys, waves, _ = _fixpoint(ev, origin_idx, counts)
    outcomes = []
    for col, o in enumerate(origins):
        outcomes.append(
            _emit_column(
                topo,
                ev,
                tables[o],
                keys[:, col],
                origin=o,
                origin_idx=int(origin_idx[col]),
                prefix=prefix,
                counts=counts,
                default_count=default_count,
                overrides={},
            )
        )
    if metrics is not None and metrics.enabled:
        metrics.count("engine.vectorized.propagations", len(origins))
        metrics.count("engine.vectorized.batched_columns", len(origins))
        metrics.observe("engine.vectorized.waves", waves)
    return outcomes


def vectorized_fixpoint(
    topo: CompiledTopology,
    origins,
    *,
    prepending: PrependingPolicy | None = None,
):
    """Raw packed-key fixpoint for benchmarking and property tests.

    Returns ``(keys, waves, levels)``: the (N, B) int64 key matrix
    (class·2^53 + length·2^21 + sender index; 5·2^53 = unreachable),
    the wave count, and the per-wave per-column (class, length) levels.
    No intern table, no outcome objects — this is the 80k-AS path,
    whose route masks alone would dwarf the fixpoint's footprint.
    ``topo`` may be a :class:`CompiledTopology` or a plain
    :class:`~repro.topology.asgraph.ASGraph` (compiled on the fly).
    """
    if not isinstance(topo, CompiledTopology):
        topo = CompiledTopology.from_graph(topo)
    ev = _views(topo)
    counts, _, _ = _slot_counts(topo, ev, prepending or PrependingPolicy())
    _check_domain(topo, counts)
    origin_idx = np.asarray([topo.index[o] for o in origins], dtype=np.int64)
    return _fixpoint(ev, origin_idx, counts)
