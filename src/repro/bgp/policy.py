"""Valley-free export policy (the Gao-Rexford export rule).

An AS exports:

* **to customers and siblings** — every route it uses (customers pay
  for full reachability; siblings are the same organisation);
* **to peers and providers** — only routes it originates itself or
  learned from customers/siblings (no free transit between two
  providers or two peers).

The paper's Figures 11-12 also examine an attacker that *violates*
this rule and re-exports provider/peer routes everywhere; the policy
object supports a per-AS violation set for exactly that experiment.
"""

from __future__ import annotations

from repro.topology.relationships import PrefClass, Relationship

__all__ = ["ExportPolicy", "ImportPolicy"]

#: Preference classes that may be exported to peers/providers.
_EXPORTABLE_UPWARD = frozenset(
    {PrefClass.ORIGIN, PrefClass.CUSTOMER, PrefClass.SIBLING}
)


class ExportPolicy:
    """Decides whether an AS announces its best route to a neighbour.

    ``violators`` is the set of ASes that ignore the valley-free export
    rule (they export every route to every neighbour) — the attacker
    configuration of the paper's Figures 11 and 12.
    """

    def __init__(self, violators: frozenset[int] | set[int] = frozenset()) -> None:
        self._violators = frozenset(violators)

    @property
    def violators(self) -> frozenset[int]:
        return self._violators

    def allows_export(
        self,
        sender: int,
        neighbor_role: Relationship,
        route_pref: PrefClass,
    ) -> bool:
        """True when ``sender`` may announce a ``route_pref`` route to a
        neighbour whose role (relative to the sender) is ``neighbor_role``.
        """
        if neighbor_role is Relationship.NONE:
            return False
        if sender in self._violators:
            return True
        if neighbor_role in (Relationship.CUSTOMER, Relationship.SIBLING):
            return True
        return route_pref in _EXPORTABLE_UPWARD

    def with_violators(self, violators: set[int] | frozenset[int]) -> "ExportPolicy":
        """A copy of this policy with ``violators`` added."""
        return ExportPolicy(self._violators | frozenset(violators))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExportPolicy(violators={sorted(self._violators)})"


class ImportPolicy:
    """Receiver-side admission contract for security policies.

    Where :class:`ExportPolicy` governs what a *sender* announces, an
    import policy is evaluated by the *receiver* on every offer in its
    Adj-RIB-in before the decision process ranks it:
    ``check(receiver, sender, path)`` returning False drops the offer
    as if it were never announced.  Unlike the ad-hoc per-AS
    ``import_filters`` callables (which only see ``(sender, path)``),
    an import policy knows who is evaluating it — ASPA-style validation
    needs the receiver's own relationship with the sender for the final
    hop.  The deployment layer (:mod:`repro.secpol`) decides *which*
    ASes evaluate the policy; the engines only ever see the combination
    through a :class:`repro.secpol.SecurityDeployment`.

    Admission order is fixed by :func:`repro.bgp.decision.admit_offer`:
    security policy first, then any user import filter.
    """

    name = "abstract"

    def check(self, receiver: int, sender: int, path: tuple[int, ...]) -> bool:
        raise NotImplementedError
