"""The paper's Figure-2 hijack simulation algorithm, implemented as-is.

Figure 2 of the paper ("BGP route update propagation and decision
process simulation algorithm") computes the attack outcome inside the
three-phase customer/peer/provider structure: shortest uphill paths are
computed from the victim; whenever the current AS is the attacker
``M``, the path ``[M * V ... V]`` is changed to ``[M * V]`` and the
shortest uphill paths are updated accordingly; peer and provider phases
then run on the updated distances.

This module reproduces that algorithm faithfully — including its
approximation: unlike the exact worklist engine
(:mod:`repro.bgp.engine`), the three-phase formulation never revisits
the *class* structure after the modification (an AS that held a peer
route keeps a peer route even if the shortened uphill route would now
win at a neighbour), and it does not model AS-PATH loop prevention.
The ``ablation-engine`` benchmark quantifies how close the
approximation gets to the exact fixpoint.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.bgp.aspath import strip_origin_padding
from repro.bgp.prepending import PrependingPolicy
from repro.exceptions import SimulationError, UnknownASError
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import PrefClass

__all__ = ["PaperHijackEstimate", "paper_hijack_estimate"]


@dataclass(frozen=True)
class PaperHijackEstimate:
    """Result of the paper's Figure-2 algorithm for one attack."""

    victim: int
    attacker: int
    origin_padding: int
    #: per-AS best (pref class, length, path) under the attack
    routes: dict[int, tuple[PrefClass, int, tuple[int, ...]]]

    def polluted_fraction(self) -> float:
        """Fraction of (other) ASes whose path traverses the attacker."""
        population = [
            asn for asn in self.routes if asn not in (self.victim, self.attacker)
        ]
        if not population:
            return 0.0
        hits = sum(
            1 for asn in population if self.attacker in self.routes[asn][2]
        )
        return hits / len(population)


def _strip_at(path: tuple[int, ...], attacker: int, victim: int) -> tuple[int, ...]:
    """The attacker's modification of Figure 2: [M * V..V] -> [M * V]."""
    del attacker  # the caller applies this only at the attacker's node
    if not path or path[-1] != victim:
        return path
    return strip_origin_padding(path)


def paper_hijack_estimate(
    graph: ASGraph,
    *,
    victim: int,
    attacker: int,
    origin_padding: int,
) -> PaperHijackEstimate:
    """Run the paper's Figure-2 simulation for one hijack instance.

    Step 1: the victim prepends its ASN ``λ`` times.  Step 2: shortest
    uphill (customer-provider) paths from the victim to all ASes, with
    the attacker stripping ``λ-1`` copies when the path passes through
    it.  Steps 3+: peers' paths, then providers' paths, preferring
    customer < peer < provider, updating recursively downhill.

    Sibling edges are not part of the paper's formulation and are
    rejected, mirroring :func:`repro.bgp.uphill.three_phase_routes`.
    """
    if victim not in graph:
        raise UnknownASError(victim)
    if attacker not in graph:
        raise UnknownASError(attacker)
    if victim == attacker:
        raise SimulationError("attacker and victim must be distinct")
    if origin_padding < 1:
        raise SimulationError("origin padding must be >= 1")
    for asn in graph:
        if graph.siblings_of(asn):
            raise SimulationError(
                "the Figure-2 algorithm does not model sibling edges"
            )
    prepending = PrependingPolicy.uniform_origin(victim, origin_padding)

    # ---- Step 2: shortest uphill paths with in-place modification ----
    uphill: dict[int, tuple[int, int, tuple[int, ...]]] = {}
    heap: list[tuple[int, int, int, tuple[int, ...]]] = []
    for provider in sorted(graph.providers_of(victim)):
        path = (victim,) * prepending.padding(victim, provider)
        if provider == attacker:
            path = _strip_at(path, attacker, victim)
        heapq.heappush(heap, (len(path), victim, provider, path))
    while heap:
        length, sender, node, path = heapq.heappop(heap)
        # A queued candidate may predate a re-settlement at its sender
        # (same (length, sender) key, different path — e.g. the sender
        # tie-broke onto the attacker's stripped route after this push).
        # Figure 2 updates paths "accordingly" downstream, so re-derive
        # from the sender's current settlement; a candidate whose
        # length no longer matches was superseded by the re-pushes the
        # re-settlement itself issued.
        fresh = uphill.get(sender)
        if fresh is not None and sender != victim:
            repaired = (sender,) + fresh[2]
            if sender == attacker:
                repaired = _strip_at(repaired, attacker, victim)
            if len(repaired) != length:
                continue
            path = repaired
        settled = uphill.get(node)
        if settled is not None:
            settled_key = (settled[0], settled[1])
            if settled_key < (length, sender) or (
                settled_key == (length, sender) and settled[2] == path
            ):
                continue
        uphill[node] = (length, sender, path)
        for provider in sorted(graph.providers_of(node)):
            new_path = (node,) + path
            if node == attacker:
                # "if ASk = M: change path [M * V ... V] to [M * V]"
                new_path = _strip_at(new_path, attacker, victim)
            heapq.heappush(heap, (len(new_path), node, provider, new_path))

    # ---- Peers' paths ------------------------------------------------
    peer_routes: dict[int, tuple[int, int, tuple[int, ...]]] = {}
    for node in graph:
        if node == victim:
            continue
        best: tuple[int, int, tuple[int, ...]] | None = None
        for peer in sorted(graph.peers_of(node)):
            if peer == victim:
                candidate_path = (victim,) * prepending.padding(victim, node)
            elif peer in uphill:
                candidate_path = (peer,) + uphill[peer][2]
                if peer == attacker:
                    candidate_path = _strip_at(candidate_path, attacker, victim)
            else:
                continue
            candidate = (len(candidate_path), peer, candidate_path)
            if best is None or (candidate[0], candidate[1]) < (best[0], best[1]):
                best = candidate
        if best is not None:
            peer_routes[node] = best

    # ---- Providers' paths (recursive downhill update) ----------------
    best_class: dict[int, tuple[PrefClass, int, tuple[int, ...]]] = {
        victim: (PrefClass.ORIGIN, 0, ())
    }
    for node, (length, _sender, path) in uphill.items():
        best_class[node] = (PrefClass.CUSTOMER, length, path)
    for node, (length, _sender, path) in peer_routes.items():
        if node not in best_class:
            best_class[node] = (PrefClass.PEER, length, path)

    downhill: dict[int, tuple[int, int, tuple[int, ...]]] = {}
    heap = []
    for node, (_pref, _length, path) in best_class.items():
        for customer in sorted(graph.customers_of(node)):
            if customer in best_class:
                continue
            if node == victim:
                candidate = (victim,) * prepending.padding(victim, customer)
            else:
                candidate = (node,) + path
                if node == attacker:
                    candidate = _strip_at(candidate, attacker, victim)
            heapq.heappush(heap, (len(candidate), node, customer, candidate))
    while heap:
        length, sender, node, path = heapq.heappop(heap)
        if node in best_class:
            continue
        # Same staleness repair as the uphill loop: senders settled in
        # phases 1-2 (absent from ``downhill``) are final, but a
        # downhill sender may have re-settled since this push.
        fresh = downhill.get(sender)
        if fresh is not None and sender != victim:
            repaired = (sender,) + fresh[2]
            if sender == attacker:
                repaired = _strip_at(repaired, attacker, victim)
            if len(repaired) != length:
                continue
            path = repaired
        settled = downhill.get(node)
        if settled is not None:
            settled_key = (settled[0], settled[1])
            if settled_key < (length, sender) or (
                settled_key == (length, sender) and settled[2] == path
            ):
                continue
        downhill[node] = (length, sender, path)
        for customer in sorted(graph.customers_of(node)):
            if customer in best_class:
                continue
            new_path = (node,) + path
            if node == attacker:
                new_path = _strip_at(new_path, attacker, victim)
            heapq.heappush(heap, (len(new_path), node, customer, new_path))
    for node, (length, _sender, path) in downhill.items():
        best_class[node] = (PrefClass.PROVIDER, length, path)

    return PaperHijackEstimate(
        victim=victim,
        attacker=attacker,
        origin_padding=origin_padding,
        routes=best_class,
    )
