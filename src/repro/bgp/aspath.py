"""AS-PATH algebra, including AS-path prepending (ASPP).

AS paths are represented as tuples of AS numbers in standard BGP order:
``path[0]`` is the most recent AS to announce the route, ``path[-1]``
is the origin.  Prepending by AS ``a`` inserts extra copies of ``a`` at
the *front* when ``a`` announces; by the time a path reaches an
observer, an origin that padded ``λ`` times appears as a run of ``λ``
copies at the *tail* of the path.

The functions here are the primitives everything else builds on: the
attacker strips padding (:func:`strip_origin_padding`), the measurement
module counts it (:func:`padding_of_origin`,
:func:`max_prepending_run`), and the detector compares padded segments
(:func:`split_origin_padding`).

Plain tuples are used on hot paths; the :class:`ASPath` wrapper offers
the same operations as an ergonomic object for the public API.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import PolicyError

__all__ = [
    "prepend",
    "origin_of",
    "padding_of_origin",
    "split_origin_padding",
    "strip_origin_padding",
    "collapse_prepending",
    "has_prepending",
    "max_prepending_run",
    "prepending_runs",
    "unique_ases",
    "ASPath",
]

Path = tuple[int, ...]


def prepend(path: Path, asn: int, count: int = 1) -> Path:
    """Prepend ``count`` copies of ``asn`` to ``path``.

    ``count`` must be at least 1 (every announcing AS adds itself at
    least once; extra copies are ASPP).
    """
    if count < 1:
        raise PolicyError(f"prepend count must be >= 1, got {count}")
    return (asn,) * count + tuple(path)


def origin_of(path: Path) -> int:
    """The origin AS (last element) of a non-empty path."""
    if not path:
        raise PolicyError("empty AS path has no origin")
    return path[-1]


def padding_of_origin(path: Path) -> int:
    """Length of the origin's trailing run: ``λ`` for ``[... V V V]``.

    Returns 1 when the origin did not prepend.
    """
    origin = origin_of(path)
    count = 0
    for asn in reversed(path):
        if asn != origin:
            break
        count += 1
    return count


def split_origin_padding(path: Path) -> tuple[Path, int, int]:
    """Split ``path`` into ``(head, origin, λ)``.

    ``head`` is everything before the origin's trailing run.  The
    detection algorithm compares ``head`` segments across monitors and
    flags mismatched ``λ``.
    """
    origin = origin_of(path)
    padding = padding_of_origin(path)
    return path[: len(path) - padding], origin, padding


def strip_origin_padding(path: Path, keep: int = 1) -> Path:
    """Collapse the origin's trailing run down to ``keep`` copies.

    This is exactly the attacker's transformation: receiving
    ``[* V ... V]`` and forwarding ``[* V]``.  ``keep`` must be between
    1 and the current padding.
    """
    head, origin, padding = split_origin_padding(path)
    if keep < 1:
        raise PolicyError("must keep at least one copy of the origin ASN")
    keep = min(keep, padding)
    return head + (origin,) * keep


def collapse_prepending(path: Path) -> Path:
    """Remove *all* prepending: collapse every consecutive run to length 1.

    The result is the underlying AS-level route.  This is also the
    aggressive attacker variant that strips intermediary prepending,
    not just the origin's.
    """
    collapsed: list[int] = []
    for asn in path:
        if not collapsed or collapsed[-1] != asn:
            collapsed.append(asn)
    return tuple(collapsed)


def prepending_runs(path: Path) -> Iterator[tuple[int, int]]:
    """Yield ``(asn, run_length)`` for each maximal consecutive run."""
    if not path:
        return
    current = path[0]
    length = 1
    for asn in path[1:]:
        if asn == current:
            length += 1
        else:
            yield current, length
            current, length = asn, 1
    yield current, length


def has_prepending(path: Path) -> bool:
    """True when any AS appears in a consecutive run of length >= 2."""
    return any(length >= 2 for _, length in prepending_runs(path))


def max_prepending_run(path: Path) -> int:
    """The longest consecutive run length in ``path`` (0 for empty).

    The paper's Figure 6 ("number of duplicate ASNs") plots this
    statistic over all observed routes.
    """
    return max((length for _, length in prepending_runs(path)), default=0)


def unique_ases(path: Path) -> tuple[int, ...]:
    """The distinct ASes of the path in first-appearance order."""
    seen: set[int] = set()
    result: list[int] = []
    for asn in path:
        if asn not in seen:
            seen.add(asn)
            result.append(asn)
    return tuple(result)


class ASPath:
    """Ergonomic wrapper over a tuple AS path.

    Immutable; all mutating-style operations return a new ``ASPath``.
    """

    __slots__ = ("_path",)

    def __init__(self, ases: Iterable[int] = ()) -> None:
        self._path = tuple(int(asn) for asn in ases)
        if any(asn <= 0 for asn in self._path):
            raise PolicyError(f"AS path contains invalid ASN: {self._path}")

    @property
    def as_tuple(self) -> Path:
        return self._path

    @property
    def origin(self) -> int:
        return origin_of(self._path)

    @property
    def head(self) -> int:
        """The most recent announcing AS (first element)."""
        if not self._path:
            raise PolicyError("empty AS path has no head")
        return self._path[0]

    @property
    def origin_padding(self) -> int:
        return padding_of_origin(self._path)

    @property
    def is_prepended(self) -> bool:
        return has_prepending(self._path)

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        return ASPath(prepend(self._path, asn, count))

    def strip_origin_padding(self, keep: int = 1) -> "ASPath":
        return ASPath(strip_origin_padding(self._path, keep))

    def collapse(self) -> "ASPath":
        return ASPath(collapse_prepending(self._path))

    def contains(self, asn: int) -> bool:
        return asn in self._path

    def __len__(self) -> int:
        return len(self._path)

    def __iter__(self) -> Iterator[int]:
        return iter(self._path)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ASPath):
            return self._path == other._path
        if isinstance(other, tuple):
            return self._path == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._path)

    def __repr__(self) -> str:
        return f"ASPath({' '.join(str(a) for a in self._path)})"
