"""Route records held in a simulated BGP RIB."""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.relationships import PrefClass

__all__ = ["Route", "DEFAULT_PREFIX"]

#: Prefix used when an experiment only simulates a single destination.
DEFAULT_PREFIX = "203.0.113.0/24"


@dataclass(frozen=True, slots=True)
class Route:
    """A route to ``prefix`` as installed at some AS.

    ``path`` is the AS-PATH exactly as received (the neighbour's ASN,
    possibly repeated by prepending, comes first; the origin's padded
    run comes last).  The prefix owner's own route has an empty path.

    ``learned_from`` is the neighbour ASN the route was learned from
    (``None`` for a self-originated route) and ``pref`` the
    local-preference class that neighbour relationship implies.
    """

    prefix: str
    path: tuple[int, ...]
    learned_from: int | None
    pref: PrefClass

    @property
    def length(self) -> int:
        """AS-PATH length, the tie-breaking metric after local-pref."""
        return len(self.path)

    @property
    def origin(self) -> int | None:
        """Origin AS of the path (``None`` for a self-originated route)."""
        return self.path[-1] if self.path else None

    def traverses(self, asn: int) -> bool:
        """True when ``asn`` appears on the AS-PATH."""
        return asn in self.path

    def __str__(self) -> str:
        path_text = " ".join(str(a) for a in self.path) if self.path else "<self>"
        return f"{self.prefix} via [{path_text}] ({self.pref.name.lower()})"
