"""Content-addressed campaign store: compute any cell once, ever.

The store keys results by the same sha256 task fingerprints the
checkpoint journal uses, so campaigns, sweeps, grids and figures all
dedupe against one shared append-only log:

    from repro.store import CampaignStore, query_experiment

    store = CampaignStore("results-store")
    first = query_experiment(store, "fig09")    # computes, streams cells in
    again = query_experiment(store, "fig09")    # pure store hit, zero engine work
    assert again.from_store and again.result.rows == first.result.rows

Layered modules: :mod:`~repro.store.store` (the log + index),
:mod:`~repro.store.adapter` (checkpoint-journal bridge),
:mod:`~repro.store.query` (experiment-level serving) and
:mod:`~repro.store.active` (ambient binding the sweep layer consults).
"""

from repro.store.active import get_active_store, use_store
from repro.store.adapter import StoreJournal, import_journal
from repro.store.query import QueryOutcome, experiment_fingerprint, query_experiment
from repro.store.store import MISSING, SCHEMA_VERSION, CampaignStore

__all__ = [
    "MISSING",
    "SCHEMA_VERSION",
    "CampaignStore",
    "QueryOutcome",
    "StoreJournal",
    "experiment_fingerprint",
    "get_active_store",
    "import_journal",
    "query_experiment",
    "use_store",
]
