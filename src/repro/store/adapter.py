"""Bridging the per-run checkpoint journal and the shared store.

:class:`~repro.runner.checkpoint.CheckpointJournal` predates the store
and stays fully supported — it is the right tool for a single run's
crash/resume.  This module connects the two worlds:

* :class:`StoreJournal` speaks the journal protocol the
  :class:`~repro.runner.supervisor.SupervisedExecutor` consumes
  (``completed`` / ``result_for`` / ``record_success`` /
  ``record_failure``) but reads and writes a shared
  :class:`~repro.store.store.CampaignStore`, so a supervised run
  checkpoints straight into the deduplicating store instead of a
  private JSONL file.
* :func:`import_journal` lifts a legacy ``--resume`` journal's success
  records into a store, after which the journal file can be deleted —
  its results keep serving every future campaign.

Failures are deliberately *not* persisted in the store: the store is
content-addressed truth about completed work, and a quarantined task
should be retried by the next run, not remembered forever.  The
adapter keeps failures in memory for the run's own post-mortem,
mirroring the journal's retry-on-resume semantics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.runner.checkpoint import CheckpointJournal
from repro.store.store import MISSING, CampaignStore

__all__ = ["StoreJournal", "import_journal"]


class StoreJournal:
    """Journal-protocol facade over a :class:`CampaignStore`.

    Drop-in wherever a :class:`CheckpointJournal` is accepted
    (``SupervisedExecutor(journal=...)``, ``_run_tasks`` internals).
    The store's lifetime belongs to the caller: :meth:`close` is a
    no-op so one store can back many consecutive runs.
    """

    def __init__(self, store: CampaignStore) -> None:
        self.store = store
        #: fingerprint -> failure record, for this run only.
        self._failures: dict[str, dict[str, Any]] = {}

    # -- journal protocol ----------------------------------------------
    def completed(self, fingerprint: str) -> bool:
        return fingerprint in self.store

    def result_for(self, fingerprint: str) -> Any:
        value = self.store.get(fingerprint)
        if value is MISSING:
            raise KeyError(fingerprint)
        return value

    def failed(self, fingerprint: str) -> bool:
        return fingerprint in self._failures

    def record_success(self, fingerprint: str, result: Any) -> None:
        self.store.put(fingerprint, result)

    def record_failure(
        self, fingerprint: str, *, kind: str, attempts: int, error: str
    ) -> None:
        self._failures[fingerprint] = {
            "kind": kind,
            "attempts": attempts,
            "error": error,
        }

    @property
    def completed_count(self) -> int:
        return len(self.store)

    def __len__(self) -> int:
        return len(self.store) + len(self._failures)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """No-op: the store outlives any one run."""

    def __enter__(self) -> "StoreJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def import_journal(
    journal: CheckpointJournal | str | Path, store: CampaignStore
) -> int:
    """Copy a legacy journal's success records into ``store``.

    Accepts an open journal or a path to one; returns how many records
    were actually new to the store (already-stored fingerprints dedupe
    away).  The journal is left untouched — both paths stay green.
    """
    owned = not isinstance(journal, CheckpointJournal)
    source = CheckpointJournal(journal) if owned else journal
    try:
        imported = 0
        for fingerprint, result in source.successes():
            if store.put(fingerprint, result):
                imported += 1
        return imported
    finally:
        if owned:
            source.close()
