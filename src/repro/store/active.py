"""Ambient store binding for the experiment layer.

The figure modules call :func:`~repro.experiments.sweeps.padding_sweep`
and friends without knowing about storage.  Rather than threading a
``store=`` parameter through every figure, the query layer binds the
store ambiently for the duration of a run: the sweep machinery asks
:func:`get_active_store` and, when one is bound, serves store hits and
persists fresh results — every existing experiment becomes an
incremental job without touching its module.

The binding is a :class:`contextvars.ContextVar`, so it is safe under
threads (each scheduler shard sees the binding of the context that
spawned it) and never leaks across unrelated runs.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.store import CampaignStore

__all__ = ["get_active_store", "use_store"]

_ACTIVE_STORE: ContextVar["CampaignStore | None"] = ContextVar(
    "repro_active_store", default=None
)


def get_active_store() -> "CampaignStore | None":
    """The store bound by the innermost :func:`use_store`, if any."""
    return _ACTIVE_STORE.get()


@contextlib.contextmanager
def use_store(store: "CampaignStore | None") -> Iterator["CampaignStore | None"]:
    """Bind ``store`` as the ambient campaign store for the block.

    ``None`` explicitly unbinds (useful to fence a sub-computation off
    from an outer binding).  The store's lifetime stays with the
    caller — leaving the block restores the previous binding without
    closing anything.
    """
    token = _ACTIVE_STORE.set(store)
    try:
        yield store
    finally:
        _ACTIVE_STORE.reset(token)
