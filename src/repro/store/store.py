"""Content-addressed campaign result store.

Every runner task is a pure function of its frozen descriptor, and
:func:`~repro.runner.checkpoint.task_fingerprint` already gives each
descriptor a stable sha256 identity.  :class:`CampaignStore` turns that
identity into an address: one append-only JSONL record log per store,
one record per fingerprint, so a grid cell converged by *any* campaign,
sweep or figure is never recomputed by a later one — cross-campaign
dedupe instead of per-run throwaway journals.

Durability model
----------------
Records are appended with a single ``write(2)`` on an ``O_APPEND``
descriptor, so concurrent writer *processes* interleave whole records,
never bytes (the payload digest in each record catches torn writes on
filesystems that do not serialise large appends).  The in-memory index
is rebuilt by scanning the log on open and extended incrementally by
:meth:`CampaignStore.refresh`, which picks up records appended by other
processes since the last scan.  A crash mid-append leaves at most one
unterminated line; the next writer terminates it (the fragment then
parses as one garbled record and is skipped) so the log never cascades
corruption.

Records carry a schema version; a store written by a future layout is
skipped record-by-record rather than exploding, and :meth:`compact`
rewrites the log to one valid record per fingerprint (first record
wins — payloads for the same fingerprint are identical by purity).
Compaction rewrites into a temp file and ``os.replace``-s it into
place, so readers never observe a half-written log; run it quiescent
(no concurrent appenders), like any log rotation.

Payloads are pickles (base64-armoured inside the JSON record), exactly
like :class:`~repro.runner.checkpoint.CheckpointJournal` — a store is a
private artefact of the machines that share it; do not load stores
from untrusted sources.

Telemetry lands on the attached registry under ``store.*``:
``store.{hits,misses,puts,bytes,dedup_writes,compactions}`` plus
hygiene counters for corrupt/stale/duplicate records seen while
scanning.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import SimulationError
from repro.telemetry.metrics import RunMetrics

__all__ = ["MISSING", "SCHEMA_VERSION", "CampaignStore", "decode_record", "encode_record"]

#: bump when the record layout changes; readers skip newer records.
SCHEMA_VERSION = 1

_LOG_NAME = "records.jsonl"

#: index placeholder for a fingerprint we appended (or deduped against)
#: but whose byte range has not been located by a scan yet.
_PENDING = (-1, -1)


class _Missing:
    """Canonical miss sentinel (``None`` is a valid stored payload)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


MISSING = _Missing()


def _encode_payload(result: Any) -> str:
    raw = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(raw).decode("ascii")


def _decode_payload(payload: str) -> Any:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


def encode_record(fingerprint: str, result: Any, *, kind: str = "task") -> bytes:
    """One newline-terminated record line for ``fingerprint``.

    ``sha`` digests the armoured payload so a torn append (or bit rot)
    is detected on read instead of deserialising garbage.
    """
    payload = _encode_payload(result)
    record = {
        "v": SCHEMA_VERSION,
        "fp": fingerprint,
        "kind": kind,
        "schema": f"{type(result).__module__}.{type(result).__qualname__}",
        "payload": payload,
        "sha": hashlib.sha256(payload.encode("ascii")).hexdigest(),
    }
    return (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_record(line: bytes) -> dict[str, Any] | None:
    """Parse and verify one record line; ``None`` for anything unusable.

    Unusable covers truncated JSON, non-record JSON, records from a
    newer :data:`SCHEMA_VERSION`, and payloads whose digest does not
    match (torn write) — callers count, skip, and keep scanning.
    """
    try:
        record = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    if record.get("v") != SCHEMA_VERSION:
        return None
    fingerprint = record.get("fp")
    payload = record.get("payload")
    digest = record.get("sha")
    if not isinstance(fingerprint, str) or not isinstance(payload, str):
        return None
    if digest != hashlib.sha256(payload.encode("ascii")).hexdigest():
        return None
    return record


class CampaignStore:
    """Append-only content-addressed result store under a directory.

    ``root`` is created if missing; the log lives at
    ``root/records.jsonl``.  Safe for concurrent use by threads of one
    process (internal lock) and by multiple writer processes (atomic
    ``O_APPEND`` record appends; see the module docstring).
    """

    def __init__(self, root: str | Path, *, metrics: RunMetrics | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _LOG_NAME
        #: registry ``store.*`` telemetry lands on (attach/detach freely).
        self.metrics = metrics
        self._lock = threading.RLock()
        #: fingerprint -> (offset, length) of its first valid record.
        self._index: dict[str, tuple[int, int]] = {}
        self._kinds: dict[str, str] = {}
        #: bytes of the log consumed as complete lines so far.
        self._watermark = 0
        #: a scan saw unterminated bytes at EOF (crashed append); the
        #: next append writes a leading newline to fence them off.
        self._dangling = False
        self._append_fd: int | None = None
        self._read_fd: int | None = None
        self._closed = False
        self.refresh()

    # -- telemetry ------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        registry = self.metrics
        if registry is not None and registry.enabled and n:
            registry.count(name, n)

    # -- file descriptors ----------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise SimulationError("CampaignStore is closed; open a new store")

    def _ensure_read_fd(self) -> int | None:
        if self._read_fd is None:
            try:
                self._read_fd = os.open(self.path, os.O_RDONLY)
            except FileNotFoundError:
                return None
        return self._read_fd

    def _ensure_append_fd(self) -> int:
        if self._append_fd is None:
            self._append_fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
        return self._append_fd

    def _drop_fds(self) -> None:
        for fd in (self._append_fd, self._read_fd):
            if fd is not None:
                os.close(fd)
        self._append_fd = None
        self._read_fd = None

    # -- scanning -------------------------------------------------------
    def refresh(self) -> int:
        """Scan log bytes appended since the last scan; return new records.

        This is how one store instance observes records written by
        other processes (or its own appends, whose offsets are only
        known once scanned).
        """
        with self._lock:
            self._check_open()
            fd = self._ensure_read_fd()
            if fd is None:
                return 0
            size = os.fstat(fd).st_size
            if size <= self._watermark:
                return 0
            data = os.pread(fd, size - self._watermark, self._watermark)
            added = 0
            consumed = 0
            while True:
                newline = data.find(b"\n", consumed)
                if newline < 0:
                    break
                line = data[consumed:newline]
                offset = self._watermark + consumed
                length = newline - consumed
                consumed = newline + 1
                record = decode_record(line)
                if record is None:
                    self._count("store.corrupt_records")
                    continue
                fingerprint = record["fp"]
                existing = self._index.get(fingerprint)
                if existing is not None and existing != _PENDING:
                    # Two processes raced the same cell; purity makes the
                    # payloads identical, so the first record stays law.
                    self._count("store.duplicate_records")
                    continue
                if existing is None:
                    added += 1
                self._index[fingerprint] = (offset, length)
                self._kinds[fingerprint] = str(record.get("kind", "task"))
            self._watermark += consumed
            self._dangling = consumed < len(data)
            return added

    # -- reading --------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._index:
                return True
            self.refresh()
            return fingerprint in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def fingerprints(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._index))

    def get(self, fingerprint: str, default: Any = MISSING) -> Any:
        """The stored result for ``fingerprint``, or ``default``.

        Counts ``store.hits`` / ``store.misses``; a miss re-scans the
        log first so records landed by concurrent writers are served.
        """
        with self._lock:
            self._check_open()
            entry = self._index.get(fingerprint)
            if entry is None or entry == _PENDING:
                self.refresh()
                entry = self._index.get(fingerprint)
            if entry is None or entry == _PENDING:
                self._count("store.misses")
                return default
            offset, length = entry
            fd = self._ensure_read_fd()
            assert fd is not None
            record = decode_record(os.pread(fd, length, offset))
            if record is None:
                # Only possible if the log was rewritten underneath us.
                raise SimulationError(
                    f"store index out of sync with {self.path} at offset {offset}; "
                    "reopen the store"
                )
            self._count("store.hits")
            return _decode_payload(record["payload"])

    def kind_of(self, fingerprint: str) -> str | None:
        with self._lock:
            return self._kinds.get(fingerprint)

    def missing(self, fingerprints: Any) -> list[str]:
        """The subset of ``fingerprints`` with no stored record."""
        with self._lock:
            self.refresh()
            return [fp for fp in fingerprints if fp not in self._index]

    # -- writing --------------------------------------------------------
    def put(self, fingerprint: str, result: Any, *, kind: str = "task") -> bool:
        """Append one record; ``False`` when the fingerprint is already stored.

        First write wins — content addressing plus task purity make a
        second payload for the same fingerprint identical by
        construction, so dedup skips the append entirely
        (``store.dedup_writes``).
        """
        with self._lock:
            self._check_open()
            if fingerprint in self._index:
                self._count("store.dedup_writes")
                return False
            line = encode_record(fingerprint, result, kind=kind)
            if self._dangling:
                line = b"\n" + line
                self._dangling = False
            os.write(self._ensure_append_fd(), line)
            self._index[fingerprint] = _PENDING
            self._kinds[fingerprint] = kind
            self._count("store.puts")
            self._count("store.bytes", len(line))
            return True

    # -- maintenance ----------------------------------------------------
    def compact(self) -> int:
        """Rewrite the log to one valid record per fingerprint.

        Drops duplicate, corrupt and stale-version lines; returns the
        number of bytes reclaimed.  Requires a quiescent store — no
        concurrent appenders (their racing appends would be lost by the
        rewrite).
        """
        with self._lock:
            self._check_open()
            fd = self._ensure_read_fd()
            if fd is None:
                return 0
            self.refresh()
            size = os.fstat(fd).st_size
            data = os.pread(fd, size, 0)
            seen: set[str] = set()
            kept: list[bytes] = []
            for line in data.split(b"\n"):
                if not line:
                    continue
                record = decode_record(line)
                if record is None or record["fp"] in seen:
                    continue
                seen.add(record["fp"])
                kept.append(line + b"\n")
            tmp = self.path.with_name(f"{_LOG_NAME}.compact.{os.getpid()}.tmp")
            out = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(out, b"".join(kept))
                os.fsync(out)
            finally:
                os.close(out)
            os.replace(tmp, self.path)
            self._drop_fds()
            self._index.clear()
            self._kinds.clear()
            self._watermark = 0
            self._dangling = False
            reclaimed = size - sum(len(line) for line in kept)
            self.refresh()
            self._count("store.compactions")
            self._count("store.compacted_bytes", reclaimed)
            return reclaimed

    def stats(self) -> dict[str, Any]:
        """Point-in-time summary (records, bytes on disk, per-kind split)."""
        with self._lock:
            self.refresh()
            kinds: dict[str, int] = {}
            for kind in self._kinds.values():
                kinds[kind] = kinds.get(kind, 0) + 1
            try:
                size = self.path.stat().st_size
            except FileNotFoundError:
                size = 0
            return {
                "path": str(self.path),
                "records": len(self._index),
                "bytes": size,
                "kinds": dict(sorted(kinds.items())),
            }

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._drop_fds()
            self._closed = True

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
