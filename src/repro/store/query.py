"""Serve registered experiments from the campaign store.

Two levels of content addressing cooperate here:

* **Task level** — while an experiment computes, the ambient store
  binding (:func:`~repro.store.active.use_store`) lets the sweep
  machinery dedupe individual grid cells against everything any prior
  campaign converged.
* **Experiment level** — :func:`experiment_fingerprint` hashes the
  experiment id together with its frozen config, and the finished
  :class:`~repro.experiments.base.ExperimentResult` is stored whole
  under that key.  A repeated query is then a single store hit: no
  world build, no engine, zero propagations — the figure comes back
  bit-identical from the log.

Run-shape knobs (the ``workers`` field some configs carry) are masked
out of the fingerprint: results are bit-identical at any worker count
by construction, so a figure computed with 8 workers must serve a
1-worker query.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.exceptions import ExperimentError
from repro.store.active import use_store
from repro.store.store import MISSING, CampaignStore
from repro.telemetry.metrics import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import ExperimentResult

__all__ = ["QueryOutcome", "experiment_fingerprint", "query_experiment"]

#: config fields that shape the run, never the rows — masked from the
#: experiment fingerprint so any execution layout serves any query.
_RUN_SHAPE_FIELDS = ("workers",)


@dataclass(frozen=True)
class QueryOutcome:
    """What :func:`query_experiment` did and what it returned."""

    result: "ExperimentResult"
    #: experiment-level content address the result lives under.
    fingerprint: str
    #: True when the result came straight from the store (zero
    #: propagations); False when this call computed and stored it.
    from_store: bool


def experiment_fingerprint(experiment_id: str, config: Any) -> str:
    """Content address of one experiment run: id + frozen config repr.

    Mirrors :func:`~repro.runner.checkpoint.task_fingerprint` — configs
    are frozen dataclasses whose ``repr`` enumerates every field in
    declaration order, so the digest is stable across processes and
    changes whenever any result-shaping input changes.
    """
    masked = {
        name: None
        for name in _RUN_SHAPE_FIELDS
        if dataclasses.is_dataclass(config)
        and any(field.name == name for field in dataclasses.fields(config))
    }
    if masked:
        config = dataclasses.replace(config, **masked)
    identity = (
        f"experiment:{experiment_id}|"
        f"{type(config).__module__}.{type(config).__qualname__}|{config!r}"
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def _build_config(experiment_id: str, config: Any, overrides: dict[str, Any]) -> Any:
    from repro.experiments import REGISTRY

    try:
        config_factory, runner = REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    config = config_factory() if config is None else config
    applicable = {
        field.name: overrides[field.name]
        for field in dataclasses.fields(config)
        if overrides.get(field.name) is not None
    }
    if applicable:
        config = dataclasses.replace(config, **applicable)
    return config, runner


def query_experiment(
    store: CampaignStore,
    experiment_id: str,
    config: Any = None,
    *,
    metrics: RunMetrics | None = None,
    **overrides: Any,
) -> QueryOutcome:
    """Serve ``experiment_id`` from ``store``, computing only if missing.

    ``config`` defaults to the experiment's registered factory;
    ``overrides`` replace individual config fields (``None`` values and
    fields the config lacks are ignored, mirroring the CLI's override
    semantics).  On a miss the experiment runs with
    ``store`` ambiently bound, so its individual cells dedupe against —
    and stream back into — the same store; the finished result is then
    stored under its experiment fingerprint and the next identical
    query is a pure hit.
    """
    config, runner = _build_config(experiment_id, config, overrides)
    fingerprint = experiment_fingerprint(experiment_id, config)
    cached = store.get(fingerprint)
    if cached is not MISSING:
        return QueryOutcome(result=cached, fingerprint=fingerprint, from_store=True)
    with use_store(store):
        if metrics is not None and "metrics" in inspect.signature(runner).parameters:
            result = runner(config, metrics=metrics)
        else:
            result = runner(config)
    # The registry is part of the live run, not of the artefact: strip
    # it so the stored payload is pure figure data.
    store.put(
        fingerprint, dataclasses.replace(result, metrics=None), kind="experiment"
    )
    return QueryOutcome(result=result, fingerprint=fingerprint, from_store=False)
