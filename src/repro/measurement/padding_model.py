"""Empirical model of AS-path prepending behaviour.

The paper measures (Figure 6, §VI-A) that among prepended routes seen
in routing tables roughly 34% repeat the ASN twice and 22% three times,
about 1% repeat more than ten times, and the tail reaches ~38 copies;
roughly 13% of table routes (per monitor, on average) carry some
prepending, and about 30% of routes overall were observed prepended at
some point.  This module turns those observations into a generative
model used to configure origins in the synthetic measurement world:

* each origin AS prepends at all with probability ``prepend_prob``;
* a prepending origin keeps a preferred subset of its neighbours
  unpadded and pads the rest (inbound traffic engineering / backup
  provisioning) with a count drawn from the empirical distribution;
* a small fraction of transit ASes performs intermediary prepending.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.prepending import PrependingPolicy
from repro.exceptions import MeasurementError
from repro.topology.asgraph import ASGraph

__all__ = ["PADDING_COUNT_WEIGHTS", "PaddingBehaviorModel"]

#: Padding-count distribution (number of copies of the origin ASN, >= 2)
#: shaped after the paper's Figure 6 routing-table series: mode at 2,
#: geometric-ish decay, ~1% of prepended routes above 10, tail to 38.
PADDING_COUNT_WEIGHTS: dict[int, float] = {
    2: 0.34,
    3: 0.22,
    4: 0.13,
    5: 0.09,
    6: 0.07,
    7: 0.05,
    8: 0.035,
    9: 0.025,
    10: 0.015,
    11: 0.005,
    12: 0.004,
    14: 0.003,
    16: 0.002,
    20: 0.0015,
    25: 0.001,
    30: 0.0006,
    38: 0.0004,
}


@dataclass
class PaddingBehaviorModel:
    """Generative prepending-behaviour model.

    ``prepend_prob`` is the probability that an origin AS uses ASPP at
    all; ``preferred_fraction`` the fraction of its neighbours left
    unpadded (where it *wants* inbound traffic); ``intermediary_prob``
    the probability that a transit AS pads one of its provider links.
    """

    prepend_prob: float = 0.3
    preferred_fraction: float = 0.35
    intermediary_prob: float = 0.02
    count_weights: dict[int, float] = field(
        default_factory=lambda: dict(PADDING_COUNT_WEIGHTS)
    )

    def __post_init__(self) -> None:
        for name in ("prepend_prob", "preferred_fraction", "intermediary_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise MeasurementError(f"{name} must be a probability, got {value}")
        if not self.count_weights:
            raise MeasurementError("count_weights must not be empty")
        if any(count < 2 for count in self.count_weights):
            raise MeasurementError("padding counts below 2 are not prepending")

    def sample_count(self, rng: random.Random) -> int:
        """Draw a padding count (total copies of the ASN, >= 2)."""
        counts = sorted(self.count_weights)
        weights = [self.count_weights[c] for c in counts]
        return rng.choices(counts, weights=weights, k=1)[0]

    def configure_origin(
        self,
        graph: ASGraph,
        origin: int,
        policy: PrependingPolicy,
        rng: random.Random,
    ) -> bool:
        """Maybe configure prepending for ``origin`` into ``policy``.

        Returns True when the origin was configured to prepend.  The
        origin keeps a non-empty preferred neighbour subset unpadded and
        pads announcements to the remaining neighbours.
        """
        neighbors = sorted(graph.neighbors_of(origin))
        if len(neighbors) < 2 or rng.random() >= self.prepend_prob:
            return False
        count = self.sample_count(rng)
        num_preferred = max(1, round(len(neighbors) * self.preferred_fraction))
        num_preferred = min(num_preferred, len(neighbors) - 1)
        preferred = set(rng.sample(neighbors, num_preferred))
        for neighbor in neighbors:
            if neighbor not in preferred:
                policy.set_padding(origin, neighbor, count)
        return True

    def configure_intermediaries(
        self,
        graph: ASGraph,
        policy: PrependingPolicy,
        rng: random.Random,
        *,
        candidates: list[int] | None = None,
    ) -> int:
        """Configure intermediary prepending on transit ASes.

        Each candidate AS independently pads one of its provider links
        with probability ``intermediary_prob``.  Returns the number of
        ASes configured.
        """
        configured = 0
        pool = candidates if candidates is not None else graph.ases
        for asn in pool:
            providers = sorted(graph.providers_of(asn))
            if not providers or rng.random() >= self.intermediary_prob:
                continue
            provider = rng.choice(providers)
            policy.set_padding(asn, provider, self.sample_count(rng))
            configured += 1
        return configured
