"""RouteViews-scale churn synthesis for the streaming pipeline.

:func:`repro.bgp.updates.simulate_update_stream` re-propagates the
whole topology for every event — right for the Figure 5/6
characterisation, hopeless for generating the hundreds of thousands of
updates a throughput benchmark needs.  This module trades generality
for rate: it converges each prefix's baseline and a small pool of
link-failure scenarios **once**, then replays failure/recovery flaps
drawn from that pool, so stream length is decoupled from engine work.

The synthesized mix mirrors what public collectors actually see:

* several background prefixes flapping between primary and backup
  routes (operators pad backup announcements more heavily — set
  ``backup_padding`` to reproduce the paper's §VI-A observation and
  force padding *decreases* on every recovery leg, the detector's
  expensive path);
* optionally one ASPP interception attack burst
  (:func:`~repro.detection.streaming.attack_update_stream`) spliced in
  a third of the way through the stream.

Every message carries a dense global sequence stamp, so the stream can
be split across feeds (:func:`repro.detection.pipeline.split_stream`)
and deterministically re-merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.interception import InterceptionResult, simulate_interception
from repro.bgp.collectors import MonitorView, RouteCollector
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.updates import SequencedUpdate, UpdateMessage
from repro.detection.monitors import top_degree_monitors
from repro.detection.streaming import attack_update_stream
from repro.exceptions import SimulationError
from repro.experiments.base import ExperimentWorld, build_world
from repro.utils.rand import derive_rng, make_rng

__all__ = ["ChurnConfig", "SynthesizedStream", "synthesize_churn_stream"]


@dataclass(frozen=True)
class ChurnConfig:
    """Knobs of the churn synthesizer (see EXPERIMENTS.md)."""

    seed: int = 7
    scale: float = 1.0
    #: monitor feed size (top-degree placement, the paper's strategy)
    monitors: int = 150
    #: background prefixes churning alongside the victim's
    prefixes: int = 4
    #: distinct precomputed link-failure scenarios per prefix
    scenarios: int = 5
    #: target stream length (the stream may overshoot by < one flap)
    updates: int = 5000
    #: uniform origin padding on the background prefixes' primary routes
    background_padding: int = 2
    #: padding on backup (failure) routes; None = same as primary, so
    #: background churn never decreases padding and stays alarm-free
    backup_padding: int | None = None
    #: splice one interception attack burst into the stream
    attack: bool = True
    #: the attack victim's origin padding λ
    padding: int = 3


@dataclass
class SynthesizedStream:
    """A sequenced update stream plus everything needed to consume it."""

    config: ChurnConfig
    world: ExperimentWorld
    collector: RouteCollector
    messages: list[SequencedUpdate]
    #: prefix -> baseline view, for priming detectors before replay
    baselines: dict[str, MonitorView]
    victim: int | None = None
    attacker: int | None = None
    attack_result: InterceptionResult | None = field(default=None, repr=False)
    #: sequence stamp of the first attack-burst message (None when the
    #: stream carries no attack) — the closed loop's t=0 for
    #: time-to-detect
    attack_start_seq: int | None = None
    #: sequence stamp one past the last attack-burst message
    attack_end_seq: int | None = None

    @property
    def updates(self) -> int:
        return len(self.messages)

    @property
    def attack_window(self) -> tuple[int, int] | None:
        """``[start, end)`` sequence window of the spliced attack burst."""
        if self.attack_start_seq is None or self.attack_end_seq is None:
            return None
        return (self.attack_start_seq, self.attack_end_seq)

    def plain_messages(self) -> list[UpdateMessage]:
        """The stream without sequence stamps (the serial-oracle input)."""
        return [sequenced.message for sequenced in self.messages]

    def feed_streams(self, feeds: int) -> list[list[SequencedUpdate]]:
        """The stream split round-robin across ``feeds`` feeds (the
        shape :meth:`StreamingPipeline.run` consumes)."""
        from repro.detection.pipeline.ingest import split_stream

        return split_stream(self.messages, feeds)


def _background_prefix(index: int) -> str:
    return f"10.{index // 256}.{index % 256}.0/24"


def _flap_messages(
    prefix: str,
    monitors: tuple[int, ...],
    baseline: MonitorView,
    degraded: MonitorView,
) -> list[UpdateMessage]:
    """One failure/recovery flap: each changed monitor announces the
    degraded route, then re-announces its baseline (both directions of
    the flap land in real update files)."""
    messages: list[UpdateMessage] = []
    for monitor in monitors:
        before = baseline.routes.get(monitor)
        after = degraded.routes.get(monitor)
        if before == after:
            continue
        if after is None:
            messages.append(
                UpdateMessage(monitor=monitor, prefix=prefix, path=(), withdrawn=True)
            )
        else:
            messages.append(
                UpdateMessage(monitor=monitor, prefix=prefix, path=after.path)
            )
        if before is None:
            messages.append(
                UpdateMessage(monitor=monitor, prefix=prefix, path=(), withdrawn=True)
            )
        else:
            messages.append(
                UpdateMessage(monitor=monitor, prefix=prefix, path=before.path)
            )
    return messages


def synthesize_churn_stream(
    config: ChurnConfig,
    *,
    world: ExperimentWorld | None = None,
) -> SynthesizedStream:
    """Synthesize a sequenced update stream per ``config``.

    Deterministic: the same config (and world) always produces the
    identical message list, sequence stamps included.
    """
    if config.updates < 0:
        raise SimulationError("updates must be non-negative")
    if config.prefixes < 1:
        raise SimulationError("the synthesizer needs at least one background prefix")
    if world is None:
        world = build_world(seed=config.seed, scale=config.scale)
    graph = world.graph
    rng = derive_rng(make_rng(config.seed), "churn")
    monitor_count = min(config.monitors, len(graph))
    collector = RouteCollector(graph, top_degree_monitors(graph, monitor_count))
    engine = PropagationEngine(graph)

    attacker: int | None = None
    victim: int | None = None
    attack_result: InterceptionResult | None = None
    attack_burst: list[UpdateMessage] = []
    baselines: dict[str, MonitorView] = {}
    if config.attack:
        # Sample (attacker, victim) pairs until the interception actually
        # changes a monitored route — an attack nobody observes would make
        # the stream's "detected?" question vacuous.  Bounded and seeded,
        # so the chosen pair is a pure function of the config.
        transit = sorted(world.topology.transit_ases)
        all_ases = sorted(graph.ases)
        for _ in range(32):
            attacker = rng.choice(transit)
            victim = rng.choice([a for a in all_ases if a != attacker])
            attack_result = simulate_interception(
                engine,
                victim=victim,
                attacker=attacker,
                origin_padding=config.padding,
            )
            attack_burst = attack_update_stream(attack_result, collector)
            if attack_burst:
                break
        else:
            raise SimulationError(
                "no sampled interception changed any monitored route; "
                "use a larger scale or more monitors"
            )
        baselines[attack_result.baseline.prefix] = collector.snapshot(
            attack_result.baseline
        )

    # Background origins: transit-ish ASes with at least two neighbours,
    # so one failed link leaves routes to flap back to.
    candidates = sorted(
        asn
        for asn in graph.ases
        if len(graph.neighbors_of(asn)) >= 2 and asn not in (attacker, victim)
    )
    if len(candidates) < config.prefixes:
        raise SimulationError(
            f"topology offers {len(candidates)} churn origins, "
            f"config wants {config.prefixes}"
        )
    origins = rng.sample(candidates, config.prefixes)

    backup = (
        config.background_padding
        if config.backup_padding is None
        else config.backup_padding
    )
    #: (prefix, flap message list) pools, one pool entry per scenario
    pools: list[list[list[UpdateMessage]]] = []
    for index, origin in enumerate(origins):
        prefix = _background_prefix(index)
        primary = PrependingPolicy.uniform_origin(origin, config.background_padding)
        baseline = engine.propagate(origin, prefix=prefix, prepending=primary)
        baseline_view = collector.snapshot(baseline)
        baselines[prefix] = baseline_view
        neighbours = sorted(graph.neighbors_of(origin))
        failures = (
            rng.sample(neighbours, config.scenarios)
            if len(neighbours) >= config.scenarios
            else list(neighbours)
        )
        flaps: list[list[UpdateMessage]] = []
        for failed in failures:
            degraded_graph = graph.copy()
            degraded_graph.remove_edge(origin, failed)
            degraded_engine = PropagationEngine(degraded_graph)
            degraded = degraded_engine.propagate(
                origin,
                prefix=prefix,
                prepending=PrependingPolicy.uniform_origin(origin, backup),
            )
            messages = _flap_messages(
                prefix, collector.monitors, baseline_view, collector.snapshot(degraded)
            )
            if messages:
                flaps.append(messages)
        if flaps:
            pools.append(flaps)
    if not pools and config.updates > len(attack_burst):
        raise SimulationError(
            "no failure scenario changed any monitor route; "
            "use a larger scale or fewer monitors"
        )

    target_background = max(0, config.updates - len(attack_burst))
    splice_at = target_background // 3 if config.attack else None
    plain: list[UpdateMessage] = []
    background = 0
    spliced = not config.attack
    attack_start: int | None = None
    attack_end: int | None = None
    while background < target_background and pools:
        if not spliced and splice_at is not None and background >= splice_at:
            attack_start = len(plain)
            plain.extend(attack_burst)
            attack_end = len(plain)
            spliced = True
        pool = pools[rng.randrange(len(pools))]
        flap = pool[rng.randrange(len(pool))]
        plain.extend(flap)
        background += len(flap)
    if not spliced:
        attack_start = len(plain)
        plain.extend(attack_burst)
        attack_end = len(plain)

    messages = [
        SequencedUpdate(seq=seq, message=message)
        for seq, message in enumerate(plain)
    ]
    return SynthesizedStream(
        config=config,
        world=world,
        collector=collector,
        messages=messages,
        baselines=baselines,
        victim=victim,
        attacker=attacker,
        attack_result=attack_result,
        attack_start_seq=attack_start if config.attack else None,
        attack_end_seq=attack_end if config.attack else None,
    )
