"""Building per-monitor routing tables (the RouteViews/RIPE substitute).

The paper's measurement pipeline starts from routing-table snapshots of
every monitor.  We produce the same object synthetically: pick a set of
origin ASes (each announcing one prefix), configure their prepending
behaviour from the :class:`~repro.measurement.padding_model.PaddingBehaviorModel`,
run the propagation engine once per prefix, and record every monitor's
best route.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.collectors import RouteCollector
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import Route
from repro.exceptions import MeasurementError
from repro.measurement.padding_model import PaddingBehaviorModel
from repro.topology.asgraph import ASGraph

__all__ = ["MonitorRIBs", "build_monitor_ribs"]


@dataclass
class MonitorRIBs:
    """Routing tables of all monitors plus bookkeeping about the world.

    ``tables`` maps monitor ASN -> prefix -> best :class:`Route`.
    ``origins`` maps prefix -> origin ASN; ``prepending_origins`` is the
    subset of origins that were configured to prepend.
    """

    tables: dict[int, dict[str, Route]] = field(default_factory=dict)
    origins: dict[str, int] = field(default_factory=dict)
    prepending_origins: frozenset[int] = frozenset()
    prepending: PrependingPolicy = field(default_factory=PrependingPolicy)

    @property
    def prefixes(self) -> list[str]:
        return sorted(self.origins)

    def routes_of(self, monitor: int) -> dict[str, Route]:
        """The routing table of one monitor."""
        return self.tables.get(monitor, {})

    def all_paths(self) -> list[tuple[int, ...]]:
        """Every AS-PATH present in any monitor table (with duplicates).

        This is the input the inference algorithms consume.
        """
        paths: list[tuple[int, ...]] = []
        for table in self.tables.values():
            for route in table.values():
                if route.path:
                    paths.append(route.path)
        return paths


def build_monitor_ribs(
    graph: ASGraph,
    collector: RouteCollector,
    *,
    num_prefixes: int,
    model: PaddingBehaviorModel,
    rng: random.Random,
    origin_pool: list[int] | None = None,
    prefix_template: str = "10.{index}.0.0/16",
    engine: PropagationEngine | None = None,
) -> MonitorRIBs:
    """Simulate ``num_prefixes`` prefix originations and collect tables.

    Origins are drawn without replacement from ``origin_pool`` (default:
    all ASes); each prefix is announced by one origin whose prepending
    behaviour is sampled from ``model``.  A shared intermediary-
    prepending configuration is sampled once for the whole world.
    """
    pool = list(origin_pool) if origin_pool is not None else list(graph.ases)
    if num_prefixes < 1:
        raise MeasurementError("need at least one prefix")
    if num_prefixes > len(pool):
        raise MeasurementError(
            f"cannot originate {num_prefixes} prefixes from {len(pool)} origins"
        )
    engine = engine or PropagationEngine(graph)
    origins = rng.sample(pool, num_prefixes)

    policy = PrependingPolicy()
    prepending_origins: set[int] = set()
    for origin in origins:
        if model.configure_origin(graph, origin, policy, rng):
            prepending_origins.add(origin)
    model.configure_intermediaries(graph, policy, rng)

    ribs = MonitorRIBs(
        tables={monitor: {} for monitor in collector.monitors},
        prepending_origins=frozenset(prepending_origins),
        prepending=policy,
    )
    for index, origin in enumerate(origins):
        prefix = prefix_template.format(index=index)
        ribs.origins[prefix] = origin
        outcome = engine.propagate(origin, prefix=prefix, prepending=policy)
        view = collector.snapshot(outcome)
        for monitor, route in view.routes.items():
            if route is not None:
                ribs.tables[monitor][prefix] = route
    return ribs
