"""Measurement and characterisation of ASPP usage (the paper's §VI-A).

* :mod:`repro.measurement.padding_model` — the empirical prepending
  behaviour model (who pads, towards whom, how many times), calibrated
  to the distribution the paper reports;
* :mod:`repro.measurement.ribs` — builds per-monitor routing tables for
  many prefixes by running the propagation engine (our substitute for
  downloading RouteViews/RIPE table snapshots);
* :mod:`repro.measurement.characterize` — the Figure 5/6 statistics:
  per-monitor fraction of prepended best routes, padding-count
  distribution;
* :mod:`repro.measurement.churn` — RouteViews-scale churn synthesis
  (sequenced attack + background-flap update streams) feeding the
  streaming pipeline's sustained-throughput benchmarks.
"""

from repro.measurement.characterize import (
    padding_count_distribution,
    prepended_fraction_per_monitor,
)
from repro.measurement.churn import (
    ChurnConfig,
    SynthesizedStream,
    synthesize_churn_stream,
)
from repro.measurement.padding_model import PaddingBehaviorModel
from repro.measurement.ribs import MonitorRIBs, build_monitor_ribs

__all__ = [
    "PaddingBehaviorModel",
    "MonitorRIBs",
    "build_monitor_ribs",
    "prepended_fraction_per_monitor",
    "padding_count_distribution",
    "ChurnConfig",
    "SynthesizedStream",
    "synthesize_churn_stream",
]
