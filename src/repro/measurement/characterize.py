"""Characterising ASPP usage (the statistics behind Figures 5 and 6).

* :func:`prepended_fraction_per_monitor` — for each monitor, the
  fraction of prefixes whose best route contains prepending (Figure 5
  plots the CDF of this statistic over monitors, for all monitors and
  Tier-1-only, and for table routes vs. update routes);
* :func:`padding_count_distribution` — the distribution of the number
  of duplicated ASNs over observed routes (Figure 6).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.bgp.aspath import has_prepending, max_prepending_run
from repro.bgp.updates import UpdateMessage
from repro.exceptions import MeasurementError
from repro.measurement.ribs import MonitorRIBs
from repro.utils.cdf import EmpiricalCDF

__all__ = [
    "prepended_fraction_per_monitor",
    "prepended_fraction_cdf",
    "padding_count_distribution",
    "update_paths",
]

Path = tuple[int, ...]


def prepended_fraction_per_monitor(
    ribs: MonitorRIBs, *, monitors: Iterable[int] | None = None
) -> dict[int, float]:
    """Fraction of each monitor's table routes that carry prepending.

    ``monitors`` restricts the computation (e.g. to Tier-1 monitors for
    Figure 5's second series).  Monitors with empty tables are skipped.
    """
    selected = set(monitors) if monitors is not None else None
    fractions: dict[int, float] = {}
    for monitor, table in ribs.tables.items():
        if selected is not None and monitor not in selected:
            continue
        if not table:
            continue
        prepended = sum(1 for route in table.values() if has_prepending(route.path))
        fractions[monitor] = prepended / len(table)
    if not fractions:
        raise MeasurementError("no monitor has any routes to characterise")
    return fractions


def prepended_fraction_cdf(
    ribs: MonitorRIBs, *, monitors: Iterable[int] | None = None
) -> EmpiricalCDF:
    """The Figure-5 CDF over per-monitor prepended fractions."""
    return EmpiricalCDF(prepended_fraction_per_monitor(ribs, monitors=monitors).values())


def update_paths(messages: Iterable[UpdateMessage]) -> list[Path]:
    """AS-PATHs of non-withdrawal update messages."""
    return [message.path for message in messages if not message.withdrawn and message.path]


def padding_count_distribution(paths: Iterable[Path]) -> dict[int, float]:
    """Distribution of the number of duplicated ASNs over prepended routes.

    For each route carrying prepending, the statistic is the longest
    consecutive run of one ASN (the paper's "number of duplicate ASNs");
    the result maps run length -> fraction among prepended routes, which
    is Figure 6's y-axis (log scale).
    """
    counts: Counter = Counter()
    for path in paths:
        run = max_prepending_run(path)
        if run >= 2:
            counts[run] += 1
    total = sum(counts.values())
    if total == 0:
        raise MeasurementError("no prepended routes found in the sample")
    return {run: counts[run] / total for run in sorted(counts)}
