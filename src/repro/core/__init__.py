"""High-level orchestration of the paper's study.

:class:`~repro.core.study.InterceptionStudy` ties the substrates
together behind one object: build (or adopt) a world, characterise its
prepending behaviour, launch interception attacks, detect them from a
monitor fleet, time the detection, and apply mitigations — the full
§IV-§VI pipeline in a handful of calls.
"""

from repro.core.study import AttackCampaign, InterceptionStudy

__all__ = ["InterceptionStudy", "AttackCampaign"]
