"""The one-stop study object (`InterceptionStudy`).

Downstream users rarely want to wire the engine, collectors, detectors
and defences by hand; this façade owns a world plus a monitor fleet and
exposes the paper's workflow directly::

    study = InterceptionStudy.generate(seed=7)
    result = study.run_attack(victim=study.world.content[0],
                              attacker=study.world.tier1[0], padding=3)
    timing = study.detect(result)
    mitigation = study.defend_reactively(result)
    campaign = study.campaign(pairs=50, padding=3)

Every component remains reachable (``study.engine``,
``study.collector`` ...) for users who outgrow the façade.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro.attack.interception import InterceptionResult, simulate_interception
from repro.bgp.collectors import RouteCollector
from repro.bgp.engine import PropagationEngine
from repro.defense.cautious import simulate_cautious_deployment
from repro.defense.reactive import MitigationOutcome, reactive_padding_reduction
from repro.detection.alarms import Confidence
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.monitors import top_degree_monitors
from repro.detection.placement import greedy_cover_monitors
from repro.detection.timing import DetectionTiming, detection_timing
from repro.exceptions import ExperimentError, SimulationError
from repro.measurement.padding_model import PaddingBehaviorModel
from repro.measurement.ribs import MonitorRIBs, build_monitor_ribs
from repro.runner import (
    CampaignPairTask,
    CheckpointJournal,
    FaultPlan,
    RetryPolicy,
    ShardedScheduler,
    SupervisedExecutor,
    TaskFailure,
    WorkerContext,
    WorkerSpec,
    execute_task,
    resolve_workers,
    sample_attack_pairs,
)
from repro.telemetry.metrics import RunMetrics
from repro.topology.generators import (
    GeneratedTopology,
    InternetTopologyConfig,
    generate_internet_topology,
)
from repro.utils.rand import derive_rng, make_rng

__all__ = ["InterceptionStudy", "AttackCampaign"]


@dataclass
class AttackCampaign:
    """Aggregate results of many attack instances."""

    results: list[InterceptionResult] = field(default_factory=list)
    timings: list[DetectionTiming] = field(default_factory=list)
    #: telemetry registry the campaign recorded into, when one was passed
    metrics: RunMetrics | None = None
    #: tasks quarantined by the supervised runner after exhausting their
    #: retry budget — structured failures instead of a crashed campaign
    failures: list[TaskFailure] = field(default_factory=list)

    @property
    def effective(self) -> list[InterceptionResult]:
        """Instances that captured at least one AS."""
        return [r for r in self.results if r.report.newly_polluted]

    @property
    def mean_pollution(self) -> float:
        """Mean after-attack traversal fraction over all instances."""
        if not self.results:
            return 0.0
        return statistics.mean(r.report.after_fraction for r in self.results)

    @property
    def detection_rate(self) -> float:
        """Fraction of effective attacks the monitor fleet detected."""
        relevant = [
            timing
            for result, timing in zip(self.results, self.timings)
            if result.report.newly_polluted
        ]
        if not relevant:
            return 0.0
        return sum(t.detected for t in relevant) / len(relevant)


class InterceptionStudy:
    """A world plus a monitor fleet, ready to run the paper's study."""

    def __init__(
        self,
        world: GeneratedTopology,
        *,
        monitors: int = 150,
        placement: str = "top-degree",
        seed: int = 7,
        engine_mode: str = "full",
        backend: str = "compiled",
    ) -> None:
        """``placement`` is ``"top-degree"`` (the paper's) or
        ``"greedy-cover"`` (the optimised future-work strategy).

        ``engine_mode`` selects the warm-propagation strategy of the
        study's engine: ``"full"`` (the default oracle) or ``"delta"``
        (incremental copy-on-write re-convergence, bit-identical
        results — see :mod:`repro.bgp.delta`).  ``backend`` selects the
        propagation core (``"compiled"``, ``"vectorized"`` for
        Internet-scale worlds, or ``"reference"``); delta mode is a
        compiled-core strategy, so other backends run ``"full"``."""
        self._world = world
        self._seed = seed
        self._engine = PropagationEngine(
            world.graph,
            backend=backend,
            mode=engine_mode if backend == "compiled" else "full",
        )
        count = min(monitors, len(world.graph))
        if placement == "top-degree":
            fleet = top_degree_monitors(world.graph, count)
        elif placement == "greedy-cover":
            fleet = greedy_cover_monitors(world.graph, count)
        else:
            raise SimulationError(
                f"unknown placement {placement!r}; use 'top-degree' or 'greedy-cover'"
            )
        self._monitors = tuple(fleet)
        self._collector = RouteCollector(world.graph, fleet)
        self._detector = ASPPInterceptionDetector(world.graph)

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        *,
        seed: int = 7,
        scale: float = 1.0,
        config: InternetTopologyConfig | None = None,
        monitors: int = 150,
        placement: str = "top-degree",
        engine_mode: str = "full",
        backend: str = "compiled",
    ) -> "InterceptionStudy":
        """Generate a fresh Internet-like world and wrap it in a study."""
        topo_rng = derive_rng(make_rng(seed), "topology")
        cfg = config if config is not None else InternetTopologyConfig().scaled(scale)
        world = generate_internet_topology(cfg, topo_rng)
        return cls(
            world,
            monitors=monitors,
            placement=placement,
            seed=seed,
            engine_mode=engine_mode,
            backend=backend,
        )

    # ------------------------------------------------------------------
    @property
    def world(self) -> GeneratedTopology:
        return self._world

    @property
    def engine(self) -> PropagationEngine:
        return self._engine

    @property
    def collector(self) -> RouteCollector:
        return self._collector

    @property
    def detector(self) -> ASPPInterceptionDetector:
        return self._detector

    # ------------------------------------------------------------------
    def characterize_prepending(
        self, *, num_prefixes: int = 200, model: PaddingBehaviorModel | None = None
    ) -> MonitorRIBs:
        """Build monitor routing tables under the empirical ASPP model."""
        return build_monitor_ribs(
            self._world.graph,
            self._collector,
            num_prefixes=num_prefixes,
            model=model or PaddingBehaviorModel(),
            rng=derive_rng(make_rng(self._seed), "study-ribs"),
            engine=self._engine,
        )

    def run_attack(
        self,
        *,
        victim: int,
        attacker: int,
        padding: int,
        violate_policy: bool = False,
        strip_mode: str = "origin",
    ) -> InterceptionResult:
        """Launch one ASPP interception instance."""
        return simulate_interception(
            self._engine,
            victim=victim,
            attacker=attacker,
            origin_padding=padding,
            violate_policy=violate_policy,
            strip_mode=strip_mode,
        )

    def detect(
        self,
        result: InterceptionResult,
        *,
        min_confidence: Confidence = Confidence.LOW,
        attacker_feeds_collector: bool = True,
        metrics: RunMetrics | None = None,
    ) -> DetectionTiming:
        """Run the Figure-4 detector over the study's monitor fleet."""
        return detection_timing(
            result,
            self._collector,
            self._detector,
            min_confidence=min_confidence,
            attacker_feeds_collector=attacker_feeds_collector,
            metrics=metrics,
        )

    def defend_reactively(
        self, result: InterceptionResult, *, new_padding: int = 1
    ) -> MitigationOutcome:
        """Apply the victim's reactive padding reduction."""
        return reactive_padding_reduction(
            self._engine, result, new_padding=new_padding
        )

    def defend_cautiously(
        self,
        result: InterceptionResult,
        *,
        deployment_fraction: float,
        rng: random.Random | None = None,
    ):
        """Residual pollution under partial cautious-adoption deployment."""
        return simulate_cautious_deployment(
            self._engine,
            victim=result.attack.victim,
            attacker=result.attack.attacker,
            origin_padding=result.origin_padding,
            deployment_fraction=deployment_fraction,
            rng=rng or derive_rng(make_rng(self._seed), "study-deploy"),
        )

    def deployment_sweep(
        self,
        *,
        victim: int,
        attacker: int,
        padding: int,
        policy: str,
        strategy: str = "top-degree-first",
        fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
        violate_policy: bool = True,
        workers: int | None = None,
        metrics: RunMetrics | None = None,
        resume: str | None = None,
        retry: RetryPolicy | None = None,
        store=None,
        shards: int | None = None,
    ):
        """Residual pollution per deployment fraction of a security policy.

        Deploys ``policy`` (``"rov"``, ``"aspa"``, ``"prependguard"``, or
        ``"none"`` for the undefended control) on a ``strategy``-ranked,
        nested deployer set at each fraction and returns the
        :class:`~repro.runner.DeploymentPointResult` list in ``fractions``
        order.  ``resume``/``retry``/``workers`` behave as in
        :meth:`campaign`; the security configuration is part of every
        task fingerprint, so a resumed journal from a different policy
        setup replays nothing.
        """
        from repro.experiments.sweeps import deployment_sweep as run_sweep

        return run_sweep(
            self._engine,
            victim=victim,
            attacker=attacker,
            padding=padding,
            policy=policy,
            strategy=strategy,
            fractions=fractions,
            seed=self._seed,
            violate_policy=violate_policy,
            workers=workers,
            metrics=metrics,
            checkpoint=resume,
            retry=retry,
            store=store,
            shards=shards,
        )

    def exhaustive_grid(
        self,
        *,
        padding: int,
        attacker_pool: list[int] | None = None,
        victim_pool: list[int] | None = None,
        workers: int | None = None,
        metrics: RunMetrics | None = None,
        resume: str | None = None,
        retry: RetryPolicy | None = None,
        store=None,
        shards: int | None = None,
    ):
        """Every attacker × every victim at fixed λ, no sampling.

        The exhaustive counterpart of :meth:`campaign`: instead of a
        seeded draw from the pools, every ``(attacker, victim)`` cell of
        the cross product runs exactly once (attacker outer, victim
        inner, self-pairs skipped), returning
        :class:`~repro.runner.SweepPointResult` rows in grid order.
        Defaults mirror :meth:`campaign`'s pools (transit attackers ×
        all ASes).  Dense grids are what delta mode exists for —
        construct the study with ``engine_mode="delta"`` so each victim
        converges once and every cell pays only its affected cone.
        ``resume`` journals finished cells; a rerun replays them instead
        of re-converging.
        """
        from repro.experiments.sweeps import exhaustive_grid as run_grid

        attackers = (
            attacker_pool if attacker_pool is not None else self._world.transit_ases
        )
        victims = victim_pool if victim_pool is not None else self._world.graph.ases
        return run_grid(
            self._engine,
            attackers=attackers,
            victims=victims,
            origin_padding=padding,
            workers=workers,
            metrics=metrics,
            checkpoint=resume,
            retry=retry,
            store=store,
            shards=shards,
        )

    def campaign(
        self,
        *,
        pairs: int,
        padding: int,
        attacker_pool: list[int] | None = None,
        victim_pool: list[int] | None = None,
        rng: random.Random | None = None,
        workers: int | None = None,
        metrics: RunMetrics | None = None,
        resume: str | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        store=None,
        shards: int | None = None,
    ) -> AttackCampaign:
        """Run many random attack instances and detect each one.

        The attacker/victim pairs are sampled up front (same seeded
        draw sequence as running them one by one, but with bounded
        retries — pools that can only ever collide raise
        :class:`ExperimentError` instead of spinning forever) and then
        executed as independent tasks: serially in-process, or fanned
        out over ``workers`` processes.  The campaign's results are
        bit-identical for every worker count.

        The pooled path runs supervised: a worker that dies mid-batch
        (OOM, segfault) respawns the pool and re-executes only the
        affected instances — every task being a pure function of its
        inputs, recovery is indistinguishable from a fault-free run.
        A task that exhausts its retry budget (``retry``, default 3
        attempts with exponential backoff) lands in
        :attr:`AttackCampaign.failures` as a structured
        :class:`TaskFailure` instead of sinking the campaign.

        ``resume`` names a JSONL checkpoint journal: finished instances
        append to it as they land, and re-running the same campaign
        with the same path replays journaled results instead of
        re-executing them — a killed campaign (crash, Ctrl-C) picks up
        where it stopped.  ``faults`` injects a deterministic
        :class:`FaultPlan` (chaos testing only).

        ``metrics`` optionally records engine, cache, worker and
        detection telemetry into a :class:`RunMetrics` registry.
        Deterministic counters and histograms aggregate to the same
        values for every worker count (timers and the per-worker load
        split in the ``info`` section legitimately differ).

        ``store`` attaches a :class:`~repro.store.CampaignStore`
        (instances already stored by *any* earlier campaign replay
        instead of re-running, and fresh instances stream back in);
        ``shards`` splits the instance list across that many
        work-stealing supervised executors.  Both leave the campaign's
        results bit-identical to the plain path.
        """
        if pairs < 1:
            raise ExperimentError("a campaign needs at least one pair")
        rng = rng or derive_rng(make_rng(self._seed), "study-campaign")
        attackers = attacker_pool if attacker_pool is not None else self._world.transit_ases
        victims = victim_pool if victim_pool is not None else self._world.graph.ases
        sampled = sample_attack_pairs(attackers, victims, pairs, rng)
        tasks = [
            CampaignPairTask(attacker=attacker, victim=victim, padding=padding)
            for attacker, victim in sampled
        ]
        enabled = metrics is not None and metrics.enabled
        spec = WorkerSpec(
            self._world.graph,
            monitors=self._monitors,
            max_activations=self._engine.max_activations,
            metrics_enabled=enabled,
            backend=self._engine.backend,
            engine_mode=self._engine.mode,
            fault_plan=faults,
        )
        if store is None:
            from repro.store import get_active_store

            store = get_active_store()
        shard_count = 1 if shards is None else shards
        journal = CheckpointJournal(resume) if resume is not None else None
        supervise = journal is not None or faults is not None or retry is not None
        try:
            if store is not None or shard_count > 1:
                serial = shard_count == 1 and resolve_workers(workers) == 1
                with ShardedScheduler(
                    spec,
                    shards=shard_count,
                    workers=workers,
                    retry=retry,
                    store=store,
                    journal=journal,
                    metrics=metrics,
                    engine=self._engine if serial else None,
                ) as scheduler:
                    outcomes = scheduler.run(tasks)
            elif resolve_workers(workers) == 1:
                prev_engine_metrics = self._engine.metrics
                try:
                    if supervise:
                        with SupervisedExecutor(
                            spec,
                            workers=1,
                            engine=self._engine,
                            metrics=metrics,
                            retry=retry,
                            journal=journal,
                        ) as executor:
                            outcomes = executor.run(tasks)
                    else:
                        context = WorkerContext(
                            spec, engine=self._engine, metrics=metrics
                        )
                        outcomes = [execute_task(task, context) for task in tasks]
                finally:
                    self._engine.metrics = prev_engine_metrics
            else:
                with SupervisedExecutor(
                    spec,
                    workers=workers,
                    metrics=metrics if enabled else None,
                    retry=retry,
                    journal=journal,
                ) as executor:
                    outcomes = executor.run(tasks)
        finally:
            if journal is not None:
                journal.close()
        campaign = AttackCampaign(metrics=metrics)
        for outcome in outcomes:
            if isinstance(outcome, TaskFailure):
                campaign.failures.append(outcome)
                continue
            result, timing = outcome
            campaign.results.append(result)
            campaign.timings.append(timing)
        return campaign

    def query(
        self,
        experiment_id: str,
        *,
        store,
        metrics: RunMetrics | None = None,
        **overrides,
    ):
        """Serve a registered experiment from a campaign ``store``.

        A previously computed figure (any ``figNN``/``figD*``/``figM*``
        id in :data:`repro.experiments.REGISTRY`) comes straight back
        from the store — zero propagations, bit-identical rows; a
        missing one computes with the store ambiently bound (so its
        individual cells dedupe against every earlier campaign) and is
        stored for next time.  ``overrides`` replace config fields;
        the study's seed is the default.  Returns a
        :class:`repro.store.QueryOutcome`.
        """
        from repro.store import query_experiment

        overrides.setdefault("seed", self._seed)
        return query_experiment(store, experiment_id, metrics=metrics, **overrides)
