"""``repro-aspp`` — command-line driver for the experiment harnesses.

Usage::

    repro-aspp list
    repro-aspp run fig07
    repro-aspp run fig13 --seed 11 --scale 0.5
    repro-aspp all --scale 0.3
    repro-aspp world --seed 7 --save topology.caida
    repro-aspp campaign --pairs 50 --padding 3 --monitors 150

``run`` executes one registered experiment with the default
configuration, optionally overriding any config field that exists on
that experiment's dataclass (``--seed``, ``--scale``, ...).  ``all``
runs every experiment in registry order.  ``world`` generates a
topology, prints its summary and optionally writes it in CAIDA
serial-1 format.  ``campaign`` runs a quick attack/detection campaign
through the :class:`~repro.core.InterceptionStudy` façade.

``run``, ``all`` and ``campaign`` accept ``--metrics
{off,summary,jsonl}`` (default ``off``): ``summary`` prints the run's
telemetry as an aligned table after the results, ``jsonl`` emits the
JSONL event log — to stdout, or to ``--metrics-out PATH`` (which
requires ``--metrics jsonl``).  Metrics never change the results: the
artefact text is bit-identical with metrics on or off.

``detect-stream`` replays a synthesized churn stream through the
streaming detection pipeline and reports sustained throughput;
``mitigate-stream`` runs the full closed loop on top of it — detect,
re-announce per ``--strategy``, delta re-converge — optionally under a
seeded feed-fault plan (``--fault-rate``), and prints the recovery
clocks, the SLO summary table and any structured breach events.

``campaign``, ``grid`` and ``secpol-sweep`` accept ``--engine-mode
{full,delta}`` (default ``full``): ``delta`` re-converges each attack
incrementally from the cached baseline instead of re-flooding the
whole topology — results are bit-identical either way (the delta core
is oracle-tested against the full engine in CI), only the wall-clock
changes.  ``grid`` runs the exhaustive attacker × victim product at a
fixed λ, which is the workload delta mode exists for.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.experiments import REGISTRY
from repro.telemetry.metrics import RunMetrics

__all__ = ["main"]


def _apply_overrides(config, overrides: dict[str, object]):
    """Replace fields of a frozen config dataclass with CLI overrides."""
    fields = {field.name: field for field in dataclasses.fields(config)}
    applicable = {}
    for name, value in overrides.items():
        if value is None or name not in fields:
            continue
        current = getattr(config, name)
        if isinstance(current, int) and not isinstance(current, bool):
            value = int(value)
        elif isinstance(current, float):
            value = float(value)
        applicable[name] = value
    return dataclasses.replace(config, **applicable) if applicable else config


def _run_one(
    experiment_id: str,
    overrides: dict[str, object],
    metrics: RunMetrics | None = None,
) -> int:
    config_factory, runner = REGISTRY[experiment_id]
    config = _apply_overrides(config_factory(), overrides)
    if metrics is not None and "metrics" in inspect.signature(runner).parameters:
        result = runner(config, metrics=metrics)
    else:
        result = runner(config)
    print(result.to_text())
    print()
    return 0


def _add_metrics_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--metrics", choices=("off", "summary", "jsonl"), default="off",
        help="record run telemetry: 'summary' prints a table, 'jsonl' "
        "emits the event log (results are unaffected)",
    )
    subparser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the JSONL event log to PATH (requires --metrics jsonl)",
    )


def _add_engine_mode_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--engine-mode", choices=("full", "delta"), default="full",
        help="warm-propagation strategy: 'delta' re-converges only the "
        "attacker's affected cone from the cached baseline (bit-identical "
        "results, less wall-clock on dense grids)",
    )


def _add_backend_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--backend", choices=("compiled", "vectorized"), default="compiled",
        help="propagation core: 'vectorized' converges cold baselines on "
        "the NumPy CSR batched frontier (bit-identical results; needs "
        "numpy, and warm/policy runs fall back to the compiled core)",
    )


def _add_topology_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--topology", type=str, default=None, metavar="SPEC",
        help="replace the generated world: 'caida:<path>' loads a CAIDA "
        "as-rel2 snapshot (.txt or .bz2), 'synth:<N>' generates an N-AS "
        "power-law topology from --seed (overrides --scale)",
    )


def _resolve_world(args, parser: argparse.ArgumentParser):
    """Build the world named by ``--topology`` (``None`` = generated)."""
    spec = getattr(args, "topology", None)
    if spec is None:
        return None
    kind, _, value = spec.partition(":")
    if kind == "synth" and value:
        from repro.topology.generators import generate_powerlaw_topology

        try:
            num_ases = int(value)
        except ValueError:
            parser.error(f"--topology synth:<N> needs an integer AS count: {spec!r}")
        return generate_powerlaw_topology(num_ases, seed=args.seed)
    if kind != "caida" or not value:
        parser.error(
            f"--topology must be 'caida:<path>' or 'synth:<N>', got {spec!r}"
        )
    from repro.topology.generators import GeneratedTopology
    from repro.topology.serialization import load_asrel2
    from repro.topology.tiers import classify_tiers

    graph = load_asrel2(value)
    tiers = classify_tiers(graph)
    return GeneratedTopology(
        graph,
        tier1=sorted(a for a, t in tiers.items() if t == 1),
        tier2=sorted(a for a, t in tiers.items() if t == 2),
        tier3=sorted(a for a, t in tiers.items() if t == 3),
        tier4=sorted(a for a, t in tiers.items() if t >= 4),
        stubs=sorted(a for a in graph.ases if not graph.customers_of(a)),
    )


def _make_study(args, parser: argparse.ArgumentParser, *, monitors, placement="top-degree"):
    """An :class:`InterceptionStudy` honouring --topology/--backend."""
    from repro.core import InterceptionStudy

    backend = getattr(args, "backend", "compiled")
    world = _resolve_world(args, parser)
    if world is not None:
        return InterceptionStudy(
            world,
            monitors=monitors,
            placement=placement,
            seed=args.seed,
            engine_mode=args.engine_mode,
            backend=backend,
        )
    return InterceptionStudy.generate(
        seed=args.seed,
        scale=args.scale,
        monitors=monitors,
        placement=placement,
        engine_mode=args.engine_mode,
        backend=backend,
    )


def _make_metrics(args, parser: argparse.ArgumentParser) -> RunMetrics | None:
    """Validate the metrics flags and build the registry (or ``None``)."""
    mode = getattr(args, "metrics", "off")
    out = getattr(args, "metrics_out", None)
    if out is not None and mode != "jsonl":
        parser.error("--metrics-out requires --metrics jsonl")
    return RunMetrics() if mode != "off" else None


def _emit_metrics(args, metrics: RunMetrics | None) -> None:
    if metrics is None:
        return
    if args.metrics == "summary":
        print(metrics.summary_table())
        return
    from repro.telemetry.report import to_jsonl, write_jsonl

    if args.metrics_out:
        write_jsonl(metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    else:
        print(to_jsonl(metrics))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-aspp",
        description=(
            "Reproduction harness for 'Studying Impacts of Prefix "
            "Interception Attack by Exploring BGP AS-PATH Prepending' "
            "(ICDCS 2012)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(REGISTRY))
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument("--scale", type=float, default=None)
    run_parser.add_argument("--pairs", type=int, default=None)
    run_parser.add_argument("--instances", type=int, default=None)
    run_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for experiments with parallel sweeps "
        "(results are identical for any worker count)",
    )
    _add_metrics_flags(run_parser)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--seed", type=int, default=None)
    all_parser.add_argument("--scale", type=float, default=None)
    all_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for experiments with parallel sweeps",
    )
    _add_metrics_flags(all_parser)

    world_parser = subparsers.add_parser(
        "world", help="generate a topology and print its summary"
    )
    world_parser.add_argument("--seed", type=int, default=7)
    world_parser.add_argument("--scale", type=float, default=1.0)
    world_parser.add_argument(
        "--save", type=str, default=None, metavar="PATH",
        help="also write the topology in CAIDA serial-1 format",
    )

    campaign_parser = subparsers.add_parser(
        "campaign", help="run a quick attack/detection campaign"
    )
    campaign_parser.add_argument("--seed", type=int, default=7)
    campaign_parser.add_argument("--scale", type=float, default=1.0)
    campaign_parser.add_argument("--pairs", type=int, default=50)
    campaign_parser.add_argument("--padding", type=int, default=3)
    campaign_parser.add_argument("--monitors", type=int, default=150)
    campaign_parser.add_argument(
        "--placement", choices=("top-degree", "greedy-cover"), default="top-degree"
    )
    campaign_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the campaign's attack instances",
    )
    campaign_parser.add_argument(
        "--resume", type=str, default=None, metavar="PATH",
        help="checkpoint journal: finished instances append to PATH as "
        "they land, and re-running with the same PATH skips them — a "
        "killed campaign resumes instead of restarting",
    )
    campaign_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per instance before it is quarantined as a "
        "structured failure (default 3)",
    )
    campaign_parser.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="per-instance deadline in pool mode: a hung worker is "
        "killed, the pool respawned, and the instance retried",
    )
    _add_engine_mode_flag(campaign_parser)
    _add_backend_flag(campaign_parser)
    _add_topology_flag(campaign_parser)
    _add_store_flags(campaign_parser)
    _add_metrics_flags(campaign_parser)

    grid_parser = subparsers.add_parser(
        "grid",
        help="run the exhaustive attacker × victim interception grid "
        "at a fixed λ",
    )
    grid_parser.add_argument("--seed", type=int, default=7)
    grid_parser.add_argument("--scale", type=float, default=1.0)
    grid_parser.add_argument("--padding", type=int, default=3)
    grid_parser.add_argument(
        "--attackers", type=int, default=None, metavar="N",
        help="limit the attacker pool to the N largest transit ASes by "
        "customer cone (default: every transit AS)",
    )
    grid_parser.add_argument(
        "--victims", type=int, default=None, metavar="N",
        help="limit the victim pool to the N largest ASes by customer "
        "cone (default: every AS)",
    )
    grid_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the grid cells",
    )
    grid_parser.add_argument(
        "--resume", type=str, default=None, metavar="PATH",
        help="checkpoint journal: finished cells append to PATH and a "
        "rerun with the same PATH replays them instead of re-converging",
    )
    grid_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per cell before the grid fails (default 3)",
    )
    grid_parser.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="per-cell deadline in pool mode",
    )
    _add_engine_mode_flag(grid_parser)
    _add_backend_flag(grid_parser)
    _add_topology_flag(grid_parser)
    _add_store_flags(grid_parser)
    _add_metrics_flags(grid_parser)

    secpol_parser = subparsers.add_parser(
        "secpol-sweep",
        help="sweep a security policy's deployment fraction against one "
        "interception instance",
    )
    secpol_parser.add_argument(
        "--policy", choices=("none", "rov", "aspa", "prependguard"),
        default="prependguard",
        help="security policy to deploy ('none' = undefended control)",
    )
    secpol_parser.add_argument(
        "--strategy",
        choices=("random", "top-degree-first", "tier1-only", "victim-cone"),
        default="top-degree-first",
        help="which ASes adopt the policy first",
    )
    secpol_parser.add_argument(
        "--fractions", type=str, default="0.0,0.1,0.2,0.4,0.6,0.8,1.0",
        metavar="F1,F2,...",
        help="comma-separated deployment fractions in [0, 1]",
    )
    secpol_parser.add_argument("--seed", type=int, default=7)
    secpol_parser.add_argument("--scale", type=float, default=1.0)
    secpol_parser.add_argument("--padding", type=int, default=3)
    secpol_parser.add_argument(
        "--victim", type=int, default=None,
        help="victim ASN (default: the top Tier-1 by customer cone)",
    )
    secpol_parser.add_argument(
        "--attacker", type=int, default=None,
        help="attacker ASN (default: the top Tier-2 transit AS)",
    )
    secpol_parser.add_argument(
        "--valley-free", action="store_true",
        help="restrict the attacker to valley-free exports (default is "
        "the paper's leaking attacker, which path checks can see)",
    )
    secpol_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the deployment points",
    )
    secpol_parser.add_argument(
        "--resume", type=str, default=None, metavar="PATH",
        help="checkpoint journal for crash/resume; the policy, strategy, "
        "fraction and seed are part of every task fingerprint, so a "
        "journal from a different setup replays nothing",
    )
    secpol_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per point before the sweep fails (default 3)",
    )
    secpol_parser.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="per-point deadline in pool mode",
    )
    _add_engine_mode_flag(secpol_parser)
    _add_backend_flag(secpol_parser)
    _add_topology_flag(secpol_parser)
    _add_store_flags(secpol_parser)
    _add_metrics_flags(secpol_parser)

    stream_parser = subparsers.add_parser(
        "detect-stream",
        help="run the streaming detection pipeline over a synthesized "
        "churn stream and report sustained throughput",
    )
    stream_parser.add_argument("--seed", type=int, default=7)
    stream_parser.add_argument("--scale", type=float, default=0.5)
    stream_parser.add_argument(
        "--monitors", type=int, default=100,
        help="top-degree monitor feeds the collector aggregates",
    )
    stream_parser.add_argument(
        "--updates", type=int, default=20000,
        help="target churn-stream length (attack burst included)",
    )
    stream_parser.add_argument(
        "--prefixes", type=int, default=4,
        help="background prefixes flapping alongside the victim's",
    )
    stream_parser.add_argument(
        "--feeds", type=int, default=4,
        help="collector feeds the stream is split across",
    )
    stream_parser.add_argument(
        "--batch", type=int, default=64,
        help="updates handed to the detector per consume_batch call",
    )
    stream_parser.add_argument(
        "--backpressure", choices=("block", "drop", "park"), default="block",
        help="bounded-queue overflow policy",
    )
    stream_parser.add_argument(
        "--capacity", type=int, default=256,
        help="per-feed queue capacity",
    )
    stream_parser.add_argument("--padding", type=int, default=3,
        help="the attack victim's origin padding λ")
    stream_parser.add_argument(
        "--no-attack", action="store_true",
        help="background churn only (no interception burst)",
    )
    _add_metrics_flags(stream_parser)

    mitigate_parser = subparsers.add_parser(
        "mitigate-stream",
        help="run the closed detect → mitigate → re-converge loop over a "
        "synthesized churn stream, optionally under injected feed faults",
    )
    mitigate_parser.add_argument("--seed", type=int, default=7)
    mitigate_parser.add_argument("--scale", type=float, default=0.5)
    mitigate_parser.add_argument(
        "--monitors", type=int, default=100,
        help="top-degree monitor feeds the collector aggregates",
    )
    mitigate_parser.add_argument(
        "--updates", type=int, default=8000,
        help="target churn-stream length (attack burst included)",
    )
    mitigate_parser.add_argument(
        "--prefixes", type=int, default=4,
        help="background prefixes flapping alongside the victim's",
    )
    mitigate_parser.add_argument("--padding", type=int, default=3,
        help="the attack victim's origin padding λ")
    mitigate_parser.add_argument(
        "--strategy", choices=("none", "stepdown", "reset"), default="stepdown",
        help="victim countermeasure once the attack is detected: 'stepdown' "
        "lowers λ gradually, 'reset' jumps to the floor, 'none' is the "
        "no-reaction control arm",
    )
    mitigate_parser.add_argument(
        "--step", type=int, default=1,
        help="λ decrement per stepdown reaction",
    )
    mitigate_parser.add_argument(
        "--floor", type=int, default=1,
        help="the λ the victim will not go below (1 = no prepending left)",
    )
    mitigate_parser.add_argument(
        "--reaction", type=int, default=64, metavar="UPDATES",
        help="modelled operator/automation latency between first alarm "
        "and re-announce (time-to-mitigate)",
    )
    mitigate_parser.add_argument(
        "--feeds", type=int, default=4,
        help="collector feeds the stream is split across",
    )
    mitigate_parser.add_argument(
        "--batch", type=int, default=64,
        help="updates handed to the detector per consume_batch call",
    )
    mitigate_parser.add_argument(
        "--backpressure", choices=("block", "drop", "park"), default="block",
        help="bounded-queue overflow policy",
    )
    mitigate_parser.add_argument(
        "--capacity", type=int, default=256,
        help="per-feed queue capacity",
    )
    mitigate_parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="inject a seeded feed-fault plan: each feed draws faults "
        "(outages, duplicate bursts, corruption, gap storms) with this "
        "probability (0 = fault-free)",
    )
    mitigate_parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault plan (default: --seed)",
    )
    mitigate_parser.add_argument(
        "--unrecoverable", action="store_true",
        help="make injected faults unrecoverable: outage updates are lost "
        "instead of replayed on reconnect (graceful-degradation mode)",
    )
    mitigate_parser.add_argument(
        "--slo-alarm-latency", type=float, default=2000.0, metavar="UPDATES",
        help="alarm-latency SLO threshold (p99, post-merge updates)",
    )
    mitigate_parser.add_argument(
        "--slo-feed-staleness", type=float, default=512.0, metavar="UPDATES",
        help="feed-staleness SLO threshold (p99 replay-buffer depth)",
    )
    mitigate_parser.add_argument(
        "--slo-recovery-rounds", type=float, default=12.0, metavar="ROUNDS",
        help="recovery-deadline SLO threshold (max delta rounds)",
    )
    _add_metrics_flags(mitigate_parser)

    query_parser = subparsers.add_parser(
        "query",
        help="serve an experiment from a campaign store, computing only "
        "what is missing",
    )
    query_parser.add_argument("experiment", choices=sorted(REGISTRY))
    query_parser.add_argument(
        "--store", type=str, required=True, metavar="DIR",
        help="campaign store directory (created if missing); a repeated "
        "query is a pure store hit — zero propagations",
    )
    query_parser.add_argument("--seed", type=int, default=None)
    query_parser.add_argument("--scale", type=float, default=None)
    query_parser.add_argument("--pairs", type=int, default=None)
    query_parser.add_argument("--instances", type=int, default=None)
    query_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes if the experiment has to compute (never "
        "part of the content address: any layout serves any query)",
    )
    _add_metrics_flags(query_parser)

    store_parser = subparsers.add_parser(
        "store", help="inspect and maintain a campaign store"
    )
    store_parser.add_argument(
        "--store", type=str, required=True, metavar="DIR",
        help="campaign store directory",
    )
    store_parser.add_argument(
        "--compact", action="store_true",
        help="rewrite the record log to one record per fingerprint "
        "(drops duplicate/corrupt lines); run without concurrent writers",
    )
    store_parser.add_argument(
        "--import-journal", type=str, action="append", default=[],
        metavar="PATH", dest="import_journals",
        help="lift a legacy --resume checkpoint journal's results into "
        "the store (repeatable); the journal is left untouched",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in REGISTRY:
            print(experiment_id)
        return 0
    if args.command == "world":
        return _world(args)
    if args.command == "campaign":
        return _campaign(args, parser, _make_metrics(args, parser))
    if args.command == "grid":
        return _grid(args, parser, _make_metrics(args, parser))
    if args.command == "secpol-sweep":
        return _secpol_sweep(args, parser, _make_metrics(args, parser))
    if args.command == "detect-stream":
        return _detect_stream(args, parser, _make_metrics(args, parser))
    if args.command == "mitigate-stream":
        return _mitigate_stream(args, parser, _make_metrics(args, parser))
    if args.command == "query":
        return _query(args, parser, _make_metrics(args, parser))
    if args.command == "store":
        return _store_admin(args, parser)
    overrides = {
        name: getattr(args, name, None)
        for name in ("seed", "scale", "pairs", "instances", "workers")
    }
    metrics = _make_metrics(args, parser)
    if args.command == "run":
        status = _run_one(args.experiment, overrides, metrics)
        _emit_metrics(args, metrics)
        return status
    # ``all`` records every experiment into one registry and emits the
    # merged telemetry once at the end.
    status = 0
    for experiment_id in REGISTRY:
        status |= _run_one(experiment_id, overrides, metrics)
    _emit_metrics(args, metrics)
    return status


def _world(args) -> int:
    from repro.experiments.base import build_world
    from repro.topology.serialization import save_caida
    from repro.topology.stats import summarize
    from repro.utils.tables import format_table

    world = build_world(seed=args.seed, scale=args.scale)
    print(
        format_table(
            ("property", "value"),
            summarize(world.graph).as_rows(),
            title=f"Generated topology (seed={args.seed}, scale={args.scale})",
        )
    )
    if args.save:
        save_caida(
            world.graph,
            args.save,
            header=f"generated by repro-aspp world --seed {args.seed} --scale {args.scale}",
        )
        print(f"\nwritten to {args.save}")
    return 0


def _add_store_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="content-addressed campaign store: cells already computed "
        "by any earlier run replay from the store, fresh cells stream "
        "back in (results are unaffected)",
    )
    subparser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the task space across N work-stealing supervised "
        "executors (--workers is the pool size per shard); results are "
        "identical at any shard count",
    )


def _open_store(args, metrics: RunMetrics | None = None):
    """Build the CampaignStore named by --store, or None."""
    if getattr(args, "store", None) is None:
        return None
    from repro.store import CampaignStore

    return CampaignStore(args.store, metrics=metrics)


def _query(args, parser, metrics: RunMetrics | None = None) -> int:
    from repro.store import CampaignStore, query_experiment

    store = CampaignStore(args.store, metrics=metrics)
    try:
        overrides = {
            name: getattr(args, name, None)
            for name in ("seed", "scale", "pairs", "instances", "workers")
        }
        outcome = query_experiment(
            store, args.experiment, metrics=metrics, **overrides
        )
        print(outcome.result.to_text())
        print()
        if outcome.from_store:
            print(
                f"served from store (fingerprint {outcome.fingerprint[:16]}…, "
                "zero propagations)"
            )
        else:
            print(
                f"computed and stored (fingerprint {outcome.fingerprint[:16]}…); "
                "an identical query is now a pure store hit"
            )
        stats = store.stats()
        print(
            f"store: {stats['records']} records, {stats['bytes']} bytes "
            f"({stats['path']})"
        )
    finally:
        store.close()
    _emit_metrics(args, metrics)
    return 0


def _store_admin(args, parser) -> int:
    from repro.store import CampaignStore, import_journal

    with CampaignStore(args.store) as store:
        for journal_path in args.import_journals:
            if not Path(journal_path).exists():
                parser.error(f"--import-journal: no journal at {journal_path}")
            imported = import_journal(journal_path, store)
            print(f"imported {imported} new records from {journal_path}")
        if args.compact:
            reclaimed = store.compact()
            print(f"compacted: reclaimed {reclaimed} bytes")
        stats = store.stats()
        print(f"store: {stats['path']}")
        print(f"  records:             {stats['records']}")
        print(f"  bytes:               {stats['bytes']}")
        for kind, count in stats["kinds"].items():
            print(f"  {kind + ':':<20} {count}")
    return 0


def _retry_policy(args):
    """Build the optional RetryPolicy from --retries/--task-deadline."""
    from repro.runner import RetryPolicy

    if args.retries is None and args.task_deadline is None:
        return None
    policy_overrides = {}
    if args.retries is not None:
        policy_overrides["max_attempts"] = args.retries
    if args.task_deadline is not None:
        policy_overrides["deadline"] = args.task_deadline
    return RetryPolicy(**policy_overrides)


def _secpol_sweep(args, parser, metrics: RunMetrics | None = None) -> int:
    from repro.topology.tiers import classify_tiers, customer_cone
    from repro.utils.tables import format_table

    try:
        fractions = tuple(
            float(token) for token in args.fractions.split(",") if token.strip()
        )
    except ValueError:
        parser.error(f"--fractions must be comma-separated floats: {args.fractions!r}")
    if not fractions:
        parser.error("--fractions must name at least one fraction")
    study = _make_study(args, parser, monitors=1)
    graph = study.world.graph
    victim, attacker = args.victim, args.attacker
    if victim is None:
        victim = min(
            study.world.tier1, key=lambda t: (-len(customer_cone(graph, t)), t)
        )
    if attacker is None:
        tiers = classify_tiers(graph)
        tier2 = [
            asn
            for asn in graph.ases
            if tiers.get(asn) == 2 and asn != victim and graph.customers_of(asn)
        ]
        if not tier2:
            parser.error("no Tier-2 transit AS available; pass --attacker")
        attacker = min(tier2, key=lambda t: (-len(customer_cone(graph, t)), t))
    store = _open_store(args, metrics)
    try:
        results = study.deployment_sweep(
            victim=victim,
            attacker=attacker,
            padding=args.padding,
            policy=args.policy,
            strategy=args.strategy,
            fractions=fractions,
            violate_policy=not args.valley_free,
            workers=args.workers,
            metrics=metrics,
            resume=args.resume,
            retry=_retry_policy(args),
            store=store,
            shards=args.shards,
        )
    finally:
        if store is not None:
            store.close()
    print(
        format_table(
            ("deployed_frac", "deployed_ases", "before_%", "after_%"),
            [
                (
                    result.fraction,
                    result.deployed_count,
                    round(result.row()[1], 1),
                    round(result.row()[2], 1),
                )
                for result in results
            ],
            title=(
                f"secpol-sweep: {args.policy}/{args.strategy} — "
                f"AS{attacker} intercepts AS{victim} (λ={args.padding})"
            ),
        )
    )
    _emit_metrics(args, metrics)
    return 0


def _grid(args, parser, metrics: RunMetrics | None = None) -> int:
    from repro.topology.tiers import customer_cone

    study = _make_study(args, parser, monitors=1)
    graph = study.world.graph

    def top_by_cone(pool, limit):
        if limit is None or limit >= len(pool):
            return list(pool)
        return sorted(pool, key=lambda t: (-len(customer_cone(graph, t)), t))[:limit]

    attackers = top_by_cone(study.world.transit_ases, args.attackers)
    victims = top_by_cone(graph.ases, args.victims)
    store = _open_store(args, metrics)
    try:
        results = study.exhaustive_grid(
            padding=args.padding,
            attacker_pool=attackers,
            victim_pool=victims,
            workers=args.workers,
            metrics=metrics,
            resume=args.resume,
            retry=_retry_policy(args),
            store=store,
            shards=args.shards,
        )
    finally:
        if store is not None:
            store.close()
    effective = [r for r in results if r.after_fraction > r.before_fraction]
    mean_after = sum(r.after_fraction for r in results) / len(results)
    print(
        f"grid: {len(attackers)} attackers x {len(victims)} victims, "
        f"λ={args.padding}, engine-mode={args.engine_mode}"
    )
    print(f"  cells:               {len(results)}")
    print(f"  effective attacks:   {len(effective)}/{len(results)}")
    print(f"  mean pollution:      {mean_after:.1%}")
    _emit_metrics(args, metrics)
    return 0


def _detect_stream(args, parser, metrics: RunMetrics | None = None) -> int:
    import time

    from repro.detection.detector import ASPPInterceptionDetector
    from repro.detection.pipeline import (
        PipelineDetector,
        StreamingPipeline,
        split_stream,
    )
    from repro.measurement.churn import ChurnConfig, synthesize_churn_stream

    config = ChurnConfig(
        seed=args.seed,
        scale=args.scale,
        monitors=args.monitors,
        prefixes=args.prefixes,
        updates=args.updates,
        attack=not args.no_attack,
        padding=args.padding,
    )
    stream = synthesize_churn_stream(config)
    graph = stream.world.graph
    # The p50/p99 summary needs the per-update latency histogram, so the
    # pipeline is always instrumented here; --metrics controls only
    # whether the full registry is emitted afterwards.
    registry = metrics if metrics is not None else RunMetrics()
    detector = PipelineDetector(
        ASPPInterceptionDetector(graph), graph, metrics=registry
    )
    pipeline = StreamingPipeline(
        detector,
        feeds=args.feeds,
        batch=args.batch,
        capacity=args.capacity,
        policy=args.backpressure,
        metrics=registry,
    )
    for view in stream.baselines.values():
        pipeline.prime(view)
    streams = split_stream(stream.messages, args.feeds)
    start = time.perf_counter()
    alarms = pipeline.run(streams)
    elapsed = time.perf_counter() - start
    throughput = pipeline.processed / elapsed if elapsed > 0 else float("inf")

    latency = registry.histograms.get("detection.pipeline.update_latency_us")
    print(
        f"detect-stream: {stream.updates} updates, {args.feeds} feeds, "
        f"batch={args.batch}, backpressure={args.backpressure}, "
        f"{len(stream.collector.monitors)} monitors"
    )
    print(f"  throughput:          {throughput:,.0f} updates/sec")
    if latency is not None and latency.count:
        print(f"  latency p50:         {latency.quantile(0.5):.1f} us")
        print(f"  latency p99:         {latency.quantile(0.99):.1f} us")
    print(
        f"  backpressure:        blocked={pipeline.blocked} "
        f"dropped={pipeline.dropped} parked={pipeline.parked}"
    )
    print(f"  alarms:              {len(alarms)}")
    if not args.no_attack:
        victim_prefix = stream.attack_result.baseline.prefix
        detected = any(a.prefix == victim_prefix for a in alarms)
        verdict = "DETECTED" if detected else "missed"
        print(
            f"  attack:              AS{stream.attacker} intercepting "
            f"AS{stream.victim} ({victim_prefix}) — {verdict}"
        )
    _emit_metrics(args, metrics)
    return 0


def _mitigate_stream(args, parser, metrics: RunMetrics | None = None) -> int:
    import json

    from repro.detection.pipeline.faults import FeedFaultPlan
    from repro.measurement.churn import ChurnConfig, synthesize_churn_stream
    from repro.mitigation.controller import MitigationPolicy, run_closed_loop
    from repro.telemetry.slo import SLORegistry, default_pipeline_slos

    if not 0.0 <= args.fault_rate <= 1.0:
        parser.error(f"--fault-rate must be in [0, 1], got {args.fault_rate}")
    config = ChurnConfig(
        seed=args.seed,
        scale=args.scale,
        monitors=args.monitors,
        prefixes=args.prefixes,
        updates=args.updates,
        attack=True,
        padding=args.padding,
    )
    stream = synthesize_churn_stream(config)
    plan = None
    if args.fault_rate > 0.0:
        plan = FeedFaultPlan.seeded(
            args.feeds,
            seed=args.fault_seed if args.fault_seed is not None else args.seed,
            rate=args.fault_rate,
            recoverable=not args.unrecoverable,
        )
    slos = SLORegistry(
        default_pipeline_slos(
            alarm_latency_updates=args.slo_alarm_latency,
            feed_staleness_updates=args.slo_feed_staleness,
            recovery_rounds=args.slo_recovery_rounds,
        ),
        metrics=metrics,
    )
    policy = MitigationPolicy(
        strategy=args.strategy,
        step=args.step,
        floor=args.floor,
        reaction_updates=args.reaction,
    )
    report = run_closed_loop(
        stream,
        policy=policy,
        feeds=args.feeds,
        backpressure=args.backpressure,
        batch=args.batch,
        capacity=args.capacity,
        fault_plan=plan,
        metrics=metrics,
        slos=slos,
    )
    step = report.step
    print(
        f"mitigate-stream: AS{step.attacker} intercepting AS{step.victim} "
        f"({step.prefix}), λ={step.padding_before}, strategy={step.strategy}, "
        f"{args.feeds} feeds"
        + (f", fault-rate={args.fault_rate}" if plan is not None else "")
    )
    if step.detected:
        print(
            f"  detected:            yes "
            f"(first alarm {step.time_to_detect} updates after attack start)"
        )
    else:
        print("  detected:            NO — the loop never reacted")
    print(f"  time_to_mitigate:    {step.time_to_mitigate} updates (modelled)")
    print(
        f"  time_to_recover:     {step.time_to_recover} rounds "
        f"({step.touched_ases} ASes touched)"
    )
    print(f"  padding:             {step.padding_before} -> {step.padding_after}")
    print(
        f"  pollution:           organic {step.pollution_baseline:.1%} -> "
        f"attack {step.pollution_attack:.1%} -> "
        f"residual {step.pollution_residual:.1%}"
    )
    print(f"  recovered:           {'yes' if step.recovered else 'no'}")
    print(
        f"  alarms:              {step.alarms} attack, "
        f"{step.self_alarms} self (suppressed)"
    )
    print(
        f"  pipeline:            processed={report.processed} "
        f"duplicates={report.duplicates} dead_lettered={report.dead_lettered} "
        f"lost={report.lost} coverage={report.coverage:.0%}"
    )
    print()
    print(slos.summary_table())
    for event in report.breaches:
        print(json.dumps(event, sort_keys=True))
    _emit_metrics(args, metrics)
    return 0


def _campaign(args, parser, metrics: RunMetrics | None = None) -> int:
    retry = _retry_policy(args)
    study = _make_study(
        args, parser, monitors=args.monitors, placement=args.placement
    )
    store = _open_store(args, metrics)
    try:
        campaign = study.campaign(
            pairs=args.pairs,
            padding=args.padding,
            workers=args.workers,
            metrics=metrics,
            resume=args.resume,
            retry=retry,
            store=store,
            shards=args.shards,
        )
    finally:
        if store is not None:
            store.close()
    effective = campaign.effective
    print(
        f"campaign: {args.pairs} random attacks, λ={args.padding}, "
        f"{len(study.collector.monitors)} monitors ({args.placement})"
    )
    print(f"  effective attacks:   {len(effective)}/{args.pairs}")
    print(f"  mean pollution:      {campaign.mean_pollution:.1%}")
    print(f"  detection rate:      {campaign.detection_rate:.1%}")
    if campaign.failures:
        print(f"  quarantined:         {len(campaign.failures)}/{args.pairs}")
    _emit_metrics(args, metrics)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
