"""Security-policy deployment layer (ROV, ASPA-like, PrependGuard).

The paper's thesis is that ASPP-based interception forges neither the
origin nor any AS link — which is precisely what makes origin
validation blind to it.  This package lets the simulation *show* that:
:mod:`repro.secpol.policies` implements the receiver-side policies
(each evaluable in tuple space for the reference engine and in interned
pid space for the compiled core), and :mod:`repro.secpol.deployment`
assigns a policy to a swept fraction of ASes under named deployment
strategies.  The resulting :class:`SecurityDeployment` plugs into
``PropagationEngine.propagate(..., secpol=)`` on either backend, and
the ``deployment_sweep`` experiment family (fig-D1/fig-D2) quantifies
residual pollution per policy × strategy × fraction.
"""

from repro.secpol.deployment import (
    POLICIES,
    STRATEGIES,
    SecurityDeployment,
    build_deployment,
    deployment_ranking,
    make_policy,
    select_deployers,
)
from repro.secpol.policies import (
    AspaPolicy,
    PrependGuardPolicy,
    RovPolicy,
    SecurityPolicy,
    padding_registry,
)

__all__ = [
    "POLICIES",
    "STRATEGIES",
    "AspaPolicy",
    "PrependGuardPolicy",
    "RovPolicy",
    "SecurityDeployment",
    "SecurityPolicy",
    "build_deployment",
    "deployment_ranking",
    "make_policy",
    "padding_registry",
    "select_deployers",
]
