"""Receiver-side BGP security policies and their compiled checkers.

Three policies, spanning the spectrum the paper's threat model implies:

* :class:`RovPolicy` — RPKI origin validation.  Accepts any route whose
  origin AS is the legitimate prefix holder.  ASPP interception never
  forges the origin (the attacker *strips padding* from a route that
  genuinely ends at the victim), so ROV is the **negative control**: a
  network fully deployed with ROV is exactly as polluted as an
  undefended one.  The deployment-sweep experiments assert this as an
  equality, not a tendency.

* :class:`AspaPolicy` — ASPA-style path-plausibility verification.  The
  receiver walks the (collapsed) AS-level path from the origin outward
  and checks every hop against the provider/customer/peer/sibling
  relationships it knows, enforcing the valley-free shape: once a route
  has travelled down (provider→customer) or across a peering link, it
  may never travel up again.  The canonical ASPP interception announces
  the attacker's *real, valley-free* route with padding stripped, so
  ASPA is blind to it too — but it catches the policy-violating
  attacker variant (the paper's Figures 11-12), whose leaked routes
  embed a valley at or downstream of the leak.

* :class:`PrependGuardPolicy` — the paper-specific padding-consistency
  filter.  A deployer remembers, per first-hop neighbour of the
  protected origin, the origin padding observed in the honest baseline
  (:func:`padding_registry`), and rejects any offer whose padding for a
  known first hop *shrank* — precisely the attacker's transformation.
  The conventions (first-hop extraction, unknown-first-hop acceptance)
  mirror :class:`repro.defense.cautious.CautiousPaddingGuard` so the
  two defence layers agree on semantics.

Every policy exposes two equivalent evaluation surfaces:

* ``check(receiver, sender, path)`` — tuple-space, used by the
  reference engine's decision scan;
* ``compiled_checker(table)`` — a ``(receiver_idx, sender_idx,
  path_id) -> bool`` closure over a
  :class:`~repro.bgp.compiled.InternTable`, used by the compiled
  engine.  Verdicts are memoised per interned path id by walking the
  run-length chain directly, so a path is judged once per table no
  matter how many receivers evaluate it, and no tuple is ever
  materialised.

The compiled-vs-reference differential suite pins the two surfaces
bit-identical for every policy.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.bgp.aspath import split_origin_padding
from repro.bgp.compiled import InternTable
from repro.bgp.policy import ImportPolicy
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

__all__ = [
    "SecurityPolicy",
    "RovPolicy",
    "AspaPolicy",
    "PrependGuardPolicy",
    "padding_registry",
]

#: pid-space admission test: (receiver index, sender index, intern id).
CompiledChecker = Callable[[int, int, int], bool]

#: phase codes for the ASPA valley-free walk.
_UP = 0
_DOWN = 1

_UNSET = object()


class SecurityPolicy(ImportPolicy):
    """Base class: one security policy, evaluable in both path spaces.

    Subclasses implement :meth:`check` (tuple space) and
    :meth:`_build_compiled_checker` (pid space); the base memoises the
    compiled closure per intern table, so an engine asking for the
    checker on every propagation keeps hitting the same memo dicts.
    """

    name = "abstract"

    def __init__(self) -> None:
        self._checker_cache: tuple[InternTable, CompiledChecker] | None = None

    def check(self, receiver: int, sender: int, path: tuple[int, ...]) -> bool:
        raise NotImplementedError

    def compiled_checker(self, table: InternTable) -> CompiledChecker:
        cached = self._checker_cache
        if cached is not None and cached[0] is table:
            return cached[1]
        checker = self._build_compiled_checker(table)
        self._checker_cache = (table, checker)
        return checker

    def _build_compiled_checker(self, table: InternTable) -> CompiledChecker:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class RovPolicy(SecurityPolicy):
    """Origin validation: accept iff the path originates at the holder.

    The single-prefix simulation has exactly one legitimate origin, so
    a ROA for it reduces to an origin-ASN equality test.
    """

    name = "rov"

    def __init__(self, origin: int) -> None:
        super().__init__()
        self.origin = origin

    def check(self, receiver: int, sender: int, path: tuple[int, ...]) -> bool:
        return bool(path) and path[-1] == self.origin

    def _build_compiled_checker(self, table: InternTable) -> CompiledChecker:
        parent = table.parent
        head = table.head
        origin_idx = table.index_of(self.origin)
        memo: dict[int, bool] = {0: False}

        def check(recv: int, snd: int, pid: int) -> bool:
            verdict = memo.get(pid)
            if verdict is None:
                node = pid
                while parent[node] != 0:
                    node = parent[node]
                verdict = head[node] == origin_idx
                memo[pid] = verdict
            return verdict

        return check


class AspaPolicy(SecurityPolicy):
    """ASPA-like provider-authorization path verification.

    The receiver validates the announced path against the relationship
    database: walking the collapsed AS-level path from the origin
    towards the sender, every step must be a plausible export —

    * origin-side AS is the far side's **customer**: an up-step, only
      legal while the route has never gone down or across;
    * **sibling**: one organisation, phase unchanged;
    * **peer**: legal only at the top of the climb, and the route is
      descending afterwards;
    * origin-side AS is the far side's **provider**: a down-step.

    A hop between non-adjacent (or unknown) ASes is rejected outright —
    that is a fabricated link.  Finally the last hop, sender→receiver,
    is checked the same way using the receiver's own relationship with
    the sender.  This is the valley-free shape check an ASPA validator
    can perform from signed provider authorizations; it accepts every
    honest route and every *canonical* ASPP interception (whose path is
    the attacker's real valley-free route), but rejects the leaked
    routes of the policy-violating attacker at, and downstream of, the
    leak point.
    """

    name = "aspa"

    def __init__(self, graph: ASGraph) -> None:
        super().__init__()
        self._graph = graph

    @staticmethod
    def _step(rel: Relationship, phase: int) -> int:
        """Next phase after a step whose origin-side AS has ``rel``
        relative to the far side; ``-1`` = implausible."""
        if rel is Relationship.CUSTOMER:
            return _UP if phase == _UP else -1
        if rel is Relationship.SIBLING:
            return phase
        if rel is Relationship.PEER:
            return _DOWN if phase == _UP else -1
        if rel is Relationship.PROVIDER:
            return _DOWN
        return -1

    def check(self, receiver: int, sender: int, path: tuple[int, ...]) -> bool:
        if not path:
            return False
        graph = self._graph
        hops: list[int] = [path[0]]
        for asn in path[1:]:
            if asn != hops[-1]:
                hops.append(asn)
        phase = _UP
        # hops[-1] is the origin; walk towards hops[0] (the sender side).
        for pos in range(len(hops) - 1, 0, -1):
            near, far = hops[pos], hops[pos - 1]
            if near not in graph or far not in graph:
                return False
            phase = self._step(graph.relationship(far, near), phase)
            if phase < 0:
                return False
        if sender not in graph or receiver not in graph:
            return False
        final = self._step(graph.relationship(receiver, sender), phase)
        return final >= 0

    def _build_compiled_checker(self, table: InternTable) -> CompiledChecker:
        topo = table.topo
        parent = table.parent
        head = table.head
        n = topo.n
        role_code = topo.role_code
        slot_index = topo.slot_index
        # pid -> phase of the path segment the chain node heads
        # (walked from the origin at the bottom), or -1 = implausible.
        phase_memo: dict[int, int] = {}

        def phase_of(pid: int) -> int:
            verdict = phase_memo.get(pid)
            if verdict is not None:
                return verdict
            chain: list[int] = []
            node = pid
            while node and node not in phase_memo:
                chain.append(node)
                node = parent[node]
            for node in reversed(chain):
                above = parent[node]
                if above == 0:
                    verdict = _UP  # the origin's own trailing run
                else:
                    base = phase_memo[above]
                    near, far = head[above], head[node]
                    if base < 0 or near >= n or far >= n:
                        verdict = -1
                    else:
                        slot = slot_index[far].get(near)
                        if slot is None:
                            verdict = -1  # fabricated link
                        else:
                            code = role_code[slot]
                            if code == 0:  # near is far's customer: up
                                verdict = _UP if base == _UP else -1
                            elif code == 1:  # near is far's provider: down
                                verdict = _DOWN
                            elif code == 2:  # peer step
                                verdict = _DOWN if base == _UP else -1
                            else:  # sibling
                                verdict = base
                phase_memo[node] = verdict
            return phase_memo[pid]

        def check(recv: int, snd: int, pid: int) -> bool:
            if pid == 0:
                return False
            phase = phase_of(pid)
            if phase < 0:
                return False
            slot = slot_index[recv].get(snd)
            if slot is None:
                return False
            code = role_code[slot]
            if code == 0 or code == 2:  # sender is receiver's customer/peer
                return phase == _UP
            return True

        return check


class PrependGuardPolicy(SecurityPolicy):
    """Padding-consistency filter: reject offers whose origin padding
    shrank below the history for the same first hop.

    The registry maps each first-hop neighbour of the protected origin
    to the padding observed on honest routes through it
    (:func:`padding_registry`).  An offer for the origin's prefix whose
    padding undercuts that history is exactly what an ASPP interceptor
    produces; offers through unknown first hops, and routes for other
    origins, are accepted (no history, no judgement) — the same
    conventions as :class:`repro.defense.cautious.CautiousPaddingGuard`.
    """

    name = "prependguard"

    def __init__(self, origin: int, registry: Mapping[int, int]) -> None:
        super().__init__()
        self.origin = origin
        self.registry = dict(registry)

    def check(self, receiver: int, sender: int, path: tuple[int, ...]) -> bool:
        if not path or path[-1] != self.origin:
            return True
        head, _, padding = split_origin_padding(path)
        stripped_head = [hop for hop in head if hop != self.origin]
        first_hop = stripped_head[-1] if stripped_head else sender
        known = self.registry.get(first_hop)
        return known is None or padding >= known

    def _build_compiled_checker(self, table: InternTable) -> CompiledChecker:
        parent = table.parent
        head = table.head
        run = table.run
        origin_idx = table.index_of(self.origin)
        known_of = {table.index_of(a): lam for a, lam in self.registry.items()}
        # pid -> True/False, or (padding,) when the first hop is the
        # sender itself (a pure origin-run path) and the verdict is
        # per-sender.
        memo: dict[int, Any] = {0: True}

        def check(recv: int, snd: int, pid: int) -> bool:
            verdict = memo.get(pid, _UNSET)
            if verdict is _UNSET:
                bottom = pid
                above = -1
                while parent[bottom] != 0:
                    above = bottom
                    bottom = parent[bottom]
                if head[bottom] != origin_idx:
                    verdict = True  # a route for some other origin
                elif above >= 0:
                    # Canonical run-merge guarantees the node above the
                    # trailing origin run has a different head, so it is
                    # the last non-origin hop — the guarded first hop.
                    known = known_of.get(head[above])
                    verdict = known is None or run[bottom] >= known
                else:
                    verdict = (run[bottom],)
                memo[pid] = verdict
            if type(verdict) is tuple:
                known = known_of.get(snd)
                return known is None or verdict[0] >= known
            return verdict

        return check


def padding_registry(baseline: Any, origin: int) -> dict[int, int]:
    """Per-first-hop minimum origin padding over ``baseline``'s best routes.

    Semantically identical to
    :func:`repro.defense.cautious.build_padding_registry`, but reads the
    outcome's attached :class:`~repro.bgp.compiled.CompiledState` when
    present — walking each *distinct* interned path chain once instead
    of reifying a tuple per AS, which preserves the sweep pipeline's
    no-materialisation property.  Falls back to the tuple maps for
    reference-backend outcomes.
    """
    state = getattr(baseline, "compiled_state", None)
    if state is None:
        from repro.defense.cautious import build_padding_registry

        return build_padding_registry(baseline, origin)

    table = state.table
    topo = table.topo
    parent = table.parent
    head = table.head
    run = table.run
    origin_asn_idx = table.index_of(origin)
    best_pref = state.best_pref
    best_pid = state.best_pid
    registry: dict[int, int] = {}
    # (padding, first-hop index) per distinct pid; None = other origin.
    per_pid: dict[int, tuple[int, int] | None] = {}
    for i in range(topo.n):
        if best_pref[i] < 0:
            continue
        pid = best_pid[i]
        if pid == 0:
            continue  # the origin's own empty path
        info = per_pid.get(pid, _UNSET)
        if info is _UNSET:
            bottom = pid
            above = -1
            while parent[bottom] != 0:
                above = bottom
                bottom = parent[bottom]
            info = (
                (run[bottom], head[above] if above >= 0 else -1)
                if head[bottom] == origin_asn_idx
                else None
            )
            per_pid[pid] = info
        if info is None:
            continue
        padding, first_hop_idx = info
        first_hop = table.asn_of(first_hop_idx) if first_hop_idx >= 0 else topo.asn[i]
        known = registry.get(first_hop)
        registry[first_hop] = padding if known is None else min(known, padding)
    return registry
