"""Partial deployment of security policies over the AS graph.

"Who deploys" matters as much as "what is deployed": a policy on a
handful of Tier-1 transit networks filters far more traffic than the
same policy on thousands of stubs.  This module assigns one
:class:`~repro.secpol.policies.SecurityPolicy` to a *fraction* of the
ASes chosen by a named strategy, and packages the result as a
:class:`SecurityDeployment` — the single object both propagation
backends consume (duck-typed: the engines import nothing from here).

Strategies (each yields a deterministic full ranking of its candidate
pool; a fraction ``f`` deploys the first ``round(f * pool)`` of it, so
the deployer sets are *nested* across fractions — which is what makes
the sweep curves interpretable):

* ``random`` — a seeded shuffle of every AS (the pessimistic baseline:
  adoption driven by unrelated incentives);
* ``top-degree-first`` — ASes by descending degree (the "big networks
  adopt first" optimistic scenario);
* ``tier1-only`` — the Tier-1 clique only, by descending degree (the
  fraction scales within that pool: ``f = 1.0`` means *all of Tier-1*,
  not all ASes);
* ``victim-cone`` — the victim's customer cone by descending degree
  (the victim's own ecosystem protects itself).

The victim and the attacker are always excluded from deployment: the
victim already originates the true route, and a policy on the attacker
would be self-defeating theatre.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.exceptions import SimulationError
from repro.secpol.policies import (
    AspaPolicy,
    PrependGuardPolicy,
    RovPolicy,
    SecurityPolicy,
    padding_registry,
)
from repro.topology.asgraph import ASGraph
from repro.topology.tiers import customer_cone, tier1_ases
from repro.utils.rand import derive_rng, make_rng

__all__ = [
    "POLICIES",
    "STRATEGIES",
    "SecurityDeployment",
    "build_deployment",
    "deployment_ranking",
    "make_policy",
    "select_deployers",
]

#: Policy names accepted by :func:`make_policy` and the CLI ("none" is
#: additionally accepted wherever a deployment is optional).
POLICIES = ("rov", "aspa", "prependguard")

#: Deployment strategy names.
STRATEGIES = ("random", "top-degree-first", "tier1-only", "victim-cone")


class SecurityDeployment:
    """One policy deployed at a concrete set of ASes.

    This is the object handed to ``PropagationEngine.propagate(...,
    secpol=)``.  The engines only rely on three attributes — the
    ``deployers`` tuple, tuple-space ``check`` and pid-space
    ``compiled_checker`` — so the bgp package never imports secpol
    (no cycle), and tests can hand-roll deployments with ad-hoc
    policies.
    """

    __slots__ = ("policy", "deployers")

    def __init__(self, policy: SecurityPolicy, deployers: Iterable[int]) -> None:
        self.policy = policy
        self.deployers = tuple(deployers)

    @property
    def name(self) -> str:
        return self.policy.name

    def check(self, receiver: int, sender: int, path: tuple[int, ...]) -> bool:
        return self.policy.check(receiver, sender, path)

    def compiled_checker(self, table: Any):
        return self.policy.compiled_checker(table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SecurityDeployment(policy={self.policy.name!r}, "
            f"deployers={len(self.deployers)})"
        )


def deployment_ranking(
    graph: ASGraph,
    strategy: str,
    *,
    victim: int | None = None,
    seed: int = 0,
) -> tuple[int, ...]:
    """The strategy's full candidate ranking (before any exclusions).

    Deterministic for a given ``(graph, strategy, victim, seed)``, and
    independent of the deployment fraction — sweeps slice prefixes of
    one ranking, so deployer sets are nested across fractions.
    """
    if strategy == "random":
        order = list(graph.ases)
        derive_rng(make_rng(seed), "secpol.deployment").shuffle(order)
        return tuple(order)
    if strategy == "top-degree-first":
        return tuple(sorted(graph.ases, key=lambda a: (-graph.degree(a), a)))
    if strategy == "tier1-only":
        return tuple(sorted(tier1_ases(graph), key=lambda a: (-graph.degree(a), a)))
    if strategy == "victim-cone":
        if victim is None:
            raise SimulationError("the victim-cone strategy needs a victim")
        cone = customer_cone(graph, victim)
        return tuple(sorted(cone, key=lambda a: (-graph.degree(a), a)))
    raise SimulationError(
        f"unknown deployment strategy {strategy!r}; expected one of {STRATEGIES}"
    )


def select_deployers(
    ranking: Iterable[int],
    fraction: float,
    *,
    exclude: Iterable[int] = (),
) -> tuple[int, ...]:
    """The first ``round(fraction * pool)`` of ``ranking``, after
    dropping excluded ASes (the pool is what remains eligible)."""
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError(f"deployment fraction must be in [0, 1], got {fraction}")
    excluded = set(exclude)
    eligible = [a for a in ranking if a not in excluded]
    return tuple(eligible[: round(fraction * len(eligible))])


def make_policy(
    name: str,
    *,
    graph: ASGraph,
    victim: int,
    registry: Mapping[int, int] | None = None,
) -> SecurityPolicy:
    """Instantiate a policy by CLI/config name."""
    if name == "rov":
        return RovPolicy(victim)
    if name == "aspa":
        return AspaPolicy(graph)
    if name == "prependguard":
        if registry is None:
            raise SimulationError(
                "prependguard needs a padding registry (pass registry= or "
                "build the deployment from a baseline outcome)"
            )
        return PrependGuardPolicy(victim, registry)
    raise SimulationError(
        f"unknown security policy {name!r}; expected one of {POLICIES}"
    )


def build_deployment(
    graph: ASGraph,
    *,
    policy: str,
    strategy: str,
    fraction: float,
    victim: int,
    attacker: int,
    seed: int = 0,
    baseline: Any | None = None,
    registry: Mapping[int, int] | None = None,
) -> SecurityDeployment | None:
    """Assemble the deployment for one sweep point.

    Returns ``None`` when nothing is actually deployed (``policy`` is
    ``"none"``/``None``, or the fraction rounds to zero deployers) so
    the caller propagates through the *exact* pristine code path — the
    ``fraction == 0.0`` no-op tripwire in the differential suite counts
    on this.  ``prependguard`` derives its padding registry from
    ``baseline`` (the honest converged outcome) unless an explicit
    ``registry`` is given.
    """
    if policy is None or policy == "none" or fraction <= 0.0:
        return None
    ranking = deployment_ranking(graph, strategy, victim=victim, seed=seed)
    deployers = select_deployers(ranking, fraction, exclude=(victim, attacker))
    if not deployers:
        return None
    if policy == "prependguard" and registry is None:
        if baseline is None:
            raise SimulationError(
                "building a prependguard deployment needs the honest baseline "
                "outcome (or an explicit registry)"
            )
        registry = padding_registry(baseline, victim)
    return SecurityDeployment(
        make_policy(policy, graph=graph, victim=victim, registry=registry),
        deployers,
    )
