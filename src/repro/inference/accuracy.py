"""Scoring inferred relationships against ground truth.

Unlike the paper (which had no ground truth for the real Internet), our
synthetic topologies come with known relationships, so the inference
pipeline can be evaluated directly: per-relationship precision/recall
over the edges both graphs contain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

__all__ = ["InferenceAccuracy", "score_inference"]


@dataclass(frozen=True)
class InferenceAccuracy:
    """Accuracy of one inferred graph vs. the ground truth."""

    #: edges present in both graphs
    num_common_edges: int
    #: edges in truth never observed (not in any path)
    num_missing_edges: int
    #: edges inferred that do not exist in truth
    num_spurious_edges: int
    #: common edges whose relationship labels match exactly
    num_correct: int
    #: per-truth-relationship (correct, total) counts
    per_relationship: dict[str, tuple[int, int]]

    @property
    def accuracy(self) -> float:
        """Fraction of common edges labelled correctly."""
        return self.num_correct / self.num_common_edges if self.num_common_edges else 0.0

    def recall(self, relationship: Relationship) -> float:
        correct, total = self.per_relationship.get(relationship.value, (0, 0))
        return correct / total if total else 0.0


def score_inference(truth: ASGraph, inferred: ASGraph) -> InferenceAccuracy:
    """Compare ``inferred`` against the ground-truth ``truth`` graph.

    Relationship labels are compared in the canonical ``a < b``
    orientation; a peer/sibling edge matches only the same symmetric
    type, a transit edge only the same direction.
    """
    common = correct = 0
    missing = 0
    per_relationship: dict[str, list[int]] = {}
    truth_edges: set[tuple[int, int]] = set()
    for a, b, role in truth.edges():
        key = (min(a, b), max(a, b))
        truth_edges.add(key)
        oriented_truth = role if key[0] == a else role.inverse()
        inferred_role = inferred.relationship(key[0], key[1])
        bucket = per_relationship.setdefault(oriented_truth.value, [0, 0])
        if inferred_role is Relationship.NONE:
            missing += 1
            continue
        common += 1
        bucket[1] += 1
        if inferred_role is oriented_truth:
            correct += 1
            bucket[0] += 1
    spurious = 0
    for a, b, _role in inferred.edges():
        if (min(a, b), max(a, b)) not in truth_edges:
            spurious += 1
    return InferenceAccuracy(
        num_common_edges=common,
        num_missing_edges=missing,
        num_spurious_edges=spurious,
        num_correct=correct,
        per_relationship={
            key: (value[0], value[1]) for key, value in per_relationship.items()
        },
    )
