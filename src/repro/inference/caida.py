"""CAIDA AS-Rank-style relationship inference (simplified).

The paper cross-checks Gao's output against "CAIDA's algorithm"
(AS-Rank family: Luckie et al.).  We implement the algorithm's spine in
a documented, simplified form:

1. **Clique inference** — the Tier-1 core is the largest set of
   high-degree ASes that are mutually adjacent in observed paths and
   never appear *beneath* another AS (never receive transit).
2. **Transit-degree ordering** — every AS is ranked by transit degree
   (number of distinct ASes it appears to forward for, i.e. the AS
   appears between them and the path's top).
3. **Edge classification** — walking each path from the clique/top
   downwards labels hops provider→customer; ascending hops on the
   origin side label customer→provider; remaining edges between
   comparable-rank ASes that only ever appear at path tops are peering.

Siblings are not inferred by this algorithm (AS-Rank infers p2c/p2p
only), which is one of the systematic disagreements the combination
step of :mod:`repro.inference.combine` has to resolve — exactly why the
paper keeps only the agreed pairs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

from repro.bgp.aspath import collapse_prepending
from repro.exceptions import MeasurementError
from repro.topology.asgraph import ASGraph

__all__ = ["infer_caida"]

Path = tuple[int, ...]


def _adjacency(paths: list[Path]) -> dict[int, set[int]]:
    neighbors: defaultdict[int, set[int]] = defaultdict(set)
    for path in paths:
        for a, b in zip(path, path[1:]):
            if a != b:
                neighbors[a].add(b)
                neighbors[b].add(a)
    return dict(neighbors)


def _infer_clique(paths: list[Path], neighbors: dict[int, set[int]], size_hint: int) -> set[int]:
    """Greedy clique from the highest-degree ASes that are mutually adjacent."""
    ranked = sorted(neighbors, key=lambda asn: (-len(neighbors[asn]), asn))
    clique: list[int] = []
    for asn in ranked[: max(4 * size_hint, 40)]:
        if all(asn in neighbors.get(member, ()) for member in clique):
            clique.append(asn)
        if len(clique) >= size_hint:
            break
    return set(clique)


def infer_caida(
    paths: Iterable[Path],
    *,
    clique_size_hint: int = 10,
    peer_rank_ratio: float = 10.0,
    seed_clique: Iterable[int] = (),
) -> ASGraph:
    """Infer an annotated topology, AS-Rank style.

    ``clique_size_hint`` bounds the greedy Tier-1 clique search.  Real
    AS-Rank does not bootstrap the clique from degree alone either: it
    starts from an operator-curated Tier-1 list (Bill Norton's clique)
    refined by path evidence.  ``seed_clique`` plays that prior's role
    — members that actually appear in the observed paths are adopted
    directly; when empty, a greedy degree-based search approximates it
    (adequate on large samples, weak on small ones).
    """
    path_list = [collapse_prepending(tuple(p)) for p in paths]
    path_list = [p for p in path_list if len(p) >= 1]
    if not path_list:
        raise MeasurementError("cannot infer relationships from zero paths")

    neighbors = _adjacency(path_list)
    seeded = {asn for asn in seed_clique if asn in neighbors}
    clique = seeded or _infer_clique(path_list, neighbors, clique_size_hint)

    # Transit degree: how many distinct ASes appear "below" each AS.
    transit_customers: defaultdict[int, set[int]] = defaultdict(set)
    for path in path_list:
        if len(path) < 2:
            continue
        top_index = _top_index(path, clique, neighbors)
        # Descending side: path[i] forwards for everything nearer the monitor.
        for i in range(top_index, len(path) - 1):
            transit_customers[path[i]].add(path[i + 1])
        for i in range(top_index, 0, -1):
            transit_customers[path[i]].add(path[i - 1])
    transit_degree = Counter(
        {asn: len(customers) for asn, customers in transit_customers.items()}
    )

    votes_c2p: Counter = Counter()
    top_edges: set[tuple[int, int]] = set()
    for path in path_list:
        if len(path) < 2:
            continue
        top_index = _top_index(path, clique, neighbors, transit_degree)
        for i in range(len(path) - 1):
            a, b = path[i], path[i + 1]
            if i < top_index:
                votes_c2p[(a, b)] += 1
            else:
                votes_c2p[(b, a)] += 1
        if top_index > 0:
            a, b = path[top_index - 1], path[top_index]
            top_edges.add((min(a, b), max(a, b)))
        if top_index < len(path) - 1:
            a, b = path[top_index], path[top_index + 1]
            top_edges.add((min(a, b), max(a, b)))

    graph = ASGraph()
    for asn in neighbors:
        graph.add_as(asn)
    edges = {
        (min(a, b), max(a, b)) for a, adjacent in neighbors.items() for b in adjacent
    }
    for a, b in sorted(edges):
        if a in clique and b in clique:
            graph.add_p2p(a, b)
            continue
        a_below_b = votes_c2p[(a, b)]
        b_below_a = votes_c2p[(b, a)]
        rank_a = transit_degree.get(a, 0) + 1
        rank_b = transit_degree.get(b, 0) + 1
        ratio = max(rank_a, rank_b) / min(rank_a, rank_b)
        if (
            (a, b) in top_edges
            and ratio <= peer_rank_ratio
            and min(a_below_b, b_below_a) <= 1
            and abs(a_below_b - b_below_a) <= max(1, 0.1 * (a_below_b + b_below_a))
        ):
            graph.add_p2p(a, b)
        elif a_below_b >= b_below_a:
            graph.add_p2c(b, a)
        else:
            graph.add_p2c(a, b)
    return graph


def _top_index(
    path: Path,
    clique: set[int],
    neighbors: dict[int, set[int]],
    transit_degree: Counter | None = None,
) -> int:
    """Index of the path's topmost AS: a clique member if present, else
    the highest (transit-)degree AS."""
    clique_positions = [i for i, asn in enumerate(path) if asn in clique]
    if clique_positions:
        return clique_positions[0]
    if transit_degree is not None:
        return max(range(len(path)), key=lambda i: (transit_degree.get(path[i], 0), -i))
    return max(range(len(path)), key=lambda i: (len(neighbors.get(path[i], ())), -i))
