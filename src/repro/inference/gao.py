"""Gao's AS-relationship inference algorithm (Gao 2000, simplified).

The classic degree-based heuristic: in a valley-free path the
highest-degree AS sits at the "top of the hill"; every hop on the
origin side of the top ascends customer→provider and every hop on the
monitor side descends provider→customer.  Votes accumulated over many
paths classify each edge; edges with substantial votes in *both*
directions are siblings; near the top of paths, edges between ASes of
comparable degree are re-labelled peering.

Following the paper's methodology ("generate graphs using Gao's
algorithm with only Tier-1 peering links as the initial input"), a
``known_peers`` seed can pin selected edges as peering up front; the
combination step of :mod:`repro.inference.combine` uses the same hook
to re-run Gao's algorithm seeded with the agreed relationship set.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Mapping

from repro.bgp.aspath import collapse_prepending
from repro.exceptions import MeasurementError
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

__all__ = ["infer_gao"]

Path = tuple[int, ...]


def _collect_edges_and_degrees(paths: Iterable[Path]) -> tuple[set[tuple[int, int]], Counter]:
    edges: set[tuple[int, int]] = set()
    neighbors: defaultdict[int, set[int]] = defaultdict(set)
    for path in paths:
        core = collapse_prepending(tuple(path))
        for a, b in zip(core, core[1:]):
            if a == b:
                continue
            edges.add((min(a, b), max(a, b)))
            neighbors[a].add(b)
            neighbors[b].add(a)
    degrees = Counter({asn: len(adjacent) for asn, adjacent in neighbors.items()})
    return edges, degrees


def infer_gao(
    paths: Iterable[Path],
    *,
    sibling_threshold: int = 1,
    peer_degree_ratio: float = 60.0,
    known_peers: Iterable[tuple[int, int]] = (),
    known_relationships: Mapping[tuple[int, int], Relationship] | None = None,
) -> ASGraph:
    """Infer an annotated topology from observed AS paths.

    ``paths`` are AS-PATHs in BGP order (monitor side first, origin
    last); prepending is collapsed before processing.  ``known_peers``
    pins edges as peering; ``known_relationships`` pins arbitrary edges
    (keyed ``(a, b)`` meaning *b's role relative to a*) — this is the
    seeding hook the combination step uses.

    Returns an :class:`ASGraph` over every AS seen in ``paths``.
    """
    path_list = [collapse_prepending(tuple(p)) for p in paths]
    path_list = [p for p in path_list if len(p) >= 1]
    if not path_list:
        raise MeasurementError("cannot infer relationships from zero paths")

    edges, degrees = _collect_edges_and_degrees(path_list)
    pinned: dict[tuple[int, int], Relationship] = {}
    for a, b in known_peers:
        pinned[(min(a, b), max(a, b))] = Relationship.PEER
    if known_relationships:
        for (a, b), role in known_relationships.items():
            key = (min(a, b), max(a, b))
            if key[0] == a:
                pinned[key] = role
            else:
                pinned[key] = role.inverse()

    # ---- Phase 1: transit votes around each path's top provider ------
    # votes_c2p[(u, v)] counts evidence that v provides transit to u.
    votes_c2p: Counter = Counter()
    top_edges: set[tuple[int, int]] = set()
    for path in path_list:
        if len(path) < 2:
            continue
        # Traffic flows path[0] -> path[-1]; the top provider is the
        # highest-degree AS, ties to the earlier position.
        top_index = max(range(len(path)), key=lambda i: (degrees[path[i]], -i))
        for i in range(len(path) - 1):
            a, b = path[i], path[i + 1]
            if i < top_index:
                votes_c2p[(a, b)] += 1  # ascending: b provides transit to a
            else:
                votes_c2p[(b, a)] += 1  # descending: a provides transit to b
        # Edges incident to the top provider are the peering candidates.
        if top_index > 0:
            a, b = path[top_index - 1], path[top_index]
            top_edges.add((min(a, b), max(a, b)))
        if top_index < len(path) - 1:
            a, b = path[top_index], path[top_index + 1]
            top_edges.add((min(a, b), max(a, b)))

    # ---- Phase 2 + 3: classify every observed edge --------------------
    graph = ASGraph()
    for asn in degrees:
        graph.add_as(asn)
    for a, b in sorted(edges):
        pinned_role = pinned.get((a, b))
        if pinned_role is not None:
            graph.add_edge(a, b, pinned_role)
            continue
        a_below_b = votes_c2p[(a, b)]  # evidence b provides transit to a
        b_below_a = votes_c2p[(b, a)]
        degree_a, degree_b = degrees[a], degrees[b]
        ratio = max(degree_a, degree_b) / max(1, min(degree_a, degree_b))
        is_top_edge = (a, b) in top_edges
        if (
            is_top_edge
            and ratio <= peer_degree_ratio
            and min(a_below_b, b_below_a) <= sibling_threshold
            and abs(a_below_b - b_below_a) <= max(
                sibling_threshold, 0.1 * (a_below_b + b_below_a)
            )
        ):
            # Comparable degrees at the top of paths with no dominant
            # transit direction: peering.
            graph.add_p2p(a, b)
        elif min(a_below_b, b_below_a) > sibling_threshold:
            # Transit observed in both directions: one organisation.
            graph.add_s2s(a, b)
        elif a_below_b >= b_below_a:
            graph.add_p2c(b, a)  # b is the provider
        else:
            graph.add_p2c(a, b)
    return graph
