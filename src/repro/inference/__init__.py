"""AS-relationship inference from observed AS paths (the paper's §IV-A).

The paper constructs its simulation topology by running Gao's
inference algorithm and a CAIDA-style algorithm over three months of
routing tables, keeping the relationship pairs both agree on, and
re-running Gao's algorithm seeded with that agreed set.  This package
implements all three steps:

* :mod:`repro.inference.gao` — Gao's degree-based vote algorithm
  (customers/providers/siblings, then peering);
* :mod:`repro.inference.caida` — a CAIDA AS-Rank-style algorithm
  (clique first, transit degree ordering);
* :mod:`repro.inference.combine` — the agreement + re-run combination;
* :mod:`repro.inference.accuracy` — precision/recall scoring against a
  ground-truth graph (possible here because our topologies are
  generated with known relationships).
"""

from repro.inference.accuracy import InferenceAccuracy, score_inference
from repro.inference.caida import infer_caida
from repro.inference.combine import infer_combined
from repro.inference.gao import infer_gao

__all__ = ["infer_gao", "infer_caida", "infer_combined", "InferenceAccuracy", "score_inference"]
