"""The paper's §IV-A combination of Gao's and CAIDA's inferences.

    "We first generate graphs using Gao's algorithm ... We did the same
    calculation using CAIDA's algorithm.  Then we take the set of
    relationship pairs upon which both graphs agree.  We take the
    common set as the new initial input to re-run Gao's algorithm to
    generate our topology graph."
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.inference.caida import infer_caida
from repro.inference.gao import infer_gao
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

__all__ = ["infer_combined", "agreed_relationships"]

Path = tuple[int, ...]


def agreed_relationships(
    first: ASGraph, second: ASGraph
) -> dict[tuple[int, int], Relationship]:
    """Relationship pairs on which two inferred graphs agree.

    Returns a map keyed ``(a, b)`` with ``a < b`` whose value is *b's
    role relative to a* — the pinning format
    :func:`repro.inference.gao.infer_gao` accepts.
    """
    agreed: dict[tuple[int, int], Relationship] = {}
    for a, b, role in first.edges():
        key = (min(a, b), max(a, b))
        oriented_role = role if key[0] == a else role.inverse()
        other_role = second.relationship(key[0], key[1])
        if other_role is oriented_role and oriented_role is not Relationship.NONE:
            agreed[key] = oriented_role
    return agreed


def infer_combined(
    paths: Iterable[Path],
    *,
    clique_size_hint: int = 10,
    sibling_threshold: int = 1,
    peer_degree_ratio: float = 60.0,
) -> ASGraph:
    """Run Gao + CAIDA, agree, and re-run Gao seeded with the agreed set."""
    path_list = [tuple(p) for p in paths]
    gao_graph = infer_gao(
        path_list,
        sibling_threshold=sibling_threshold,
        peer_degree_ratio=peer_degree_ratio,
    )
    caida_graph = infer_caida(path_list, clique_size_hint=clique_size_hint)
    agreed = agreed_relationships(gao_graph, caida_graph)
    return infer_gao(
        path_list,
        sibling_threshold=sibling_threshold,
        peer_degree_ratio=peer_degree_ratio,
        known_relationships=agreed,
    )
