"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes a frozen ``*Config`` dataclass and a
``run(config) -> ExperimentResult`` function.  The result carries the
same rows/series the paper's figure reports, renders itself as text
(what the benchmark harness prints), and exposes a compact summary for
EXPERIMENTS.md.

All experiments are deterministic: the topology, workload, and any
sampling derive from ``config.seed`` through labelled sub-streams, so a
figure regenerates bit-for-bit.
"""

from __future__ import annotations

import functools
import random
from collections.abc import Iterable
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field

from repro.bgp.engine import PropagationEngine
from repro.exceptions import ExperimentError
from repro.runner.sampling import sample_attack_pairs as sample_pairs
from repro.telemetry.metrics import RunMetrics
from repro.topology.generators import (
    GeneratedTopology,
    InternetTopologyConfig,
    generate_internet_topology,
)
from repro.topology.tiers import provider_ancestors
from repro.utils.rand import derive_rng, make_rng
from repro.utils.tables import format_table

__all__ = [
    "ExperimentResult",
    "ExperimentWorld",
    "build_world",
    "experiment_timer",
    "instrumented",
    "provider_ancestors",
]


def instrumented(experiment_id: str):
    """Decorator for experiment ``run(config, *, metrics=None)`` entry
    points: times the whole run into ``metrics``
    (``experiment.<id>_seconds``) and attaches the registry to the
    returned artefact.  The wrapped function still receives ``metrics``
    so it can thread the registry into its engines and sweeps.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            metrics = kwargs.get("metrics")
            with experiment_timer(metrics, experiment_id):
                result = fn(*args, **kwargs)
            result.metrics = metrics
            return result

        return wrapper

    return decorate


def experiment_timer(
    metrics: RunMetrics | None, experiment_id: str
) -> AbstractContextManager:
    """Context manager timing one experiment run into ``metrics``
    (``experiment.<id>_seconds``); a no-op when metrics are off."""
    if metrics is None or not metrics.enabled:
        return nullcontext()
    return metrics.time(f"experiment.{experiment_id}_seconds")


@dataclass
class ExperimentResult:
    """The regenerated artefact for one paper figure or table."""

    experiment_id: str
    title: str
    params: dict[str, object] = field(default_factory=dict)
    #: column headers + rows, mirroring the figure's plotted points
    headers: tuple[str, ...] = ()
    rows: list[tuple[object, ...]] = field(default_factory=list)
    #: named scalar findings (the numbers quoted in the paper's prose)
    summary: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: telemetry registry attached by ``run(config, metrics=...)``;
    #: deliberately excluded from :meth:`to_text` so artefact text is
    #: bit-identical with metrics on or off.
    metrics: RunMetrics | None = None

    def metrics_text(self) -> str:
        """The attached telemetry rendered as a summary table (empty
        string when the run was not instrumented)."""
        if self.metrics is None or not self.metrics:
            return ""
        return self.metrics.summary_table()

    def to_text(self) -> str:
        """Render the result the way the benchmark harness prints it."""
        parts = [f"{self.experiment_id}: {self.title}"]
        if self.params:
            rendered = ", ".join(f"{k}={v}" for k, v in self.params.items())
            parts.append(f"params: {rendered}")
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.summary:
            parts.append("summary:")
            parts.extend(
                f"  {key} = {value:.4g}" for key, value in self.summary.items()
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


@dataclass
class ExperimentWorld:
    """A generated topology with its shared propagation engine."""

    topology: GeneratedTopology
    engine: PropagationEngine
    seed: int
    scale: float

    @property
    def graph(self):
        return self.topology.graph


def build_world(
    *,
    seed: int = 7,
    scale: float = 1.0,
    config: InternetTopologyConfig | None = None,
    metrics: RunMetrics | None = None,
) -> ExperimentWorld:
    """Build the experiment substrate (topology + engine).

    ``scale`` multiplies the default population counts — benchmarks run
    at 1.0, unit tests at ~0.2.  Passing an explicit ``config`` ignores
    ``scale``.  ``metrics`` attaches a telemetry registry to the world's
    engine so every propagation it runs is instrumented.
    """
    rng = make_rng(seed)
    topo_rng = derive_rng(rng, "topology")
    cfg = config if config is not None else InternetTopologyConfig().scaled(scale)
    topology = generate_internet_topology(cfg, topo_rng)
    return ExperimentWorld(
        topology=topology,
        engine=PropagationEngine(topology.graph, metrics=metrics),
        seed=seed,
        scale=scale,
    )


def sample_attack_pairs(
    world: ExperimentWorld,
    count: int,
    rng: random.Random,
    *,
    attacker_pool: Iterable[int] | None = None,
    victim_pool: Iterable[int] | None = None,
) -> list[tuple[int, int]]:
    """Sample ``count`` (attacker, victim) pairs.

    Attackers default to the transit pool: a valley-free attacker with
    no customers has nowhere to export a modified route, so including
    pure stubs would only measure no-ops (see
    ``GeneratedTopology.transit_ases``).  Victims default to all ASes.
    """
    attackers = list(attacker_pool) if attacker_pool is not None else world.topology.transit_ases
    victims = list(victim_pool) if victim_pool is not None else world.graph.ases
    if not attackers or len(victims) < 2:
        raise ExperimentError("attack-pair pools are too small")
    return sample_pairs(attackers, victims, count, rng)
