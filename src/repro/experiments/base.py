"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes a frozen ``*Config`` dataclass and a
``run(config) -> ExperimentResult`` function.  The result carries the
same rows/series the paper's figure reports, renders itself as text
(what the benchmark harness prints), and exposes a compact summary for
EXPERIMENTS.md.

All experiments are deterministic: the topology, workload, and any
sampling derive from ``config.seed`` through labelled sub-streams, so a
figure regenerates bit-for-bit.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.bgp.engine import PropagationEngine
from repro.exceptions import ExperimentError
from repro.runner.sampling import sample_attack_pairs as sample_pairs
from repro.topology.generators import (
    GeneratedTopology,
    InternetTopologyConfig,
    generate_internet_topology,
)
from repro.topology.tiers import provider_ancestors
from repro.utils.rand import derive_rng, make_rng
from repro.utils.tables import format_table

__all__ = [
    "ExperimentResult",
    "ExperimentWorld",
    "build_world",
    "provider_ancestors",
]


@dataclass
class ExperimentResult:
    """The regenerated artefact for one paper figure or table."""

    experiment_id: str
    title: str
    params: dict[str, object] = field(default_factory=dict)
    #: column headers + rows, mirroring the figure's plotted points
    headers: tuple[str, ...] = ()
    rows: list[tuple[object, ...]] = field(default_factory=list)
    #: named scalar findings (the numbers quoted in the paper's prose)
    summary: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the result the way the benchmark harness prints it."""
        parts = [f"{self.experiment_id}: {self.title}"]
        if self.params:
            rendered = ", ".join(f"{k}={v}" for k, v in self.params.items())
            parts.append(f"params: {rendered}")
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.summary:
            parts.append("summary:")
            parts.extend(
                f"  {key} = {value:.4g}" for key, value in self.summary.items()
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


@dataclass
class ExperimentWorld:
    """A generated topology with its shared propagation engine."""

    topology: GeneratedTopology
    engine: PropagationEngine
    seed: int
    scale: float

    @property
    def graph(self):
        return self.topology.graph


def build_world(
    *,
    seed: int = 7,
    scale: float = 1.0,
    config: InternetTopologyConfig | None = None,
) -> ExperimentWorld:
    """Build the experiment substrate (topology + engine).

    ``scale`` multiplies the default population counts — benchmarks run
    at 1.0, unit tests at ~0.2.  Passing an explicit ``config`` ignores
    ``scale``.
    """
    rng = make_rng(seed)
    topo_rng = derive_rng(rng, "topology")
    cfg = config if config is not None else InternetTopologyConfig().scaled(scale)
    topology = generate_internet_topology(cfg, topo_rng)
    return ExperimentWorld(
        topology=topology,
        engine=PropagationEngine(topology.graph),
        seed=seed,
        scale=scale,
    )


def sample_attack_pairs(
    world: ExperimentWorld,
    count: int,
    rng: random.Random,
    *,
    attacker_pool: Iterable[int] | None = None,
    victim_pool: Iterable[int] | None = None,
) -> list[tuple[int, int]]:
    """Sample ``count`` (attacker, victim) pairs.

    Attackers default to the transit pool: a valley-free attacker with
    no customers has nowhere to export a modified route, so including
    pure stubs would only measure no-ops (see
    ``GeneratedTopology.transit_ases``).  Victims default to all ASes.
    """
    attackers = list(attacker_pool) if attacker_pool is not None else world.topology.transit_ases
    victims = list(victim_pool) if victim_pool is not None else world.graph.ases
    if not attackers or len(victims) < 2:
        raise ExperimentError("attack-pair pools are too small")
    return sample_pairs(attackers, victims, count, rng)
