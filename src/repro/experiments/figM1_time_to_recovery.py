"""Figure M1 — time-to-recovery vs λ and mitigation strategy.

A figure family the source paper never had: it measures *exposure*
(Sermpezis et al. frame hijack damage as a function of exposure time),
not just point-in-time pollution.  For each victim padding λ the full
closed loop runs once per strategy — seeded churn with an interception
burst, streaming detection, automated re-announce, delta
re-convergence — and reports the three clocks:

* **time-to-detect** — post-merge updates between the attack entering
  the stream and the victim prefix's first alarm;
* **time-to-mitigate** — the modelled reaction latency (updates);
* **time-to-recover** — delta propagation rounds for the re-announce
  to re-converge, plus the ASes it touched;

and the pollution ladder: organic (before hijack) → under attack →
residual after the countermeasure.  The ``none`` control arm shows
what no reaction costs; ``reset`` shows the λ-floor consistency reset
collapsing the attacker's length advantage entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import ExperimentResult, instrumented
from repro.mitigation.strategies import MITIGATION_STRATEGIES
from repro.telemetry.metrics import RunMetrics

__all__ = ["FigM1Config", "run"]


@dataclass(frozen=True)
class FigM1Config:
    seed: int = 7
    scale: float = 0.25
    monitors: int = 20
    prefixes: int = 2
    updates: int = 800
    paddings: tuple[int, ...] = (2, 3, 4)
    strategies: tuple[str, ...] = MITIGATION_STRATEGIES
    feeds: int = 4
    reaction_updates: int = 64


@instrumented("figM1")
def run(
    config: FigM1Config = FigM1Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Time-to-detect/mitigate/recover and residual pollution per (λ, strategy)."""
    # Imported lazily: churn synthesis depends on experiments.base, so a
    # module-level import here would close a cycle through the package.
    from repro.measurement.churn import ChurnConfig, synthesize_churn_stream
    from repro.mitigation.controller import MitigationPolicy, run_closed_loop

    rows = []
    summary: dict[str, float] = {}
    world = None
    for padding in config.paddings:
        stream = synthesize_churn_stream(
            ChurnConfig(
                seed=config.seed,
                scale=config.scale,
                monitors=config.monitors,
                prefixes=config.prefixes,
                updates=config.updates,
                padding=padding,
            ),
            world=world,
        )
        world = stream.world  # share the converged topology across λ
        for strategy in config.strategies:
            report = run_closed_loop(
                stream,
                policy=MitigationPolicy(
                    strategy=strategy, reaction_updates=config.reaction_updates
                ),
                feeds=config.feeds,
                metrics=metrics,
            )
            step = report.step
            rows.append(
                (
                    padding,
                    strategy,
                    step.time_to_detect if step.time_to_detect is not None else "-",
                    step.time_to_mitigate,
                    step.time_to_recover,
                    step.touched_ases,
                    round(step.pollution_attack, 4),
                    round(step.pollution_residual, 4),
                    "yes" if step.recovered else "no",
                )
            )
            key = f"lambda{padding}_{strategy}"
            summary[f"{key}_time_to_recover"] = float(step.time_to_recover)
            summary[f"{key}_residual_pollution"] = step.pollution_residual
            summary[f"{key}_recovered"] = float(step.recovered)
            if step.time_to_detect is not None:
                summary[f"{key}_time_to_detect"] = float(step.time_to_detect)
    return ExperimentResult(
        experiment_id="figM1",
        title="Time to recovery vs victim padding and mitigation strategy",
        params={
            "seed": config.seed,
            "scale": config.scale,
            "monitors": config.monitors,
            "updates": config.updates,
            "feeds": config.feeds,
            "reaction_updates": config.reaction_updates,
        },
        headers=(
            "lambda",
            "strategy",
            "t_detect_upd",
            "t_mitigate_upd",
            "t_recover_rounds",
            "touched_ases",
            "pollution_attack",
            "pollution_residual",
            "recovered",
        ),
        rows=rows,
        summary=summary,
        notes=[
            "time_to_detect is measured at the detector (post-merge updates), "
            "so it is invariant to feed count, batch size and lossless "
            "backpressure policy",
            "reset re-announces at the padding floor: the attacker's strip "
            "becomes a no-op, so residual pollution collapses to the organic "
            "(before-hijack) traversal share",
            "the none control arm keeps the attack's full pollution — the "
            "exposure cost of not reacting",
        ],
    )
