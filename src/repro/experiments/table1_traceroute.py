"""Table I — traceroute from a US vantage point to Facebook during the
anomaly.

The paper verifies the control-plane anomaly on the data plane: the
forwarding path from an AT&T customer follows the anomalous BGP route
through China Telecom (AS4134) and the Korean ISP (AS9318), with RTTs
jumping from ~40 ms inside the US to ~250 ms once the path crosses the
Pacific.  We replay the §III anomaly through the propagation engine
and trace both the normal and the anomalous data paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.casestudy.facebook import (
    AS_ATT,
    AS_ATT_CUSTOMER,
    AS_CHINA_TELECOM,
    AS_FACEBOOK,
    AS_KOREAN_ISP,
    AS_LEVEL3,
    AS_NTT,
    AS_SPRINT,
    replay_facebook_anomaly,
)
from repro.casestudy.traceroute import TracerouteSimulator
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, instrumented
from repro.telemetry.metrics import RunMetrics

__all__ = ["Table1Config", "run", "FACEBOOK_REGIONS"]

#: Geography of the case-study ASes.
FACEBOOK_REGIONS: dict[int, str] = {
    AS_ATT_CUSTOMER: "us",
    AS_ATT: "us",
    AS_LEVEL3: "us",
    AS_NTT: "us",
    AS_SPRINT: "us",
    AS_FACEBOOK: "us",
    AS_CHINA_TELECOM: "cn",
    AS_KOREAN_ISP: "kr",
}


@dataclass(frozen=True)
class Table1Config:
    prefix: str = "69.171.224.0/20"


@instrumented("table1")
def run(
    config: Table1Config = Table1Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Table I: the anomalous traceroute (plus the normal one)."""
    replay = replay_facebook_anomaly(config.prefix)
    tracer = TracerouteSimulator(regions=FACEBOOK_REGIONS)

    normal_path = replay.baseline.path_of(AS_ATT_CUSTOMER)
    anomalous_path = replay.anomalous.path_of(AS_ATT_CUSTOMER)
    if normal_path is None or anomalous_path is None:
        raise ExperimentError("the AT&T customer lost its route in the replay")

    rows: list[tuple[object, ...]] = []
    for label, path in (("normal", normal_path), ("anomaly", anomalous_path)):
        for hop in tracer.trace(AS_ATT_CUSTOMER, path):
            rows.append((label, *hop.as_row()))

    normal_rtt = tracer.end_to_end_rtt(AS_ATT_CUSTOMER, normal_path)
    anomaly_rtt = tracer.end_to_end_rtt(AS_ATT_CUSTOMER, anomalous_path)
    summary = {
        "normal_rtt_ms": normal_rtt,
        "anomaly_rtt_ms": anomaly_rtt,
        "rtt_inflation": anomaly_rtt / normal_rtt if normal_rtt else 0.0,
        "anomalous_path_traverses_AS4134": float(AS_CHINA_TELECOM in anomalous_path),
        "anomalous_path_traverses_AS9318": float(AS_KOREAN_ISP in anomalous_path),
    }
    return ExperimentResult(
        experiment_id="table1",
        title="Traceroute from US to Facebook during the anomaly instance",
        params={"prefix": config.prefix, "source": f"AS{AS_ATT_CUSTOMER}"},
        headers=("scenario", "hop", "delay", "ip", "asn"),
        rows=rows,
        summary=summary,
        notes=[
            "paper's Table I: the data path follows the anomalous BGP route "
            "through AS4134/AS9318 and the RTT jumps from ~40ms to ~250ms "
            "at the trans-Pacific hops",
        ],
    )
