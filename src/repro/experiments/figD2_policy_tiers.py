"""Figure D2 — policy effectiveness across attacker/victim tiers.

Figure D1 sweeps deployment depth for one canonical pair; this figure
fixes the deployment (30% of the top-degree-first pool) and varies
*who* attacks *whom*.  For every attacker-tier × victim-tier pair we
take the biggest representative of each tier (by customer cone) and
measure residual pollution under no defence and under each policy.

The paper's tier findings (Figures 9-12) carry over: low-tier
attackers are easier to blunt because their polluted region is mostly
reached through the leaked (policy-violating) announcements that
path-plausibility checks reject, while a Tier-1 attacker pollutes most
of its cone through perfectly valley-free exports no path check can
fault.  ROV stays flat everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world, instrumented
from repro.experiments.sweeps import deployment_sweep
from repro.runner import BaselineCache
from repro.telemetry.metrics import RunMetrics
from repro.topology.tiers import classify_tiers, customer_cone

__all__ = ["FigD2Config", "run"]


@dataclass(frozen=True)
class FigD2Config:
    seed: int = 7
    scale: float = 1.0
    padding: int = 3
    fraction: float = 0.3
    strategy: str = "top-degree-first"
    policies: tuple[str, ...] = ("none", "rov", "aspa", "prependguard")
    attacker_tiers: tuple[int, ...] = (1, 2, 3)
    victim_tiers: tuple[int, ...] = (1, 2, 3)
    violate_policy: bool = True
    workers: int | None = None


def _top_by_cone(graph, candidates):
    return min(candidates, key=lambda t: (-len(customer_cone(graph, t)), t))


def _representative(graph, tiers, tier, *, transit, exclude=()):
    """The tier's biggest AS by customer cone (optionally transit-only)."""
    pool = [
        asn
        for asn in graph.ases
        if tiers.get(asn) == tier
        and asn not in exclude
        and (not transit or graph.customers_of(asn))
    ]
    return _top_by_cone(graph, pool) if pool else None


@instrumented("figD2")
def run(
    config: FigD2Config = FigD2Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Fix the deployment, grid over attacker/victim tiers and policies."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    graph = world.graph
    tiers = classify_tiers(graph)
    cache = BaselineCache(world.engine, metrics=metrics)

    rows: list[tuple[object, ...]] = []
    residuals: dict[str, list[float]] = {policy: [] for policy in config.policies}
    rov_deviation = 0.0
    pairs = 0
    for attacker_tier in config.attacker_tiers:
        attacker = _representative(graph, tiers, attacker_tier, transit=True)
        if attacker is None:
            continue
        for victim_tier in config.victim_tiers:
            victim = _representative(
                graph, tiers, victim_tier, transit=False, exclude={attacker}
            )
            if victim is None:
                continue
            pairs += 1
            control_after: float | None = None
            for policy in config.policies:
                point = deployment_sweep(
                    world.engine,
                    victim=victim,
                    attacker=attacker,
                    padding=config.padding,
                    policy=policy,
                    strategy=config.strategy,
                    fractions=(config.fraction if policy != "none" else 0.0,),
                    seed=config.seed,
                    violate_policy=config.violate_policy,
                    workers=config.workers,
                    cache=cache,
                    metrics=metrics,
                )[0]
                after = point.row()[2]
                if policy == "none":
                    control_after = after
                elif policy == "rov" and control_after is not None:
                    rov_deviation = max(rov_deviation, abs(after - control_after))
                residuals[policy].append(after)
                rows.append(
                    (attacker_tier, victim_tier, policy, round(after, 1))
                )
    if not pairs:
        raise ExperimentError("no attacker/victim tier pair is populated")

    summary: dict[str, float] = {
        "pairs": float(pairs),
        "rov_max_abs_deviation_pct": rov_deviation,
    }
    for policy, values in residuals.items():
        if values:
            summary[f"{policy}_mean_after_pct"] = sum(values) / len(values)

    return ExperimentResult(
        experiment_id="figD2",
        title=(
            f"Policy effectiveness across tiers — {config.strategy} at "
            f"{round(100 * config.fraction)}% deployment, λ={config.padding}"
        ),
        params={
            "fraction": config.fraction,
            "strategy": config.strategy,
            "padding": config.padding,
            "violate_policy": config.violate_policy,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("attacker_tier", "victim_tier", "policy", "after_hijack_%"),
        rows=rows,
        summary=summary,
        notes=[
            "low-tier attackers rely on the leaked exports that "
            "path-plausibility policies reject, so their interceptions are "
            "blunted hardest; ROV never deviates from the control",
        ],
    )
