"""Figure 12 — pollution vs prepended ASNs (two small ASes).

Both the attacker and the victim are small edge networks (the paper's
AS30209 vs AS12734).  Under valley-free export the attack barely
spreads; when the attacker leaks the stripped route to all neighbours
("violate routing policy"), pollution grows substantially with the
victim's padding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world, instrumented
from repro.experiments.sweeps import padding_sweep
from repro.runner import BaselineCache
from repro.telemetry.metrics import RunMetrics
from repro.utils.rand import derive_rng, make_rng

__all__ = ["Fig12Config", "run"]


@dataclass(frozen=True)
class Fig12Config:
    seed: int = 7
    scale: float = 1.0
    max_padding: int = 8
    #: fan the λ points out over this many worker processes (None = serial)
    workers: int | None = None


@instrumented("fig12")
def run(
    config: Fig12Config = Fig12Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 12's two series for a small attacker/victim pair."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    graph = world.graph
    rng = derive_rng(make_rng(config.seed), "fig12-pair")
    # The attacker must be multi-homed: the paper's violating attacker
    # "sends the route learned from one provider to another" — with a
    # single provider, AS-PATH loop prevention discards the leaked
    # route at the very provider it came from.
    small_transit = [
        asn
        for asn in world.topology.tier4
        if graph.customers_of(asn) and len(graph.providers_of(asn)) >= 2
    ]
    if not small_transit or not world.topology.stubs:
        raise ExperimentError("scenario needs Tier-4 transit ASes and stubs")
    attacker = rng.choice(small_transit)
    victim = rng.choice([s for s in world.topology.stubs if s != attacker])

    # Both series share the victim's pre-attack baselines.
    cache = BaselineCache(world.engine)
    valley_free = padding_sweep(
        world.engine,
        victim=victim,
        attacker=attacker,
        paddings=range(1, config.max_padding + 1),
        workers=config.workers,
        cache=cache,
        metrics=metrics,
    )
    violating = padding_sweep(
        world.engine,
        victim=victim,
        attacker=attacker,
        paddings=range(1, config.max_padding + 1),
        violate_policy=True,
        workers=config.workers,
        cache=cache,
        metrics=metrics,
    )
    rows = [
        (padding, round(vf_after, 1), round(vi_after, 1))
        for (padding, _, vf_after), (_, _, vi_after) in zip(valley_free, violating)
    ]
    summary = {
        "valley_free_plateau_pct": valley_free[-1][2],
        "violate_plateau_pct": violating[-1][2],
    }
    return ExperimentResult(
        experiment_id="fig12",
        title=(
            f"Pollution vs prepended ASNs — small AS{attacker} hijacks "
            f"small AS{victim} (AS30209/AS12734 analogue)"
        ),
        params={
            "attacker": attacker,
            "victim": victim,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("prepended_asns", "follow_valley_free_%", "violate_policy_%"),
        rows=rows,
        summary=summary,
        notes=[
            "paper: the valley-free attack pollutes very little; violating "
            "the export rule makes the impact significant as padding grows"
        ],
    )
