"""Figure 8 — polluted ASes in attacks between randomly sampled ASes.

The paper's 27 random attacker/victim instances (mostly Tier-4/Tier-5
ASes) are far less effective than Tier-1 attacks: the attacker is
rarely on paths towards the victim, and its own paths are long even
after stripping padding.  Expected shape: most instances near zero,
a few moderate outliers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentResult,
    build_world,
    instrumented,
    sample_attack_pairs,
)
from repro.experiments.sweeps import pair_grid
from repro.telemetry.metrics import RunMetrics
from repro.utils.rand import derive_rng, make_rng

__all__ = ["Fig08Config", "run"]


@dataclass(frozen=True)
class Fig08Config:
    seed: int = 7
    scale: float = 1.0
    instances: int = 27
    origin_padding: int = 3
    #: fan the attack instances out over this many worker processes
    workers: int | None = None


@instrumented("fig08")
def run(
    config: Fig08Config = Fig08Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 8: ranked pollution over random pairs."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    rng = derive_rng(make_rng(config.seed), "fig08-pairs")
    pairs = sample_attack_pairs(world, config.instances, rng)

    results = [
        (point.attacker, point.victim, point.before_fraction, point.after_fraction)
        for point in pair_grid(
            world.engine,
            pairs,
            origin_padding=config.origin_padding,
            workers=config.workers,
            metrics=metrics,
        )
    ]
    results.sort(key=lambda item: -item[3])
    rows = [
        (
            rank,
            f"AS{attacker}",
            f"AS{victim}",
            round(100 * before, 1),
            round(100 * after, 1),
        )
        for rank, (attacker, victim, before, after) in enumerate(results, start=1)
    ]
    after_values = [after for _, _, _, after in results]
    summary = {
        "instances": float(len(results)),
        "mean_pollution_pct": 100 * sum(after_values) / len(after_values),
        "median_pollution_pct": 100 * sorted(after_values)[len(after_values) // 2],
        "max_pollution_pct": 100 * max(after_values),
    }
    return ExperimentResult(
        experiment_id="fig08",
        title="Polluted ASes in attacks between randomly sampled ASes",
        params={
            "instances": len(results),
            "origin_padding": config.origin_padding,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("rank", "attacker", "victim", "before_hijack_%", "after_hijack_%"),
        rows=rows,
        summary=summary,
        notes=[
            "paper: random (mostly Tier-4/5) pairs are much less effective "
            "than Tier-1 pairs; attackers sampled from the transit pool "
            "(a customer-less stub cannot export a modified route at all)"
        ],
    )
