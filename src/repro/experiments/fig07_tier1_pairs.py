"""Figure 7 — polluted ASes in attacks between Tier-1 ASes (λ = 3).

The paper simulates 80 Tier-1-attacks-Tier-1 instances with 3
prepended copies and ranks them by pollution range.  Expected shape:
pollution around 40% for most instances, with a tail of weak attacks
(< 5%) where the victim's customers are richly peered and spread the
legitimate route.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world, instrumented
from repro.experiments.sweeps import pair_grid
from repro.telemetry.metrics import RunMetrics
from repro.utils.rand import derive_rng, make_rng

__all__ = ["Fig07Config", "run"]


@dataclass(frozen=True)
class Fig07Config:
    seed: int = 7
    scale: float = 1.0
    instances: int = 80
    origin_padding: int = 3
    #: fan the attack instances out over this many worker processes
    workers: int | None = None


@instrumented("fig07")
def run(
    config: Fig07Config = Fig07Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 7: ranked pollution over Tier-1 pairs."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    tier1 = world.topology.tier1
    if len(tier1) < 2:
        raise ExperimentError("need at least two Tier-1 ASes")
    pairs = [(a, v) for a in tier1 for v in tier1 if a != v]
    rng = derive_rng(make_rng(config.seed), "fig07-pairs")
    rng.shuffle(pairs)
    pairs = pairs[: config.instances]

    results = [
        (point.attacker, point.victim, point.before_fraction, point.after_fraction)
        for point in pair_grid(
            world.engine,
            pairs,
            origin_padding=config.origin_padding,
            workers=config.workers,
            metrics=metrics,
        )
    ]
    # The paper ranks instances by pollution range (descending).
    results.sort(key=lambda item: -item[3])
    rows = [
        (
            rank,
            f"AS{attacker}",
            f"AS{victim}",
            round(100 * before, 1),
            round(100 * after, 1),
        )
        for rank, (attacker, victim, before, after) in enumerate(results, start=1)
    ]
    after_values = [after for _, _, _, after in results]
    summary = {
        "instances": float(len(results)),
        "mean_pollution_pct": 100 * sum(after_values) / len(after_values),
        "max_pollution_pct": 100 * max(after_values),
        "weak_instances_below_5pct": float(sum(1 for a in after_values if a < 0.05)),
    }
    return ExperimentResult(
        experiment_id="fig07",
        title="Polluted ASes in attacks between Tier-1 ASes (prepended ASN=3)",
        params={
            "instances": len(results),
            "origin_padding": config.origin_padding,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("rank", "attacker", "victim", "before_hijack_%", "after_hijack_%"),
        rows=rows,
        summary=summary,
        notes=[
            "paper: pollution around 40% overall; the weakest ~30 instances "
            "fall below 5% (victims whose customers are richly peered)"
        ],
    )
