"""Shared measurement substrate for Figures 5 and 6.

Both figures characterise the same data: per-monitor routing tables
plus an update stream, produced over one synthetic world.  This module
builds that data once per configuration so the two experiments (and
their tests) stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.collectors import RouteCollector
from repro.bgp.updates import UpdateMessage, simulate_update_stream
from repro.detection.monitors import top_degree_monitors
from repro.experiments.base import ExperimentWorld, build_world
from repro.measurement.padding_model import PaddingBehaviorModel
from repro.measurement.ribs import MonitorRIBs, build_monitor_ribs
from repro.utils.rand import derive_rng, make_rng

__all__ = ["MeasurementWorld", "build_measurement_world"]


@dataclass
class MeasurementWorld:
    """Everything Figures 5/6 read: world, collector, tables, updates."""

    world: ExperimentWorld
    collector: RouteCollector
    ribs: MonitorRIBs
    updates: list[UpdateMessage]
    tier1_monitors: list[int]


def build_measurement_world(
    *,
    seed: int = 7,
    scale: float = 1.0,
    num_monitors: int = 60,
    num_prefixes: int = 400,
    churn_origins: int = 40,
    churn_events: int = 2,
    model: PaddingBehaviorModel | None = None,
) -> MeasurementWorld:
    """Build monitor RIBs and an update stream over one world.

    ``churn_origins`` of the prefixes (preferring those whose origin
    prepends, since those expose padded backup routes) experience
    ``churn_events`` link-failure events each; the resulting update
    messages feed the "updates" series of both figures.
    """
    world = build_world(seed=seed, scale=scale)
    graph = world.graph
    rng = make_rng(seed)
    model = model or PaddingBehaviorModel()

    # RouteViews/RIPE peers are a mix of core ISPs and edge networks;
    # half the monitors are top-degree ASes (this always includes the
    # Tier-1 clique, Figure 5's second series), half are random edge
    # ASes.  The edge monitors matter: they are the ones that rarely
    # see prepended best routes, which is what separates the paper's
    # "all" curve from the Tier-1 curve.
    count = min(num_monitors, len(graph))
    core = sorted(
        set(top_degree_monitors(graph, max(1, count // 2)))
        | set(world.topology.tier1)
    )
    edge_rng = derive_rng(rng, "edge-monitors")
    edge_pool = [asn for asn in world.topology.stubs if asn not in set(core)]
    edge = edge_rng.sample(edge_pool, min(count - len(core), len(edge_pool)))
    monitors = sorted(set(core) | set(edge))
    collector = RouteCollector(graph, monitors)
    ribs = build_monitor_ribs(
        graph,
        collector,
        num_prefixes=min(num_prefixes, len(graph) - 1),
        model=model,
        rng=derive_rng(rng, "ribs"),
        engine=world.engine,
    )

    churn_rng = derive_rng(rng, "churn")
    updates: list[UpdateMessage] = []
    prepending_first = sorted(
        ribs.origins,
        key=lambda prefix: (ribs.origins[prefix] not in ribs.prepending_origins, prefix),
    )
    for prefix in prepending_first[: min(churn_origins, len(prepending_first))]:
        origin = ribs.origins[prefix]
        updates.extend(
            simulate_update_stream(
                graph,
                origin,
                collector,
                prefix=prefix,
                prepending=ribs.prepending,
                events=churn_events,
                rng=churn_rng,
            )
        )

    tier1_monitors = [m for m in monitors if m in set(world.topology.tier1)]
    return MeasurementWorld(
        world=world,
        collector=collector,
        ribs=ribs,
        updates=updates,
        tier1_monitors=tier1_monitors,
    )
