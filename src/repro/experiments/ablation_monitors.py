"""Ablation — monitor-placement strategies (the paper's future work).

The paper evaluates only degree-ranked monitors and names vantage-point
selection for self-defence as future work (§V-B, §VIII).  This
ablation compares three placements at equal monitor budgets:

* ``top-degree`` — the paper's strategy;
* ``random`` — uniform over all ASes;
* ``victim-adjacent`` — per-victim monitors placed around the protected
  prefix owner (BFS rings), the self-defence deployment the paper
  sketches;
* ``greedy-cover`` — our set-cover optimiser
  (:mod:`repro.detection.placement`): monitors chosen to cover the
  customer cones of every potential attacker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.interception import simulate_interception
from repro.bgp.collectors import RouteCollector
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.monitors import (
    random_monitors,
    top_degree_monitors,
    victim_adjacent_monitors,
)
from repro.detection.placement import attacker_coverage, greedy_cover_monitors
from repro.detection.timing import detection_timing
from repro.exceptions import DetectionError, ExperimentError
from repro.experiments.base import ExperimentResult, build_world, sample_attack_pairs
from repro.utils.rand import derive_rng, make_rng

__all__ = ["AblationMonitorsConfig", "run"]


@dataclass(frozen=True)
class AblationMonitorsConfig:
    seed: int = 7
    scale: float = 1.0
    pairs: int = 100
    origin_padding: int = 3
    monitor_budget: int = 100


def run(config: AblationMonitorsConfig = AblationMonitorsConfig()) -> ExperimentResult:
    """Compare detection accuracy across placement strategies."""
    world = build_world(seed=config.seed, scale=config.scale)
    graph = world.graph
    rng = derive_rng(make_rng(config.seed), "ablation-monitors")
    pairs = sample_attack_pairs(world, config.pairs, rng)
    detector = ASPPInterceptionDetector(graph)
    budget = min(config.monitor_budget, len(graph) - 1)

    attacks = []
    for attacker, victim in pairs:
        result = simulate_interception(
            world.engine,
            victim=victim,
            attacker=attacker,
            origin_padding=config.origin_padding,
        )
        if result.report.after:
            attacks.append(result)
    if not attacks:
        raise ExperimentError("no effective attacks in the sampled pairs")

    top_monitors = top_degree_monitors(graph, budget)
    top_collector = RouteCollector(graph, top_monitors)
    random_collector = RouteCollector(
        graph, random_monitors(graph, budget, derive_rng(make_rng(config.seed), "mon-random"))
    )
    cover_monitors = greedy_cover_monitors(graph, budget)
    cover_collector = RouteCollector(graph, cover_monitors)

    def accuracy_fixed(collector: RouteCollector) -> float:
        detected = sum(
            1
            for result in attacks
            if detection_timing(result, collector, detector).detected
        )
        return 100 * detected / len(attacks)

    def accuracy_victim_adjacent() -> float:
        detected = 0
        for result in attacks:
            try:
                monitors = victim_adjacent_monitors(
                    graph, result.attack.victim, budget
                )
            except DetectionError:
                continue
            collector = RouteCollector(graph, monitors)
            detected += detection_timing(result, collector, detector).detected
        return 100 * detected / len(attacks)

    accuracies = {
        "top-degree (paper)": accuracy_fixed(top_collector),
        "random": accuracy_fixed(random_collector),
        "victim-adjacent": accuracy_victim_adjacent(),
        "greedy-cover (ours)": accuracy_fixed(cover_collector),
    }
    rows = [(name, round(value, 1)) for name, value in accuracies.items()]
    summary = {
        "effective_attacks": float(len(attacks)),
        "coverage_top_degree": attacker_coverage(graph, top_monitors),
        "coverage_greedy": attacker_coverage(graph, cover_monitors),
    }
    summary.update(
        {
            f"accuracy_pct_{name.split()[0].replace('-', '_')}": value
            for name, value in accuracies.items()
        }
    )
    return ExperimentResult(
        experiment_id="ablation-monitors",
        title=f"Monitor placement strategies at budget {budget}",
        params={
            "pairs": config.pairs,
            "monitor_budget": budget,
            "origin_padding": config.origin_padding,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("placement", "accuracy_%"),
        rows=rows,
        summary=summary,
        notes=[
            "victim-adjacent placement is the self-defence deployment the "
            "paper proposes as future work: monitors ringed around each "
            "protected prefix owner"
        ],
    )
