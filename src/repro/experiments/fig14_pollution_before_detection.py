"""Figure 14 — fraction of ASes polluted before detection.

With 150 top-degree monitors and 200 random attacker/victim pairs, the
paper plots the CDF of the fraction of ASes already polluted when the
first monitor can raise the alarm: 80% of experiments are caught with
at most ~37% of ASes polluted.  The logical clock is the engine's
adoption round (the number of AS-hops the malicious news travelled);
the detection round is the earliest adoption round over the alarming
monitors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.interception import simulate_interception
from repro.bgp.collectors import RouteCollector
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.monitors import top_degree_monitors
from repro.detection.timing import detection_timing
from repro.exceptions import ExperimentError
from repro.experiments.base import (
    ExperimentResult,
    build_world,
    instrumented,
    sample_attack_pairs,
)
from repro.telemetry.metrics import RunMetrics
from repro.utils.cdf import EmpiricalCDF
from repro.utils.rand import derive_rng, make_rng

__all__ = ["Fig14Config", "run"]

_GRID = (0.0, 0.05, 0.1, 0.2, 0.3, 0.37, 0.5, 0.7, 0.9, 1.0)


@dataclass(frozen=True)
class Fig14Config:
    seed: int = 7
    scale: float = 1.0
    pairs: int = 200
    origin_padding: int = 3
    monitors: int = 150


@instrumented("fig14")
def run(
    config: Fig14Config = Fig14Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 14's CDF of pollution-before-detection."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    graph = world.graph
    rng = derive_rng(make_rng(config.seed), "fig14-pairs")
    pairs = sample_attack_pairs(world, config.pairs, rng)
    detector = ASPPInterceptionDetector(graph)
    collector = RouteCollector(
        graph, top_degree_monitors(graph, min(config.monitors, len(graph)))
    )

    fractions: list[float] = []
    stealthy_fractions: list[float] = []
    detected_count = 0
    for attacker, victim in pairs:
        result = simulate_interception(
            world.engine,
            victim=victim,
            attacker=attacker,
            origin_padding=config.origin_padding,
        )
        if not result.report.after:
            continue  # no AS was polluted: nothing to time
        timing = detection_timing(result, collector, detector, metrics=metrics)
        detected_count += timing.detected
        # An undetected attack counts as fully polluted before detection
        # (fraction 1.0), matching DetectionTiming's convention.
        fractions.append(timing.fraction_polluted_before_detection)
        stealthy = detection_timing(
            result, collector, detector, attacker_feeds_collector=False
        )
        stealthy_fractions.append(stealthy.fraction_polluted_before_detection)
    if not fractions:
        raise ExperimentError("no effective attacks in the sampled pairs")

    cdf = EmpiricalCDF(fractions)
    stealthy_cdf = EmpiricalCDF(stealthy_fractions)
    rows = [(x, round(cdf(x), 3), round(stealthy_cdf(x), 3)) for x in _GRID]
    summary = {
        "effective_attacks": float(len(fractions)),
        "detected_attacks": float(detected_count),
        "cdf_at_0.37": cdf(0.37),
        "median_fraction": cdf.quantile(0.5),
        "stealthy_cdf_at_0.37": stealthy_cdf(0.37),
    }
    return ExperimentResult(
        experiment_id="fig14",
        title="Fraction of ASes polluted before detection (CDF)",
        params={
            "pairs": config.pairs,
            "monitors": config.monitors,
            "origin_padding": config.origin_padding,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("fraction_polluted_before_detection", "CDF", "CDF_stealthy_attacker"),
        rows=rows,
        summary=summary,
        notes=[
            "paper: 80% of experiments detected with at most ~37% of ASes "
            "polluted (150 top-degree monitors); undetected attacks are "
            "counted at fraction 1.0",
            "CDF assumes an attacker that also feeds its collector session "
            "(round-0 detection when the attacker is a monitor); the "
            "stealthy series suppresses that feed, so detection waits for "
            "pollution to reach an honest monitor",
        ],
    )
