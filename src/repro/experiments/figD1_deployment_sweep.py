"""Figure D1 — residual pollution vs. security-policy deployment.

The paper stops at detection; this companion figure asks the natural
follow-up: *which* deployed defence actually blunts the interception,
and how much partial deployment buys.  A top Tier-1 victim is attacked
by the largest Tier-2 AS (λ=3, policy-violating export — the leak
variant of Figures 11-12, which is the traffic a path-plausibility
check can actually see).  For each policy (``rov``, ``aspa``,
``prependguard``) and each deployment strategy we sweep the deployed
fraction and report the residual polluted share.

Expected shape: ROV is *exactly* flat — the interception announces the
true origin, so origin validation can never object (a provable negative
control, asserted as bit-equality against the undefended run).  The
ASPA-like path check and the prepend-sanitization filter both decrease
monotonically with deployment, with top-degree-first dominating random
placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world, instrumented
from repro.experiments.sweeps import deployment_sweep
from repro.runner import BaselineCache
from repro.telemetry.metrics import RunMetrics
from repro.topology.tiers import classify_tiers, customer_cone

__all__ = ["FigD1Config", "run"]

#: every real policy; the undefended control is added by ``run``.
POLICY_SERIES = ("rov", "aspa", "prependguard")
STRATEGY_SERIES = ("random", "top-degree-first", "tier1-only", "victim-cone")


@dataclass(frozen=True)
class FigD1Config:
    seed: int = 7
    scale: float = 1.0
    padding: int = 3
    fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
    policies: tuple[str, ...] = POLICY_SERIES
    strategies: tuple[str, ...] = STRATEGY_SERIES
    violate_policy: bool = True
    #: fan the deployment points out over worker processes (None = serial)
    workers: int | None = None


def _monotone_nonincreasing(values: list[float]) -> bool:
    return all(later <= earlier for earlier, later in zip(values, values[1:]))


@instrumented("figD1")
def run(
    config: FigD1Config = FigD1Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Sweep deployment fraction for each policy × strategy series."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    graph = world.graph
    tiers = classify_tiers(graph)
    tier1 = sorted(
        world.topology.tier1, key=lambda t: (-len(customer_cone(graph, t)), t)
    )
    if not tier1:
        raise ExperimentError("need a Tier-1 AS to act as victim")
    victim = tier1[0]
    # The attacker is the biggest Tier-2 transit AS: a Tier-1 leaker
    # already pollutes ~everything through valley-free export alone,
    # leaving path-plausibility checks nothing to bite on.
    tier2 = [
        asn
        for asn in graph.ases
        if tiers.get(asn) == 2 and asn != victim and graph.customers_of(asn)
    ]
    if not tier2:
        raise ExperimentError("need a Tier-2 transit AS to act as attacker")
    attacker = min(tier2, key=lambda t: (-len(customer_cone(graph, t)), t))

    cache = BaselineCache(world.engine, metrics=metrics)
    rows: list[tuple[object, ...]] = []
    series: dict[tuple[str, str], list[float]] = {}

    control = deployment_sweep(
        world.engine,
        victim=victim,
        attacker=attacker,
        padding=config.padding,
        policy="none",
        fractions=(0.0,),
        violate_policy=config.violate_policy,
        workers=config.workers,
        cache=cache,
        metrics=metrics,
    )
    control_after = control[0].row()[2]
    rows.append(("none", "-", 0.0, round(control_after, 1)))

    for policy in config.policies:
        for strategy in config.strategies:
            points = deployment_sweep(
                world.engine,
                victim=victim,
                attacker=attacker,
                padding=config.padding,
                policy=policy,
                strategy=strategy,
                fractions=config.fractions,
                seed=config.seed,
                violate_policy=config.violate_policy,
                workers=config.workers,
                cache=cache,
                metrics=metrics,
            )
            afters = [point.row()[2] for point in points]
            series[(policy, strategy)] = afters
            rows.extend(
                (policy, strategy, round(100 * fraction, 1), round(after, 1))
                for fraction, after in zip(config.fractions, afters)
            )

    rov_deviation = max(
        (
            abs(after - control_after)
            for (policy, _), afters in series.items()
            if policy == "rov"
            for after in afters
        ),
        default=0.0,
    )
    summary: dict[str, float] = {
        "control_after_pct": control_after,
        "rov_max_abs_deviation_pct": rov_deviation,
    }
    for policy in config.policies:
        key = (policy, "top-degree-first")
        if key not in series:
            continue
        afters = series[key]
        summary[f"{policy}_monotone_top_degree"] = float(
            _monotone_nonincreasing(afters)
        )
        summary[f"{policy}_residual_pct_full"] = afters[-1]

    return ExperimentResult(
        experiment_id="figD1",
        title=(
            f"Residual pollution vs deployment — Tier-2 AS{attacker} "
            f"intercepts Tier-1 AS{victim} (λ={config.padding}, leak variant)"
        ),
        params={
            "attacker": attacker,
            "victim": victim,
            "padding": config.padding,
            "violate_policy": config.violate_policy,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("policy", "strategy", "deployed_%", "after_hijack_%"),
        rows=rows,
        summary=summary,
        notes=[
            "ROV is a provable no-op against interception (true origin is "
            "announced); its deviation from the undefended control must be "
            "exactly zero",
            "ASPA-like and prepend-sanitization curves decrease with "
            "deployment; top-degree-first placement dominates random",
        ],
    )
