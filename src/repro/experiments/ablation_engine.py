"""Ablation — worklist engine vs. the paper's three-phase algorithm.

DESIGN.md decision 1: the repository carries two propagation
algorithms.  The general worklist engine supports attackers, siblings,
policy violation and warm starts; the paper's Figure-2 three-phase
algorithm is faster but only answers the attack-free case (and, via
:mod:`repro.bgp.uphill_hijack`, the paper's approximate attacked
case).  This ablation quantifies the cost of generality (runtime
ratio), verifies the attack-free algorithms agree on every AS, and
measures how far the paper's Figure-2 hijack approximation drifts from
the exact fixpoint on attacked worlds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.attack.interception import simulate_interception
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.uphill import three_phase_routes
from repro.bgp.uphill_hijack import paper_hijack_estimate
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world
from repro.topology.generators import InternetTopologyConfig
from repro.utils.rand import derive_rng, make_rng

__all__ = ["AblationEngineConfig", "run"]


@dataclass(frozen=True)
class AblationEngineConfig:
    seed: int = 7
    scale: float = 1.0
    origins: int = 20
    origin_padding: int = 3


def run(config: AblationEngineConfig = AblationEngineConfig()) -> ExperimentResult:
    """Time both algorithms over the same origins and check agreement."""
    # The three-phase oracle does not model sibling edges.
    topo_config = InternetTopologyConfig().scaled(config.scale)
    topo_config = type(topo_config)(
        **{**topo_config.__dict__, "sibling_pairs": 0}
    )
    world = build_world(seed=config.seed, config=topo_config)
    graph = world.graph
    rng = derive_rng(make_rng(config.seed), "ablation-engine")
    origins = rng.sample(graph.ases, min(config.origins, len(graph)))

    engine_seconds = 0.0
    oracle_seconds = 0.0
    disagreements = 0
    for origin in origins:
        prepending = PrependingPolicy.uniform_origin(origin, config.origin_padding)
        start = time.perf_counter()
        outcome = world.engine.propagate(origin, prepending=prepending)
        engine_seconds += time.perf_counter() - start
        start = time.perf_counter()
        oracle = three_phase_routes(graph, origin, prepending=prepending)
        oracle_seconds += time.perf_counter() - start
        for asn in graph.ases:
            route = outcome.best.get(asn)
            reference = oracle.get(asn)
            if (route is None) != (reference is None):
                disagreements += 1
            elif route is not None and (
                route.pref != reference.pref or len(route.path) != reference.length
            ):
                disagreements += 1
    if disagreements:
        raise ExperimentError(
            f"engine and three-phase oracle disagree on {disagreements} routes"
        )

    # Attacked worlds: the paper's Figure-2 hijack approximation vs the
    # exact engine, compared on the headline pollution statistic.
    pair_rng = derive_rng(make_rng(config.seed), "ablation-hijack")
    hijack_diffs: list[float] = []
    for _ in range(max(1, config.origins // 2)):
        attacker = pair_rng.choice(world.topology.transit_ases)
        victim = pair_rng.choice([a for a in graph.ases if a != attacker])
        exact = simulate_interception(
            world.engine,
            victim=victim,
            attacker=attacker,
            origin_padding=config.origin_padding,
        )
        approx = paper_hijack_estimate(
            graph,
            victim=victim,
            attacker=attacker,
            origin_padding=config.origin_padding,
        )
        hijack_diffs.append(
            abs(exact.report.after_fraction - approx.polluted_fraction())
        )

    rows = [
        ("worklist engine", round(engine_seconds, 4)),
        ("three-phase (paper Fig. 2)", round(oracle_seconds, 4)),
    ]
    summary = {
        "origins": float(len(origins)),
        "engine_seconds": engine_seconds,
        "oracle_seconds": oracle_seconds,
        "engine_over_oracle": engine_seconds / oracle_seconds if oracle_seconds else 0.0,
        "disagreements": float(disagreements),
        "hijack_pollution_max_abs_diff": max(hijack_diffs),
        "hijack_pollution_mean_abs_diff": sum(hijack_diffs) / len(hijack_diffs),
    }
    return ExperimentResult(
        experiment_id="ablation-engine",
        title="Worklist engine vs three-phase algorithm (cost of generality)",
        params={
            "origins": len(origins),
            "origin_padding": config.origin_padding,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("algorithm", "total_seconds"),
        rows=rows,
        summary=summary,
        notes=[
            "both attack-free algorithms agree on (preference class, path "
            "length) everywhere",
            "the paper's Figure-2 hijack approximation tracks the exact "
            "engine's pollution fraction (see hijack_pollution_*_diff)",
        ],
    )
