"""Figure 13 — detection accuracy with increasing monitors.

200 random attacker/victim pairs are hijacked; monitors are the top-d
ASes by degree.  The paper reports 92% of attacks detected with 70
monitors and above 99% beyond 150 (of ~33k ASes).  Our topology is
~20x smaller, so the x-axis spans a proportionally larger *fraction*
of ASes; the shape to reproduce is the monotone rise to saturation.

Accuracy is measured over *effective* attacks — pairs where the
stripped route polluted at least one AS.  (A valley-free attacker that
nobody routes through has announced nothing; there is no attack to
detect.)

Two series are reported: the batch comparison of converged snapshots
(the conservative reading of the paper's method) and the *streaming*
detector consuming the attack's update sequence as it propagates —
which provably dominates it, because mid-stream the not-yet-switched
monitors still exhibit the padded route, evidence that vanishes from
the final converged view.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.interception import simulate_interception
from repro.bgp.collectors import RouteCollector
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.monitors import top_degree_monitors
from repro.detection.streaming import StreamingDetector, attack_update_stream
from repro.detection.timing import detection_timing
from repro.exceptions import ExperimentError
from repro.experiments.base import (
    ExperimentResult,
    build_world,
    instrumented,
    sample_attack_pairs,
)
from repro.telemetry.metrics import RunMetrics
from repro.utils.rand import derive_rng, make_rng

__all__ = ["Fig13Config", "run"]


@dataclass(frozen=True)
class Fig13Config:
    seed: int = 7
    scale: float = 1.0
    pairs: int = 200
    origin_padding: int = 3
    monitor_counts: tuple[int, ...] = (10, 30, 50, 70, 100, 150, 200, 250, 300, 400)


@instrumented("fig13")
def run(
    config: Fig13Config = Fig13Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 13: % of attacks detected vs number of monitors."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    graph = world.graph
    rng = derive_rng(make_rng(config.seed), "fig13-pairs")
    pairs = sample_attack_pairs(world, config.pairs, rng)
    detector = ASPPInterceptionDetector(graph)

    attacks = []
    for attacker, victim in pairs:
        result = simulate_interception(
            world.engine,
            victim=victim,
            attacker=attacker,
            origin_padding=config.origin_padding,
        )
        if result.report.after:
            attacks.append(result)
    if not attacks:
        raise ExperimentError("no effective attacks in the sampled pairs")

    rows = []
    summary: dict[str, float] = {"effective_attacks": float(len(attacks))}
    for count in config.monitor_counts:
        if count > len(graph):
            continue
        collector = RouteCollector(graph, top_degree_monitors(graph, count))
        detected = 0
        stream_detected = 0
        for result in attacks:
            if detection_timing(result, collector, detector, metrics=metrics).detected:
                detected += 1
            streaming = StreamingDetector(detector, metrics=metrics)
            streaming.prime(collector.snapshot(result.baseline))
            if streaming.consume_all(attack_update_stream(result, collector)):
                stream_detected += 1
        accuracy = 100 * detected / len(attacks)
        stream_accuracy = 100 * stream_detected / len(attacks)
        rows.append((count, detected, round(accuracy, 1), round(stream_accuracy, 1)))
        summary[f"accuracy_pct_{count}_monitors"] = accuracy
        summary[f"streaming_accuracy_pct_{count}_monitors"] = stream_accuracy
    return ExperimentResult(
        experiment_id="fig13",
        title="Detection accuracy with increasing monitors",
        params={
            "pairs": config.pairs,
            "origin_padding": config.origin_padding,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("monitors", "attacks_detected", "accuracy_%", "streaming_accuracy_%"),
        rows=rows,
        summary=summary,
        notes=[
            "paper: 92% detected with 70 monitors, >99% beyond 150 (topology "
            "~33k ASes); ours is ~20x smaller so the curve saturates at a "
            "proportionally larger monitor fraction — the monotone shape is "
            "the reproduced result",
            "the streaming series (real-time update consumption, the paper's "
            "deployment model) dominates the batch series: transient padded "
            "evidence is visible mid-propagation but gone at convergence",
        ],
    )
