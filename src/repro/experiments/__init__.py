"""Experiment harnesses: one module per paper figure/table, plus ablations.

Each module exposes a frozen ``*Config`` dataclass and
``run(config) -> ExperimentResult``.  The :data:`REGISTRY` maps
experiment ids to ``(config factory, run function)`` so the CLI and the
benchmark suite can drive everything uniformly::

    from repro.experiments import REGISTRY
    config_factory, run = REGISTRY["fig07"]
    print(run(config_factory()).to_text())
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    ablation_defense,
    ablation_engine,
    ablation_false_positives,
    ablation_monitors,
    ablation_scale,
    fig01_facebook_replay,
    fig05_prepending_fraction,
    fig06_padding_counts,
    fig07_tier1_pairs,
    fig08_random_pairs,
    fig09_tier1_vs_tier1,
    fig10_tier1_vs_tier3,
    fig11_stub_vs_tier1,
    fig12_stub_vs_stub,
    fig13_detection_accuracy,
    fig14_pollution_before_detection,
    figD1_deployment_sweep,
    figD2_policy_tiers,
    figM1_time_to_recovery,
    figM2_feed_loss,
    table1_traceroute,
)
from repro.experiments.base import ExperimentResult, ExperimentWorld, build_world

__all__ = ["REGISTRY", "ExperimentResult", "ExperimentWorld", "build_world", "run_experiment"]

#: experiment id -> (config factory, run function)
REGISTRY: dict[str, tuple[Callable[[], object], Callable[..., ExperimentResult]]] = {
    "table1": (table1_traceroute.Table1Config, table1_traceroute.run),
    "fig01": (fig01_facebook_replay.Fig01Config, fig01_facebook_replay.run),
    "fig05": (fig05_prepending_fraction.Fig05Config, fig05_prepending_fraction.run),
    "fig06": (fig06_padding_counts.Fig06Config, fig06_padding_counts.run),
    "fig07": (fig07_tier1_pairs.Fig07Config, fig07_tier1_pairs.run),
    "fig08": (fig08_random_pairs.Fig08Config, fig08_random_pairs.run),
    "fig09": (fig09_tier1_vs_tier1.Fig09Config, fig09_tier1_vs_tier1.run),
    "fig10": (fig10_tier1_vs_tier3.Fig10Config, fig10_tier1_vs_tier3.run),
    "fig11": (fig11_stub_vs_tier1.Fig11Config, fig11_stub_vs_tier1.run),
    "fig12": (fig12_stub_vs_stub.Fig12Config, fig12_stub_vs_stub.run),
    "fig13": (fig13_detection_accuracy.Fig13Config, fig13_detection_accuracy.run),
    "fig14": (
        fig14_pollution_before_detection.Fig14Config,
        fig14_pollution_before_detection.run,
    ),
    "figD1": (figD1_deployment_sweep.FigD1Config, figD1_deployment_sweep.run),
    "figD2": (figD2_policy_tiers.FigD2Config, figD2_policy_tiers.run),
    "figM1": (figM1_time_to_recovery.FigM1Config, figM1_time_to_recovery.run),
    "figM2": (figM2_feed_loss.FigM2Config, figM2_feed_loss.run),
    "ablation-engine": (ablation_engine.AblationEngineConfig, ablation_engine.run),
    "ablation-monitors": (
        ablation_monitors.AblationMonitorsConfig,
        ablation_monitors.run,
    ),
    "ablation-defense": (
        ablation_defense.AblationDefenseConfig,
        ablation_defense.run,
    ),
    "ablation-scale": (
        ablation_scale.AblationScaleConfig,
        ablation_scale.run,
    ),
    "ablation-fp": (
        ablation_false_positives.AblationFalsePositivesConfig,
        ablation_false_positives.run,
    ),
}


def run_experiment(experiment_id: str, config: object | None = None) -> ExperimentResult:
    """Run a registered experiment by id (default config if none given)."""
    try:
        config_factory, runner = REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    return runner(config if config is not None else config_factory())
