"""Shared λ-sweep machinery for Figures 9-12.

Each of those figures fixes one attacker/victim pair and sweeps the
number of prepended ASNs, plotting the fraction of polluted ASes for
one or two attacker policies.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.attack.interception import simulate_interception
from repro.bgp.engine import PropagationEngine

__all__ = ["padding_sweep"]


def padding_sweep(
    engine: PropagationEngine,
    *,
    victim: int,
    attacker: int,
    paddings: Sequence[int],
    violate_policy: bool = False,
) -> list[tuple[int, float, float]]:
    """Run the attack for each λ; return ``(λ, before%, after%)`` rows.

    Fractions are percentages of ASes whose best path traverses the
    attacker, matching the paper's y-axis.
    """
    rows: list[tuple[int, float, float]] = []
    for padding in paddings:
        result = simulate_interception(
            engine,
            victim=victim,
            attacker=attacker,
            origin_padding=padding,
            violate_policy=violate_policy,
        )
        rows.append(
            (
                padding,
                100 * result.report.before_fraction,
                100 * result.report.after_fraction,
            )
        )
    return rows
