"""Shared sweep machinery for Figures 7-12, backed by the runner.

Each λ-sweep figure fixes one attacker/victim pair and sweeps the
number of prepended ASNs; the pair-grid figures fix λ and sweep
attacker/victim pairs.  Both decompose into independent
:class:`~repro.runner.SweepPointTask` instances, so they share one
execution path: serial in-process (with the baseline cache warm across
points) or fanned out over a process pool.  The task list, and
therefore the result rows, are identical for every worker count.

The pooled path runs under the :class:`~repro.runner.SupervisedExecutor`
failure model — a dead worker respawns the pool and re-executes only
the in-flight points, so a sweep survives worker OOMs/segfaults with
bit-identical rows.  ``checkpoint`` journals every finished point to a
JSONL file and a rerun pointed at the same path replays completed
points instead of re-converging them.  Sweeps need complete data, so a
task that exhausts its retry budget raises :class:`SimulationError`
(campaigns, by contrast, collect structured failures).

When a :class:`~repro.store.CampaignStore` is attached — explicitly via
``store=`` or ambiently via :func:`repro.store.use_store` — execution
routes through the :class:`~repro.runner.ShardedScheduler`: cells whose
fingerprints are already stored replay from the log (a fully warm
store performs *zero* engine propagations, not even baseline
prefetches), only missing cells run (optionally split across
work-stealing ``shards``), and fresh results stream back for every
later campaign to reuse.  Rows stay bit-identical either way.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.bgp.engine import PropagationEngine
from repro.exceptions import SimulationError
from repro.runner import (
    BaselineCache,
    CheckpointJournal,
    DeploymentPointResult,
    DeploymentPointTask,
    FaultPlan,
    RetryPolicy,
    ShardedScheduler,
    SupervisedExecutor,
    SweepPointResult,
    SweepPointTask,
    TaskFailure,
    WorkerContext,
    WorkerSpec,
    execute_task,
    resolve_workers,
)
from repro.store.active import get_active_store
from repro.telemetry.metrics import RunMetrics

__all__ = ["exhaustive_grid", "padding_sweep", "pair_grid", "deployment_sweep"]


def _prefetch_families(ctx: WorkerContext, tasks: Sequence[SweepPointTask]) -> None:
    """Warm the whole uniform-λ family for each victim in one canonical
    pass (repeat victims are already-cached no-ops).

    On a vectorized-backend engine the distinct victims converge first
    as one batched walk (a key-matrix column each), so a pair grid's
    canonical baselines cost one frontier sweep instead of one
    convergence per victim; the per-victim λ derivations then ride on
    the batched results."""
    by_prefix: dict[str, list[int]] = {}
    for task in tasks:
        by_prefix.setdefault(task.prefix, []).append(task.victim)
    for prefix, victims in by_prefix.items():
        ctx.cache.prefetch_canonical_batch(victims, prefix=prefix)
    for task in tasks:
        ctx.cache.prefetch_uniform(
            task.victim,
            [t.padding for t in tasks if t.victim == task.victim],
            prefix=task.prefix,
        )


def _raise_on_failures(results: list) -> list:
    """Sweep figures need every point; surface quarantined tasks loudly."""
    failures = [r for r in results if isinstance(r, TaskFailure)]
    if failures:
        first = failures[0]
        raise SimulationError(
            f"{len(failures)} sweep task(s) failed permanently after "
            f"{first.attempts} attempts (first: {first.kind}: {first.error})"
        )
    return results


def _run_tasks(
    engine: PropagationEngine,
    tasks: Sequence[SweepPointTask],
    *,
    workers: int | None,
    cache: BaselineCache | None,
    metrics: RunMetrics | None = None,
    checkpoint: str | Path | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    fingerprint_context: str | None = None,
    store=None,
    shards: int | None = None,
) -> list:
    """Run sweep tasks serially on ``engine`` or across a process pool.

    With ``metrics`` enabled, the serial path records straight into the
    caller's registry (temporarily wiring it into the adopted engine and
    cache), and the pooled path merges the per-task deltas the workers
    ship back, so the deterministic counters come out identical for
    every worker count.

    A ``store`` (explicit, or ambient via :func:`repro.store.use_store`)
    or ``shards > 1`` routes execution through the
    :class:`~repro.runner.ShardedScheduler` — store hits replay without
    touching the engine, only missing cells are prefetched and run, and
    fresh results stream back into the store.
    """
    enabled = metrics is not None and metrics.enabled
    spec = WorkerSpec(
        engine.graph,
        max_activations=engine.max_activations,
        metrics_enabled=enabled,
        backend=engine.backend,
        engine_mode=engine.mode,
        fault_plan=faults,
    )
    if store is None:
        store = get_active_store()
    shard_count = 1 if shards is None else shards
    journal = CheckpointJournal(checkpoint) if checkpoint is not None else None
    supervise = journal is not None or faults is not None or retry is not None
    try:
        if store is not None or shard_count > 1:
            serial = shard_count == 1 and resolve_workers(workers) == 1
            with ShardedScheduler(
                spec,
                shards=shard_count,
                workers=workers,
                retry=retry,
                store=store,
                journal=journal,
                fingerprint_context=fingerprint_context,
                metrics=metrics,
                engine=engine if serial else None,
                cache=cache if serial else None,
                prepare=_prefetch_families,
            ) as scheduler:
                return _raise_on_failures(scheduler.run(tasks))
        if resolve_workers(workers) == 1:
            prev_engine_metrics = engine.metrics
            prev_cache_metrics = cache.metrics if cache is not None else None
            try:
                if supervise:
                    with SupervisedExecutor(
                        spec,
                        workers=1,
                        engine=engine,
                        cache=cache,
                        metrics=metrics,
                        retry=retry,
                        journal=journal,
                        fingerprint_context=fingerprint_context,
                    ) as executor:
                        ctx = executor.context
                        assert ctx is not None
                        _prefetch_families(ctx, tasks)
                        return _raise_on_failures(executor.run(tasks))
                ctx = WorkerContext(spec, engine=engine, cache=cache, metrics=metrics)
                _prefetch_families(ctx, tasks)
                return [execute_task(task, ctx) for task in tasks]
            finally:
                engine.metrics = prev_engine_metrics
                if cache is not None:
                    cache.metrics = prev_cache_metrics
        with SupervisedExecutor(
            spec,
            workers=workers,
            metrics=metrics if enabled else None,
            retry=retry,
            journal=journal,
            fingerprint_context=fingerprint_context,
        ) as executor:
            return _raise_on_failures(executor.run(tasks))
    finally:
        if journal is not None:
            journal.close()


def padding_sweep(
    engine: PropagationEngine,
    *,
    victim: int,
    attacker: int,
    paddings: Sequence[int],
    violate_policy: bool = False,
    workers: int | None = None,
    cache: BaselineCache | None = None,
    metrics: RunMetrics | None = None,
    checkpoint: str | Path | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    store=None,
    shards: int | None = None,
) -> list[tuple[int, float, float]]:
    """Run the attack for each λ; return ``(λ, before%, after%)`` rows.

    Fractions are percentages of ASes whose best path traverses the
    attacker, matching the paper's y-axis.  ``workers`` fans the λ
    points out over that many processes (``None``/``0``/``1`` = serial
    in-process); the rows are bit-identical for every worker count, and
    — because each point is a pure function of its inputs — also under
    any worker crashes the supervised pool recovers from.  ``cache``
    optionally shares one :class:`BaselineCache` across several serial
    sweeps on the same engine (e.g. a figure's valley-free and
    policy-violating series, whose baselines coincide).  ``metrics``
    optionally records engine/cache/worker telemetry into a
    :class:`RunMetrics` registry without affecting the rows.
    ``checkpoint`` journals finished points for crash/resume; ``retry``
    tunes the supervision policy; ``faults`` injects deterministic
    failures (chaos testing).
    """
    tasks = [
        SweepPointTask(
            victim=victim,
            attacker=attacker,
            padding=padding,
            violate_policy=violate_policy,
        )
        for padding in paddings
    ]
    results = _run_tasks(
        engine,
        tasks,
        workers=workers,
        cache=cache,
        metrics=metrics,
        checkpoint=checkpoint,
        retry=retry,
        faults=faults,
        store=store,
        shards=shards,
    )
    return [result.row() for result in results]


def pair_grid(
    engine: PropagationEngine,
    pairs: Sequence[tuple[int, int]],
    *,
    origin_padding: int,
    workers: int | None = None,
    cache: BaselineCache | None = None,
    metrics: RunMetrics | None = None,
    checkpoint: str | Path | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    store=None,
    shards: int | None = None,
) -> list[SweepPointResult]:
    """Run one fixed-λ attack per ``(attacker, victim)`` pair.

    Results come back in ``pairs`` order regardless of worker count.
    Serially, victims recurring across pairs (Figure 7's Tier-1 × Tier-1
    grid) hit the baseline cache instead of re-converging.  See
    :func:`padding_sweep` for ``checkpoint``/``retry``/``faults``.
    """
    tasks = [
        SweepPointTask(victim=victim, attacker=attacker, padding=origin_padding)
        for attacker, victim in pairs
    ]
    return _run_tasks(
        engine,
        tasks,
        workers=workers,
        cache=cache,
        metrics=metrics,
        checkpoint=checkpoint,
        retry=retry,
        faults=faults,
        store=store,
        shards=shards,
    )


def exhaustive_grid(
    engine: PropagationEngine,
    *,
    attackers: Sequence[int],
    victims: Sequence[int],
    origin_padding: int,
    workers: int | None = None,
    cache: BaselineCache | None = None,
    metrics: RunMetrics | None = None,
    checkpoint: str | Path | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    store=None,
    shards: int | None = None,
) -> list[SweepPointResult]:
    """Every attacker × every victim at fixed λ — the full campaign grid.

    The grid enumerates the cross product deterministically (``attackers``
    outer, ``victims`` inner, self-pairs skipped) instead of drawing a
    sampled pool, which is the coverage the per-pair impact literature
    needs (PAPERS.md: hijack-impact estimation at full grid coverage).
    The cell order — and therefore the result rows and every journaled
    fingerprint — is a pure function of the two pools, so a
    ``checkpoint`` resume replays exactly the completed cells no matter
    where the previous run died.

    O(attackers × victims) full re-propagations make dense grids
    intractable; run this under a delta-mode engine
    (``PropagationEngine(..., mode="delta")``), where each victim
    converges once and every cell re-converges only the attacker's
    affected cone (bit-identical rows either way — the golden grid test
    pins delta against per-pair full recomputes cell for cell).
    """
    pairs = [(a, v) for a in attackers for v in victims if a != v]
    if not pairs:
        raise SimulationError("exhaustive grid needs at least one attacker≠victim cell")
    return pair_grid(
        engine,
        pairs,
        origin_padding=origin_padding,
        workers=workers,
        cache=cache,
        metrics=metrics,
        checkpoint=checkpoint,
        retry=retry,
        faults=faults,
        store=store,
        shards=shards,
    )


def deployment_sweep(
    engine: PropagationEngine,
    *,
    victim: int,
    attacker: int,
    padding: int,
    policy: str,
    strategy: str = "top-degree-first",
    fractions: Sequence[float],
    seed: int = 0,
    violate_policy: bool = True,
    workers: int | None = None,
    cache: BaselineCache | None = None,
    metrics: RunMetrics | None = None,
    checkpoint: str | Path | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    store=None,
    shards: int | None = None,
) -> list[DeploymentPointResult]:
    """Run the attack once per deployment fraction of a security policy.

    Each point deploys ``policy`` (``"rov"``, ``"aspa"``,
    ``"prependguard"``, or ``"none"`` for the undefended control) at
    ``fraction`` of the ``strategy``'s candidate pool and measures
    residual pollution; results come back in ``fractions`` order for
    any worker count.  The honest baseline stays policy-free (one
    cached convergence serves every fraction); the deployer sets are
    nested across fractions, so the resulting curve is interpretable as
    "what does one more deployment step buy".  ``violate_policy``
    defaults to True — the paper's leaking attacker, the variant
    path-plausibility defences can actually see.  See
    :func:`padding_sweep` for ``workers``/``metrics``/``checkpoint``/
    ``retry``/``faults``; the security configuration itself is carried
    in the task fingerprints, so a resume against a journal from a
    different policy setup replays nothing.
    """
    tasks = [
        DeploymentPointTask(
            victim=victim,
            attacker=attacker,
            padding=padding,
            policy=policy,
            strategy=strategy,
            fraction=fraction,
            seed=seed,
            violate_policy=violate_policy,
        )
        for fraction in fractions
    ]
    return _run_tasks(
        engine,
        tasks,
        workers=workers,
        cache=cache,
        metrics=metrics,
        checkpoint=checkpoint,
        retry=retry,
        faults=faults,
        store=store,
        shards=shards,
    )
