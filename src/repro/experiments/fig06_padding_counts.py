"""Figure 6 — number of duplicate ASNs.

The paper plots the distribution of the padding count (longest run of
one ASN) over observed routes, for routing tables and for update
files, on a log-scaled fraction axis.  Expected shape: mode at 2
(~34%), 3 (~22%), a long geometric tail, ~1% above 10, and the updates
series heavier-tailed than the tables series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MeasurementError
from repro.experiments.base import ExperimentResult, instrumented
from repro.telemetry.metrics import RunMetrics
from repro.experiments.measurement_world import build_measurement_world
from repro.measurement.characterize import padding_count_distribution, update_paths

__all__ = ["Fig06Config", "run"]


@dataclass(frozen=True)
class Fig06Config:
    seed: int = 7
    scale: float = 1.0
    num_monitors: int = 60
    num_prefixes: int = 400
    churn_origins: int = 40
    churn_events: int = 2


@instrumented("fig06")
def run(
    config: Fig06Config = Fig06Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 6's two padding-count distributions."""
    data = build_measurement_world(
        seed=config.seed,
        scale=config.scale,
        num_monitors=config.num_monitors,
        num_prefixes=config.num_prefixes,
        churn_origins=config.churn_origins,
        churn_events=config.churn_events,
    )
    table_dist = padding_count_distribution(data.ribs.all_paths())
    try:
        updates_dist = padding_count_distribution(update_paths(data.updates))
    except MeasurementError:
        updates_dist = {}

    rows: list[tuple[object, ...]] = []
    all_counts = sorted(set(table_dist) | set(updates_dist))
    for count in all_counts:
        rows.append(
            (
                count,
                round(table_dist.get(count, 0.0), 5),
                round(updates_dist.get(count, 0.0), 5),
            )
        )
    summary = {
        "table_fraction_pad2": table_dist.get(2, 0.0),
        "table_fraction_pad3": table_dist.get(3, 0.0),
        "table_fraction_above10": sum(v for k, v in table_dist.items() if k > 10),
        "max_padding_observed": float(max(all_counts)) if all_counts else 0.0,
    }
    if updates_dist:
        summary["updates_fraction_above10"] = sum(
            v for k, v in updates_dist.items() if k > 10
        )
    return ExperimentResult(
        experiment_id="fig06",
        title="Number of duplicate ASNs (fraction of prepended routes)",
        params={
            "monitors": config.num_monitors,
            "prefixes": config.num_prefixes,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("padding_count", "fraction_table", "fraction_updates"),
        rows=rows,
        summary=summary,
        notes=[
            "paper: 34% repeat twice, 22% three times, ~1% more than ten "
            "times; update routes show larger duplications than table routes"
        ],
    )
