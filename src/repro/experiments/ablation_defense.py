"""Ablation — mitigation effectiveness (the paper's future work).

The paper closes with "Developing attack prevention schemes is also in
our future agenda".  This ablation quantifies the two defences shipped
in :mod:`repro.defense` against a campaign of effective attacks:

* **cautious padding adoption** at increasing deployment fractions —
  residual pollution per deploying-AS fraction;
* **reactive padding reduction** by the victim — pollution gain before
  and after the victim re-originates with λ'=1 (always zero after, by
  construction: there is nothing left to strip).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.interception import simulate_interception
from repro.defense.cautious import simulate_cautious_deployment
from repro.defense.reactive import reactive_padding_reduction
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world, sample_attack_pairs
from repro.utils.rand import derive_rng, make_rng

__all__ = ["AblationDefenseConfig", "run"]


@dataclass(frozen=True)
class AblationDefenseConfig:
    seed: int = 7
    scale: float = 1.0
    pairs: int = 40
    origin_padding: int = 4
    deployment_fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def run(config: AblationDefenseConfig = AblationDefenseConfig()) -> ExperimentResult:
    """Measure residual pollution under each defence."""
    world = build_world(seed=config.seed, scale=config.scale)
    rng = derive_rng(make_rng(config.seed), "ablation-defense")
    # Defences matter most against the attacks that matter: sample
    # attackers from the upper tiers, where pollution is substantial
    # (Figures 7-10), rather than the mostly-ineffective random pool.
    pairs = sample_attack_pairs(
        world,
        config.pairs,
        rng,
        attacker_pool=world.topology.tier1 + world.topology.tier2,
    )

    effective = []
    for attacker, victim in pairs:
        result = simulate_interception(
            world.engine,
            victim=victim,
            attacker=attacker,
            origin_padding=config.origin_padding,
        )
        if result.report.newly_polluted:
            effective.append((attacker, victim, result))
    if not effective:
        raise ExperimentError("no effective attacks in the sampled pairs")

    rows: list[tuple[object, ...]] = []
    undefended_gain = sum(r.report.gain for _, _, r in effective) / len(effective)
    for fraction in config.deployment_fractions:
        deployment_rng = derive_rng(make_rng(config.seed), f"deploy-{fraction}")
        gains = []
        for attacker, victim, _result in effective:
            report = simulate_cautious_deployment(
                world.engine,
                victim=victim,
                attacker=attacker,
                origin_padding=config.origin_padding,
                deployment_fraction=fraction,
                rng=deployment_rng,
            )
            gains.append(report.gain)
        mean_gain = sum(gains) / len(gains)
        rows.append(
            (
                "cautious adoption",
                f"{fraction:.0%} deployed",
                round(100 * mean_gain, 2),
            )
        )

    reactive_gains = []
    te_shifts = []
    for _attacker, _victim, result in effective:
        mitigation = reactive_padding_reduction(world.engine, result)
        reactive_gains.append(mitigation.report.gain)
        te_shifts.append(mitigation.traffic_engineering_shift)
    mean_reactive = sum(reactive_gains) / len(reactive_gains)
    rows.append(("reactive padding reduction", "after alarm", round(100 * mean_reactive, 2)))

    summary = {
        "effective_attacks": float(len(effective)),
        "undefended_mean_gain_pct": 100 * undefended_gain,
        "full_deployment_mean_gain_pct": rows[len(config.deployment_fractions) - 1][2],
        "reactive_mean_gain_pct": 100 * mean_reactive,
        "reactive_mean_te_shift_pct": 100 * sum(te_shifts) / len(te_shifts),
    }
    return ExperimentResult(
        experiment_id="ablation-defense",
        title="Mitigation effectiveness: residual attack gain per defence",
        params={
            "pairs": config.pairs,
            "origin_padding": config.origin_padding,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("defence", "setting", "mean_pollution_gain_%"),
        rows=rows,
        summary=summary,
        notes=[
            "gain = fraction of ASes newly captured by the attack; cautious "
            "adoption shrinks it with deployment, reactive padding reduction "
            "eliminates it (at the cost of the victim's traffic engineering)"
        ],
    )
