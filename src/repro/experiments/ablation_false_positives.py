"""Ablation — detector precision under legitimate traffic engineering.

The paper's main detection concern is false positives: "In order to
lower false positives, the detection algorithm must differentiate the
malicious case from other legitimate reasons for changing prepending
behaviors."  This ablation stresses exactly that boundary: worlds where
origins *legitimately* re-engineer their padding (the events the
Figure-3 discussion legitimises), with no attacker anywhere, and counts
the alarms.

Expected: **zero high-confidence alarms** (the direct symptom is
provably attack-only under the one-policy-per-neighbour assumption —
also enforced by a property test) and a measurable but bounded
low-confidence hint rate (the paper flags hints as lower confidence
precisely because inferred relationships may mislead them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.collectors import RouteCollector
from repro.bgp.prepending import PrependingPolicy
from repro.detection.alarms import Confidence
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.monitors import top_degree_monitors
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world
from repro.measurement.padding_model import PaddingBehaviorModel
from repro.utils.rand import derive_rng, make_rng

__all__ = ["AblationFalsePositivesConfig", "run"]


@dataclass(frozen=True)
class AblationFalsePositivesConfig:
    seed: int = 7
    scale: float = 1.0
    #: number of legitimate traffic-engineering events to replay
    events: int = 120
    monitors: int = 150


def run(
    config: AblationFalsePositivesConfig = AblationFalsePositivesConfig(),
) -> ExperimentResult:
    """Replay legitimate padding changes and count alarms."""
    if config.events < 1:
        raise ExperimentError("need at least one TE event")
    world = build_world(seed=config.seed, scale=config.scale)
    graph = world.graph
    rng = derive_rng(make_rng(config.seed), "ablation-fp")
    model = PaddingBehaviorModel(prepend_prob=1.0)
    collector = RouteCollector(
        graph, top_degree_monitors(graph, min(config.monitors, len(graph)))
    )
    detector = ASPPInterceptionDetector(graph)

    high = low = 0
    events_with_visible_change = 0
    for _ in range(config.events):
        origin = rng.choice(
            [asn for asn in graph.ases if len(graph.neighbors_of(asn)) >= 2]
        )
        policy = PrependingPolicy()
        model.configure_origin(graph, origin, policy, rng)
        before = world.engine.propagate(origin, prepending=policy)

        # The legitimate event: the origin re-pads one neighbour with a
        # *smaller* count (more inbound traffic there) — the exact
        # change signature the attack also produces at monitors.
        neighbor = rng.choice(sorted(graph.neighbors_of(origin)))
        policy.set_padding(origin, neighbor, 1)
        after = world.engine.propagate(origin, prepending=policy)

        before_view = collector.snapshot(before)
        after_view = collector.snapshot(after)
        changed = False
        for monitor in collector.monitors:
            previous, current = before_view.routes[monitor], after_view.routes[monitor]
            if previous == current:
                continue
            changed = True
            for alarm in detector.inspect_change(monitor, previous, current, after_view):
                if alarm.confidence is Confidence.HIGH:
                    high += 1
                else:
                    low += 1
        events_with_visible_change += changed

    rows = [
        ("legitimate TE events", config.events),
        ("events visible at monitors", events_with_visible_change),
        ("high-confidence false alarms", high),
        ("low-confidence hint alarms", low),
    ]
    summary = {
        "events": float(config.events),
        "high_confidence_false_alarms": float(high),
        "low_hints_per_visible_event": (
            low / events_with_visible_change if events_with_visible_change else 0.0
        ),
    }
    return ExperimentResult(
        experiment_id="ablation-fp",
        title="Detector precision under legitimate prepending changes",
        params={
            "events": config.events,
            "monitors": config.monitors,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("statistic", "value"),
        rows=rows,
        summary=summary,
        notes=[
            "the direct (high-confidence) symptom never fires on legitimate "
            "traffic engineering — the property the paper's §V-A argument "
            "establishes; relationship hints remain lower confidence"
        ],
    )
