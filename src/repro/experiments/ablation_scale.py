"""Ablation — sensitivity of the headline results to topology scale.

EXPERIMENTS.md argues twice from topology size: the paper's absolute
detection accuracy does not transfer because coverage scales with the
monitor *fraction*, while the attack-impact results (Figure 7's ~40%
Tier-1 pollution) are scale-stable.  This ablation tests both claims
directly by regenerating the two statistics on worlds of increasing
size:

* mean Tier-1-vs-Tier-1 pollution at λ=3 (Figure 7's headline) —
  expected roughly flat across scales;
* detection accuracy with monitors fixed at 10% of ASes (Figure 13 at
  a constant *fraction*) — expected roughly flat across scales, which
  is exactly why the paper's absolute monitor counts (70/150 of 33k)
  cannot be compared with ours (of ~1.5k) directly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.attack.interception import simulate_interception
from repro.bgp.collectors import RouteCollector
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.monitors import top_degree_monitors
from repro.detection.timing import detection_timing
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world, sample_attack_pairs
from repro.utils.rand import derive_rng, make_rng

__all__ = ["AblationScaleConfig", "run"]


@dataclass(frozen=True)
class AblationScaleConfig:
    seed: int = 7
    scales: tuple[float, ...] = (0.25, 0.5, 1.0)
    tier1_instances: int = 20
    detection_pairs: int = 60
    origin_padding: int = 3
    monitor_fraction: float = 0.1


def run(config: AblationScaleConfig = AblationScaleConfig()) -> ExperimentResult:
    """Regenerate the two headline statistics at each scale."""
    if not config.scales:
        raise ExperimentError("need at least one scale")
    rows: list[tuple[object, ...]] = []
    summary: dict[str, float] = {}
    for scale in config.scales:
        world = build_world(seed=config.seed, scale=scale)
        graph = world.graph
        rng = derive_rng(make_rng(config.seed), f"scale-{scale}")

        # Figure-7 statistic: Tier-1 pairs at λ=3.
        tier1 = world.topology.tier1
        pairs = [(a, v) for a in tier1 for v in tier1 if a != v]
        rng.shuffle(pairs)
        pollutions = []
        for attacker, victim in pairs[: config.tier1_instances]:
            result = simulate_interception(
                world.engine,
                victim=victim,
                attacker=attacker,
                origin_padding=config.origin_padding,
            )
            pollutions.append(result.report.after_fraction)
        tier1_mean = 100 * statistics.mean(pollutions)

        # Figure-13 statistic at a constant monitor *fraction*.
        monitor_count = max(5, round(config.monitor_fraction * len(graph)))
        collector = RouteCollector(graph, top_degree_monitors(graph, monitor_count))
        detector = ASPPInterceptionDetector(graph)
        attack_pairs = sample_attack_pairs(world, config.detection_pairs, rng)
        detected = effective = 0
        for attacker, victim in attack_pairs:
            result = simulate_interception(
                world.engine,
                victim=victim,
                attacker=attacker,
                origin_padding=config.origin_padding,
            )
            if not result.report.after:
                continue
            effective += 1
            detected += detection_timing(result, collector, detector).detected
        accuracy = 100 * detected / effective if effective else 0.0

        rows.append(
            (
                scale,
                len(graph),
                round(tier1_mean, 1),
                monitor_count,
                round(accuracy, 1),
            )
        )
        summary[f"tier1_mean_pollution_pct_scale_{scale}"] = tier1_mean
        summary[f"detection_accuracy_pct_scale_{scale}"] = accuracy
    return ExperimentResult(
        experiment_id="ablation-scale",
        title="Scale sensitivity of the headline statistics",
        params={
            "scales": config.scales,
            "origin_padding": config.origin_padding,
            "monitor_fraction": config.monitor_fraction,
            "seed": config.seed,
        },
        headers=(
            "scale",
            "ases",
            "tier1_mean_pollution_%",
            "monitors_(10%)",
            "detection_accuracy_%",
        ),
        rows=rows,
        summary=summary,
        notes=[
            "attack impact (Figure 7's statistic) is roughly scale-stable; "
            "detection accuracy at a fixed monitor *fraction* is too — which "
            "is why the paper's absolute monitor counts cannot be compared "
            "across topology sizes"
        ],
    )
