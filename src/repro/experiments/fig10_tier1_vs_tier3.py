"""Figure 10 — pollution vs prepended ASNs (AT&T hijacks Facebook).

A Tier-1 attacker above a Tier-3 victim: the victim's own route is
kept only by its providers, their providers and their direct peers;
everyone else receives both the legitimate and the stripped route
through provider/peer links, where the shorter one wins.  Expected
shape: steep growth with λ and a very high plateau (the paper reports
82% at λ=2 and >99% beyond).

The analogue pair is chosen like the paper chose AT&T/Facebook: the
victim is a Tier-3 AS, the attacker one of its Tier-1 transit
ancestors (AT&T carried Facebook transit through Level3's cone), so
the attacker's modified route is customer-learned and exportable to
the whole Internet.  Among the candidate victims we pick the one with
the fewest providers — Facebook's affected front-end prefixes sat
behind a narrow provider set, which is what makes the near-total
pollution possible; a victim shielded by many providers or rich
peering caps the attack (the effect the paper's Figure 7 tail shows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.base import (
    ExperimentResult,
    build_world,
    instrumented,
    provider_ancestors,
)
from repro.experiments.sweeps import padding_sweep
from repro.telemetry.metrics import RunMetrics

__all__ = ["Fig10Config", "run"]


@dataclass(frozen=True)
class Fig10Config:
    seed: int = 7
    scale: float = 1.0
    max_padding: int = 8
    #: fan the λ points out over this many worker processes (None = serial)
    workers: int | None = None


def _choose_pair(world) -> tuple[int, int]:
    """Pick (attacker, victim): Tier-1 ancestor over a narrow Tier-3."""
    graph = world.graph
    tier1 = set(world.topology.tier1)
    candidates: list[tuple[int, int, int, int]] = []
    for victim in world.topology.tier3:
        ancestors = provider_ancestors(graph, victim) & tier1
        if not ancestors:
            continue
        shield = len(graph.providers_of(victim)) + len(graph.peers_of(victim))
        candidates.append((shield, victim, min(ancestors), len(ancestors)))
    if not candidates:
        raise ExperimentError("no Tier-3 victim has a Tier-1 ancestor")
    candidates.sort()
    shield, victim, attacker, _ = candidates[0]
    return attacker, victim


@instrumented("fig10")
def run(
    config: Fig10Config = Fig10Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 10's λ sweep: Tier-1 attacker, Tier-3 victim."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    attacker, victim = _choose_pair(world)
    rows = padding_sweep(
        world.engine,
        victim=victim,
        attacker=attacker,
        paddings=range(1, config.max_padding + 1),
        workers=config.workers,
        metrics=metrics,
    )
    after = {padding: after_pct for padding, _, after_pct in rows}
    summary = {
        "after_pct_lambda2": after.get(2, 0.0),
        "after_pct_lambda3": after.get(3, 0.0),
        "plateau_pct": after.get(config.max_padding, 0.0),
    }
    return ExperimentResult(
        experiment_id="fig10",
        title=(
            f"Pollution vs prepended ASNs — Tier-1 AS{attacker} hijacks "
            f"Tier-3 AS{victim} (AT&T/Facebook analogue)"
        ),
        params={
            "attacker": attacker,
            "victim": victim,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("prepended_asns", "before_hijack_%", "after_hijack_%"),
        rows=[(p, round(b, 1), round(a, 1)) for p, b, a in rows],
        summary=summary,
        notes=[
            "paper: 82% of ASes switch at λ=2 and more than 99% for λ>2; "
            "the higher-tier attacker's stripped route is customer-learned "
            "and thus reaches the entire Internet"
        ],
    )
