"""Figure 1 — the Facebook routing-anomaly instance (BGP-level replay).

The paper's Figure 1 shows the announcements around the 2011-03-22
anomaly: Facebook pads its origination five times; the Korean ISP
re-announces with only three copies; China Telecom propagates the
5-hop route; AT&T and NTT abandon the 6-hop Level3 route for it.  The
experiment replays the event through the propagation engine and
reports each AS's route before and after, plus the announcement lines
of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.aspath import padding_of_origin
from repro.casestudy.facebook import (
    ANOMALY_PADDING_SEEN,
    AS_ATT,
    AS_NTT,
    FACEBOOK_PADDING,
    FACEBOOK_PREFIXES,
    replay_all_prefixes,
    replay_facebook_anomaly,
)
from repro.experiments.base import ExperimentResult, instrumented
from repro.telemetry.metrics import RunMetrics

__all__ = ["Fig01Config", "run"]


@dataclass(frozen=True)
class Fig01Config:
    prefix: str = "69.171.224.0/20"


@instrumented("fig01")
def run(
    config: Fig01Config = Fig01Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 1: per-AS routes before/after the anomaly."""
    replay = replay_facebook_anomaly(config.prefix)
    rows = [tuple(row) for row in replay.route_change_rows()]

    att_before = replay.baseline.path_of(AS_ATT)
    att_after = replay.anomalous.path_of(AS_ATT)
    ntt_after = replay.anomalous.path_of(AS_NTT)
    fates = replay_all_prefixes()
    summary = {
        "att_path_len_before": float(len(att_before or ())) + 1,  # incl. own ASN
        "att_path_len_after": float(len(att_after or ())) + 1,
        "padding_before": float(FACEBOOK_PADDING),
        "padding_seen_after": float(padding_of_origin(att_after)) if att_after else 0.0,
        "ntt_follows_anomaly": float(
            ntt_after is not None and padding_of_origin(ntt_after) == ANOMALY_PADDING_SEEN
        ),
        "prefixes_announced": float(len(FACEBOOK_PREFIXES)),
        "prefixes_affected": float(sum(1 for fate in fates if fate.affected)),
    }
    notes = ["announcements (paper Figure 1):"]
    notes.extend("  " + line for line in replay.figure1_announcements())
    notes.append(
        "paper: the 7-hop route 7018 3356 32934x5 is replaced by the 6-hop "
        "7018 4134 9318 32934x3 at 7:15 GMT on Mar 22nd 2011"
    )
    return ExperimentResult(
        experiment_id="fig01",
        title="Facebook routing anomaly instance (route changes at 7:15am)",
        params={"prefix": config.prefix},
        headers=("AS", "route_before", "route_after"),
        rows=rows,
        summary=summary,
        notes=notes,
    )
