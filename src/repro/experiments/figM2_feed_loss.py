"""Figure M2 — detection accuracy and residual pollution vs feed loss.

The companion robustness figure to M1: how much monitor coverage can
the closed loop lose before it goes blind?  For each feed-loss
fraction, that share of the pipeline's feeds suffers an *unrecoverable*
outage spanning the entire stream (their updates are lost, not
delayed), and the loop runs across several stream seeds:

* **detection accuracy** — the fraction of runs whose attack still
  raised an alarm on the surviving coverage;
* **residual pollution** — averaged over all runs, counting an
  undetected attack at its full attack pollution (no alarm, no
  reaction: the loop cannot mitigate what it cannot see).

The pipeline degrades gracefully by construction: lost feeds are
skipped at the sequence merge, structured telemetry tracks the loss,
and no run raises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.pipeline.faults import FeedFault, FeedFaultPlan
from repro.experiments.base import ExperimentResult, instrumented
from repro.telemetry.metrics import RunMetrics

__all__ = ["FigM2Config", "run"]


@dataclass(frozen=True)
class FigM2Config:
    seeds: tuple[int, ...] = (5, 7, 11)
    scale: float = 0.25
    monitors: int = 20
    prefixes: int = 2
    updates: int = 800
    padding: int = 3
    strategy: str = "stepdown"
    feeds: int = 4
    loss_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)


def _loss_plan(feeds: int, fraction: float, stream_len: int) -> FeedFaultPlan:
    """Kill ``round(fraction * feeds)`` feeds for the whole stream."""
    lost = min(feeds, round(fraction * feeds))
    return FeedFaultPlan(
        {
            feed_id: (
                FeedFault(
                    mode="outage", at=0, span=max(1, stream_len), recoverable=False
                ),
            )
            for feed_id in range(lost)
        }
    )


@instrumented("figM2")
def run(
    config: FigM2Config = FigM2Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Detection accuracy and residual pollution vs feed-loss fraction."""
    # Imported lazily: churn synthesis depends on experiments.base, so a
    # module-level import here would close a cycle through the package.
    from repro.measurement.churn import ChurnConfig, synthesize_churn_stream
    from repro.mitigation.controller import MitigationPolicy, run_closed_loop

    streams = [
        synthesize_churn_stream(
            ChurnConfig(
                seed=seed,
                scale=config.scale,
                monitors=config.monitors,
                prefixes=config.prefixes,
                updates=config.updates,
                padding=config.padding,
            )
        )
        for seed in config.seeds
    ]
    rows = []
    summary: dict[str, float] = {}
    for fraction in config.loss_fractions:
        detected = 0
        residuals: list[float] = []
        detect_times: list[int] = []
        lost_updates = 0
        for stream in streams:
            plan = _loss_plan(config.feeds, fraction, len(stream.messages))
            report = run_closed_loop(
                stream,
                policy=MitigationPolicy(strategy=config.strategy),
                feeds=config.feeds,
                fault_plan=plan,
                metrics=metrics,
            )
            step = report.step
            if step.detected:
                detected += 1
                if step.time_to_detect is not None:
                    detect_times.append(step.time_to_detect)
            residuals.append(step.pollution_residual)
            lost_updates += report.lost
        accuracy = 100.0 * detected / len(streams)
        mean_residual = sum(residuals) / len(residuals)
        mean_detect = (
            round(sum(detect_times) / len(detect_times), 1) if detect_times else "-"
        )
        rows.append(
            (
                round(fraction, 2),
                round(fraction * config.feeds),
                round(accuracy, 1),
                mean_detect,
                round(mean_residual, 4),
                lost_updates,
            )
        )
        key = f"loss{int(fraction * 100)}"
        summary[f"{key}_accuracy_pct"] = accuracy
        summary[f"{key}_mean_residual_pollution"] = mean_residual
    return ExperimentResult(
        experiment_id="figM2",
        title="Detection accuracy and residual pollution vs feed loss",
        params={
            "seeds": list(config.seeds),
            "scale": config.scale,
            "monitors": config.monitors,
            "updates": config.updates,
            "padding": config.padding,
            "strategy": config.strategy,
            "feeds": config.feeds,
        },
        headers=(
            "loss_fraction",
            "feeds_lost",
            "accuracy_%",
            "mean_t_detect_upd",
            "mean_residual_pollution",
            "lost_updates",
        ),
        rows=rows,
        summary=summary,
        notes=[
            "lost feeds suffer an unrecoverable full-stream outage: their "
            "updates are skipped at the sequence merge (graceful degradation, "
            "never an exception)",
            "an undetected attack is charged its full attack pollution — the "
            "loop cannot mitigate what it cannot see",
        ],
    )
