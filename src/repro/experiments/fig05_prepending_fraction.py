"""Figure 5 — fraction of routes with prepending ASes.

The paper plots, per monitor, the fraction of prefixes whose best route
contains ASPP, as a CDF over monitors, in three series: all monitors
(routing tables), Tier-1 monitors only (tables), and all monitors
(update messages).  Expected shape: average around 13%, the Tier-1
curve shifted right (big ISPs see more diverse, longer routes), and
the updates curve shifted right of the tables curve (churn exposes
padded backup routes).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.bgp.aspath import has_prepending
from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, instrumented
from repro.telemetry.metrics import RunMetrics
from repro.experiments.measurement_world import build_measurement_world
from repro.measurement.characterize import prepended_fraction_per_monitor
from repro.utils.cdf import EmpiricalCDF

__all__ = ["Fig05Config", "run"]

_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class Fig05Config:
    seed: int = 7
    scale: float = 1.0
    num_monitors: int = 60
    num_prefixes: int = 400
    churn_origins: int = 40
    churn_events: int = 2


def _update_fractions(updates) -> dict[int, float]:
    """Per-monitor fraction of update messages carrying prepending."""
    prepended: dict[int, int] = defaultdict(int)
    total: dict[int, int] = defaultdict(int)
    for message in updates:
        if message.withdrawn or not message.path:
            continue
        total[message.monitor] += 1
        if has_prepending(message.path):
            prepended[message.monitor] += 1
    return {
        monitor: prepended[monitor] / count
        for monitor, count in total.items()
        if count > 0
    }


@instrumented("fig05")
def run(
    config: Fig05Config = Fig05Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 5's three CDF series."""
    data = build_measurement_world(
        seed=config.seed,
        scale=config.scale,
        num_monitors=config.num_monitors,
        num_prefixes=config.num_prefixes,
        churn_origins=config.churn_origins,
        churn_events=config.churn_events,
    )
    all_fracs = prepended_fraction_per_monitor(data.ribs)
    series: dict[str, EmpiricalCDF] = {"all (table)": EmpiricalCDF(all_fracs.values())}

    if data.tier1_monitors:
        tier1_fracs = prepended_fraction_per_monitor(
            data.ribs, monitors=data.tier1_monitors
        )
        series["tier 1 (table)"] = EmpiricalCDF(tier1_fracs.values())
    update_fracs = _update_fractions(data.updates)
    if update_fracs:
        series["all (updates)"] = EmpiricalCDF(update_fracs.values())
    if not series:
        raise ExperimentError("Figure 5 produced no series")

    rows = []
    for name, cdf in series.items():
        for q in _QUANTILES:
            rows.append((name, f"p{int(q * 100)}", round(cdf.quantile(q), 4)))
    summary = {
        "mean_fraction_all_table": series["all (table)"].mean,
    }
    if "tier 1 (table)" in series:
        summary["mean_fraction_tier1_table"] = series["tier 1 (table)"].mean
    if "all (updates)" in series:
        summary["mean_fraction_all_updates"] = series["all (updates)"].mean
    return ExperimentResult(
        experiment_id="fig05",
        title="Fraction of routes with prepending ASes (CDF over monitors)",
        params={
            "monitors": config.num_monitors,
            "prefixes": config.num_prefixes,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("series", "quantile", "fraction_prepended"),
        rows=rows,
        summary=summary,
        notes=[
            "paper: ~13% of table routes prepended on average; Tier-1 and "
            "updates curves sit to the right of the all-monitors table curve",
            "known deviation: on this substrate the Tier-1 series tracks "
            "the all-monitors series instead of sitting right of it (all "
            "monitors see every prefix here, so the paper's table-size "
            "diversity effect is absent)",
        ],
    )
