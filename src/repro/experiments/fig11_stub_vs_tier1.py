"""Figure 11 — pollution vs prepended ASNs (Facebook hijacks NTT).

The inverted scenario: a small but well-connected content AS attacks a
Tier-1.  Under valley-free export a peer-learned route can only reach
the attacker's customers, so the attack *should* be tiny — yet the
paper measured ~38%: NTT (AS2914) had a sibling (Limelight) that was a
customer of Facebook, so Facebook held a *customer-learned* route to
the victim and could export the stripped version to its provider
(Akamai), whose 235 peers spread it widely — all valley-free.  The
paper also notes that an attacker that openly violates the export
policy reaches an impact "equally large as other scenarios".

We reconstruct the same structure — the content attacker is given one
customer that is a sibling of the Tier-1 victim (the Limelight
analogue) — and report three series:

* ``valley-free, no chain`` — strict export on the plain topology: the
  expected near-zero baseline;
* ``valley-free, sibling chain`` — strict export once the chain
  exists: the paper's surprising headline result;
* ``violate policy`` — the attacker re-exports everywhere (on the
  chained topology), an upper bound the valley-free chain approaches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.engine import PropagationEngine
from repro.exceptions import ExperimentError
from repro.runner import BaselineCache
from repro.experiments.base import ExperimentResult, build_world, instrumented
from repro.experiments.sweeps import padding_sweep
from repro.telemetry.metrics import RunMetrics

__all__ = ["Fig11Config", "run"]


@dataclass(frozen=True)
class Fig11Config:
    seed: int = 7
    scale: float = 1.0
    max_padding: int = 8
    #: fan the λ points out over this many worker processes (None = serial)
    workers: int | None = None


def _choose_actors(world) -> tuple[int, int, int]:
    """Attacker = best-peered content AS, victim = top Tier-1, plus the
    Tier-3 helper that becomes the attacker's customer and the victim's
    sibling (the Limelight analogue)."""
    graph = world.graph
    tier1 = world.topology.tier1
    content = world.topology.content
    if not tier1 or not content:
        raise ExperimentError("scenario needs Tier-1 and content ASes")
    victim = max(tier1, key=lambda t: (graph.degree(t), -t))
    attacker = max(content, key=lambda c: (graph.degree(c), -c))
    helper = next(
        (
            asn
            for asn in world.topology.tier3
            if not graph.has_edge(attacker, asn) and not graph.has_edge(victim, asn)
        ),
        None,
    )
    if helper is None:
        raise ExperimentError("no Tier-3 AS available for the sibling chain")
    return attacker, victim, helper


@instrumented("fig11")
def run(
    config: Fig11Config = Fig11Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 11's series."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    attacker, victim, helper = _choose_actors(world)
    paddings = range(1, config.max_padding + 1)

    plain_engine = world.engine
    chained_graph = world.graph.copy()
    chained_graph.add_p2c(attacker, helper)
    chained_graph.add_s2s(helper, victim)
    chained_engine = PropagationEngine(chained_graph, metrics=metrics)

    # The two chained series attack from identical pre-attack baselines,
    # so they share one cache; the plain engine needs its own.
    chained_cache = BaselineCache(chained_engine)
    no_chain = padding_sweep(
        plain_engine,
        victim=victim,
        attacker=attacker,
        paddings=paddings,
        workers=config.workers,
        metrics=metrics,
    )
    with_chain = padding_sweep(
        chained_engine,
        victim=victim,
        attacker=attacker,
        paddings=paddings,
        workers=config.workers,
        cache=chained_cache,
        metrics=metrics,
    )
    violating = padding_sweep(
        chained_engine,
        victim=victim,
        attacker=attacker,
        paddings=paddings,
        violate_policy=True,
        workers=config.workers,
        cache=chained_cache,
        metrics=metrics,
    )
    rows = [
        (padding, round(plain_after, 1), round(chain_after, 1), round(violate_after, 1))
        for (padding, _, plain_after), (_, _, chain_after), (_, _, violate_after) in zip(
            no_chain, with_chain, violating
        )
    ]
    summary = {
        "no_chain_plateau_pct": no_chain[-1][2],
        "valley_free_plateau_pct": with_chain[-1][2],
        "violate_plateau_pct": violating[-1][2],
    }
    return ExperimentResult(
        experiment_id="fig11",
        title=(
            f"Pollution vs prepended ASNs — content AS{attacker} hijacks "
            f"Tier-1 AS{victim} (Facebook/NTT analogue, sibling helper "
            f"AS{helper})"
        ),
        params={
            "attacker": attacker,
            "victim": victim,
            "helper": helper,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=(
            "prepended_asns",
            "valley_free_no_chain_%",
            "valley_free_sibling_chain_%",
            "violate_policy_%",
        ),
        rows=rows,
        summary=summary,
        notes=[
            "paper: ~38% pollution with sufficient padding even under "
            "valley-free export — the sibling/CDN chain makes the stripped "
            "route customer-learned; a policy-violating attacker reaches "
            "an impact 'equally large as other scenarios'"
        ],
    )
