"""Figure 9 — pollution range vs. prepended ASNs (Sprint hijacks AT&T).

The paper fixes two large Tier-1 ISPs — Sprint (AS1239) attacking
AT&T (AS7018) — and sweeps λ from 1 to 8.  Expected shape: ~30% of
paths traverse the attacker at λ=1 (essentially the natural share),
a steep jump by λ=2-3, saturation above 95% of the attacker's
reachable population by λ=4, and a plateau beyond (the hold-outs are
single-homed customers and direct peers of the victim).

Our Sprint/AT&T analogues are the two Tier-1 ASes with the largest
customer cones (attacker first): the attack's ceiling is the
attacker's customer cone, and Sprint's cone covered most of the
Internet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentResult, build_world, instrumented
from repro.experiments.sweeps import padding_sweep
from repro.telemetry.metrics import RunMetrics
from repro.topology.tiers import customer_cone

__all__ = ["Fig09Config", "run"]


@dataclass(frozen=True)
class Fig09Config:
    seed: int = 7
    scale: float = 1.0
    max_padding: int = 8
    #: fan the λ points out over this many worker processes (None = serial)
    workers: int | None = None


@instrumented("fig09")
def run(
    config: Fig09Config = Fig09Config(), *, metrics: RunMetrics | None = None
) -> ExperimentResult:
    """Regenerate Figure 9's λ sweep for two top Tier-1 ASes."""
    world = build_world(seed=config.seed, scale=config.scale, metrics=metrics)
    graph = world.graph
    tier1 = world.topology.tier1
    if len(tier1) < 2:
        raise ExperimentError("need at least two Tier-1 ASes")
    by_cone = sorted(tier1, key=lambda t: (-len(customer_cone(graph, t)), t))
    attacker, victim = by_cone[0], by_cone[1]

    rows = padding_sweep(
        world.engine,
        victim=victim,
        attacker=attacker,
        paddings=range(1, config.max_padding + 1),
        workers=config.workers,
        metrics=metrics,
    )
    cone_pct = 100 * len(customer_cone(graph, attacker)) / len(graph)
    after = {padding: after_pct for padding, _, after_pct in rows}
    summary = {
        "after_pct_lambda1": after.get(1, 0.0),
        "after_pct_lambda2": after.get(2, 0.0),
        "after_pct_lambda3": after.get(3, 0.0),
        "plateau_pct": after.get(config.max_padding, 0.0),
        "attacker_cone_pct": cone_pct,
    }
    return ExperimentResult(
        experiment_id="fig09",
        title=(
            f"Pollution vs prepended ASNs — Tier-1 AS{attacker} hijacks "
            f"Tier-1 AS{victim} (Sprint/AT&T analogue)"
        ),
        params={
            "attacker": attacker,
            "victim": victim,
            "seed": config.seed,
            "scale": config.scale,
        },
        headers=("prepended_asns", "before_hijack_%", "after_hijack_%"),
        rows=[(p, round(b, 1), round(a, 1)) for p, b, a in rows],
        summary=summary,
        notes=[
            "paper: 30% at λ=1, 80% at λ=2, >95% at λ=3-4, flat beyond 5; "
            "the plateau equals the attacker's reach (its customer cone)"
        ],
    )
