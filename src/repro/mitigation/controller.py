"""The closed-loop mitigation controller.

One cycle of the loop, end to end:

1. a synthesized churn stream (with an interception burst spliced in)
   plays through the fault-tolerant :class:`StreamingPipeline`;
2. the first alarm on the victim's prefix fixes **time-to-detect** —
   measured at the detector in post-merge updates, so it is identical
   across feed counts, batch sizes and (lossless) backpressure
   policies;
3. after a configurable reaction delay (**time-to-mitigate**, modelling
   operator/automation latency in updates), the controller picks a new
   λ per the strategy and re-converges the attack against the derived
   λ' baseline via :func:`~repro.bgp.delta.propagate_delta` — the
   delta rounds are **time-to-recover** and the new pollution report's
   after-fraction is the **residual pollution**;
4. the monitor updates the re-announcement causes are fed back through
   the pipeline (sequence numbers continuing the stream), closing the
   loop.  A padding *decrease* is exactly what the Figure-4 detector
   hunts, so the controller's own re-announce raises alarms at honest
   monitors — those are counted separately as ``self_alarms`` and
   excluded from the attack verdict, the suppression every real
   auto-mitigation deployment needs.

Determinism: everything downstream of the synthesized stream is a pure
function of ``(stream, policy, feeds, backpressure, fault plan)``; the
closed-loop suites pin the report bit-identical across feed counts,
backpressure policies and recoverable fault plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attack.impact import pollution_report
from repro.bgp.collectors import MonitorView, RouteCollector
from repro.bgp.delta import propagate_delta
from repro.bgp.engine import PropagationEngine, PropagationOutcome
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.updates import SequencedUpdate, UpdateMessage
from repro.detection.alarms import Alarm
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.pipeline.faults import FeedFaultPlan
from repro.detection.pipeline.ingest import StreamingPipeline
from repro.detection.pipeline.table import PipelineDetector
from repro.exceptions import SimulationError
from repro.mitigation.strategies import mitigated_padding
from repro.runner.cache import BaselineCache
from repro.telemetry.metrics import RunMetrics
from repro.telemetry.slo import SLORegistry, default_pipeline_slos

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # churn imports experiments.base — keep the cycle type-only
    from repro.measurement.churn import SynthesizedStream

__all__ = [
    "MitigationPolicy",
    "MitigationStep",
    "MitigationController",
    "ClosedLoopReport",
    "mitigation_update_stream",
    "run_closed_loop",
]


@dataclass(frozen=True)
class MitigationPolicy:
    """How the victim reacts once the attack is detected."""

    strategy: str = "stepdown"
    #: λ decrement per ``stepdown`` reaction
    step: int = 1
    #: the λ the victim will not go below (1 = no prepending left)
    floor: int = 1
    #: updates between the first alarm and the re-announce — the
    #: modelled operator/automation latency (time-to-mitigate)
    reaction_updates: int = 64

    def __post_init__(self) -> None:
        # Validate eagerly through the strategy table.
        mitigated_padding(self.strategy, max(1, self.floor), step=self.step, floor=self.floor)
        if self.reaction_updates < 0:
            raise SimulationError("reaction_updates must be >= 0")


@dataclass(frozen=True)
class MitigationStep:
    """Everything one closed-loop cycle measured."""

    strategy: str
    victim: int
    attacker: int
    prefix: str
    #: the victim's λ before and after the countermeasure
    padding_before: int
    padding_after: int
    #: detector updates seen when the victim prefix first alarmed
    detected_at: int | None
    #: updates between the attack entering the stream and the alarm
    time_to_detect: int | None
    #: modelled reaction latency (updates)
    time_to_mitigate: int
    #: delta re-convergence rounds of the mitigation re-announce
    time_to_recover: int
    #: ASes the re-convergence actually touched (0 when not re-announced)
    touched_ases: int
    #: attacker traversal share before the attack (organic)
    pollution_baseline: float
    #: attacker traversal share under the attack, pre-mitigation
    pollution_attack: float
    #: attacker traversal share after the countermeasure
    pollution_residual: float
    #: victim-prefix alarms raised by the attack burst
    alarms: int
    #: victim-prefix alarms raised by the controller's own re-announce
    self_alarms: int

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def recovered(self) -> bool:
        """Did the countermeasure collapse pollution back to organic?"""
        return self.pollution_residual <= self.pollution_baseline + 1e-12

    @property
    def pollution_removed(self) -> float:
        return self.pollution_attack - self.pollution_residual


@dataclass
class ClosedLoopReport:
    """One closed-loop run: the measured step plus pipeline health."""

    step: MitigationStep
    alarms: list[Alarm] = field(repr=False)
    #: structured SLO breach events (JSONL-ready dicts)
    breaches: list[dict[str, object]]
    processed: int
    duplicates: int
    dead_lettered: int
    lost: int
    #: fraction of feeds still delivering at end of run
    coverage: float


def mitigation_update_stream(
    before: MonitorView,
    after_outcome: PropagationOutcome,
    collector: RouteCollector,
    *,
    modifiers=None,
    first_seq: int = 0,
) -> list[SequencedUpdate]:
    """The sequenced updates monitors emit as a re-announce propagates.

    The re-convergence analogue of
    :func:`repro.detection.streaming.attack_update_stream`: monitors
    whose route changed between ``before`` and the re-converged
    ``after_outcome`` announce their new route, ordered by the engine's
    adoption round (the logical hop count the re-announcement
    travelled), stamped with sequence numbers from ``first_seq``.
    ``modifiers`` keeps an attacker that peers with the collector
    announcing its *modified* route on its own feed — the attack does
    not pause while the victim recovers.
    """
    after = collector.snapshot(after_outcome, modifiers=modifiers)
    changed: list[tuple[int, int]] = []
    for monitor in collector.monitors:
        if before.routes.get(monitor) == after.routes.get(monitor):
            continue
        changed.append((after_outcome.adoption_round.get(monitor, 0), monitor))
    changed.sort()

    messages: list[SequencedUpdate] = []
    seq = first_seq
    for _round, monitor in changed:
        route = after.routes[monitor]
        if route is None:
            message = UpdateMessage(
                monitor=monitor, prefix=after.prefix, path=(), withdrawn=True
            )
        else:
            message = UpdateMessage(monitor=monitor, prefix=after.prefix, path=route.path)
        messages.append(SequencedUpdate(seq=seq, message=message))
        seq += 1
    return messages


class MitigationController:
    """Chooses and executes the victim's countermeasure for one attack.

    The controller owns the simulation side of the loop: given the
    synthesized stream's attack instance, it derives the λ' baseline
    from the victim's canonical outcome (one O(1) cache derivation, no
    re-propagation), re-converges the *still ongoing* attack against it
    with :func:`propagate_delta`, and reports recovery rounds, touched
    ASes and the residual pollution.
    """

    def __init__(
        self,
        engine: PropagationEngine,
        policy: MitigationPolicy,
        *,
        cache: BaselineCache | None = None,
        metrics: RunMetrics | None = None,
    ) -> None:
        self.engine = engine
        self.policy = policy
        self.cache = cache if cache is not None else BaselineCache(engine, metrics=metrics)
        self.metrics = metrics

    def mitigate(
        self, stream: SynthesizedStream
    ) -> tuple[int, PropagationOutcome, int, int]:
        """Execute the countermeasure for the stream's attack.

        Returns ``(new_padding, mitigated_outcome, recovery_rounds,
        touched_ases)``.  For the ``none`` strategy (or a λ already at
        the floor) the attack outcome is returned unchanged with zero
        recovery work.
        """
        result = stream.attack_result
        if result is None:
            raise SimulationError("the stream carries no attack to mitigate")
        policy = self.policy
        padding = result.origin_padding
        new_padding = mitigated_padding(
            policy.strategy, padding, step=policy.step, floor=policy.floor
        )
        if new_padding == padding:
            return padding, result.attacked, 0, 0
        victim = result.attack.victim
        baseline = self.cache.baseline(
            victim,
            prefix=result.baseline.prefix,
            prepending=PrependingPolicy.uniform_origin(victim, new_padding),
        )
        # Count only this re-convergence's touched ASes, then fold the
        # local registry into the caller's.
        local = RunMetrics()
        mitigated = propagate_delta(baseline, result.attack, metrics=local)
        touched = int(
            local.histograms["engine.delta.touched_ases"].total
            if "engine.delta.touched_ases" in local.histograms
            else 0
        )
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.merge(local)
        return new_padding, mitigated, mitigated.rounds, touched


def run_closed_loop(
    stream: SynthesizedStream,
    *,
    policy: MitigationPolicy | None = None,
    feeds: int = 4,
    backpressure: str = "block",
    batch: int = 64,
    capacity: int = 256,
    fault_plan: FeedFaultPlan | None = None,
    metrics: RunMetrics | None = None,
    slos: SLORegistry | None = None,
    rng: random.Random | None = None,
    controller: MitigationController | None = None,
) -> ClosedLoopReport:
    """Drive one full detect → mitigate → re-converge cycle.

    ``slos`` defaults to a fresh registry over
    :func:`~repro.telemetry.slo.default_pipeline_slos`; pass your own
    to tune thresholds.  ``rng`` randomises the feed interleaving (the
    report is invariant to it); ``fault_plan`` injects feed faults — a
    recoverable plan leaves the report bit-identical.
    """
    result = stream.attack_result
    if result is None:
        raise SimulationError("run_closed_loop needs a stream with an attack burst")
    if policy is None:
        policy = MitigationPolicy()
    if slos is None:
        slos = SLORegistry(default_pipeline_slos(), metrics=metrics)
    if controller is None:
        engine = PropagationEngine(stream.world.graph)
        controller = MitigationController(engine, policy, metrics=metrics)

    detector = PipelineDetector(
        ASPPInterceptionDetector(stream.world.graph),
        stream.world.graph,
        metrics=metrics,
    )
    pipeline = StreamingPipeline(
        detector,
        feeds=feeds,
        batch=batch,
        capacity=capacity,
        policy=backpressure,
        metrics=metrics,
        fault_plan=fault_plan,
        tolerant=fault_plan is not None,
        slos=slos,
    )
    for view in stream.baselines.values():
        pipeline.prime(view)

    # Phase 1: the churn stream (attack burst included) plays out.
    pipeline.run(stream.feed_streams(feeds), rng=rng)
    victim_prefix = result.baseline.prefix
    attack_alarms = [a for a in pipeline.alarms if a.prefix == victim_prefix]
    detected_at = detector.first_alarm_at.get(victim_prefix)
    time_to_detect: int | None = None
    if detected_at is not None and stream.attack_start_seq is not None:
        time_to_detect = max(0, detected_at - stream.attack_start_seq)
        slos.record("alarm-latency", time_to_detect)

    # Phase 2: the countermeasure (skipped when nothing was detected —
    # a blinded pipeline cannot trigger a reaction).
    padding = result.origin_padding
    victim = result.attack.victim
    attacker = result.attack.attacker
    new_padding = padding
    mitigated = result.attacked
    recovery_rounds = 0
    touched = 0
    self_alarms = 0
    if detected_at is not None and policy.strategy != "none":
        new_padding, mitigated, recovery_rounds, touched = controller.mitigate(stream)
        slos.record("recovery-deadline", recovery_rounds)
        if metrics is not None and metrics.enabled:
            metrics.count("mitigation.reactions")
            metrics.observe("mitigation.recovery_rounds", recovery_rounds)
            metrics.observe("mitigation.touched_ases", touched)
        if new_padding != padding:
            # Phase 3: feed the re-convergence updates back through the
            # (possibly degraded) pipeline.  Quarantined feeds are dark —
            # recovery traffic only flows over surviving ones.
            modifiers = {attacker: result.attack.modifier()}
            attacked_view = stream.collector.snapshot(
                result.attacked, modifiers=modifiers
            )
            first_seq = stream.messages[-1].seq + 1 if stream.messages else 0
            recovery = mitigation_update_stream(
                attacked_view,
                mitigated,
                stream.collector,
                modifiers=modifiers,
                first_seq=first_seq,
            )
            live = [
                feed_id
                for feed_id in range(feeds)
                if feed_id not in pipeline.quarantined_feeds
            ] or [0]
            before_recovery = len(pipeline.alarms)
            for position, update in enumerate(recovery):
                pipeline.offer(live[position % len(live)], update)
            pipeline.flush()
            self_alarms = sum(
                1
                for alarm in pipeline.alarms[before_recovery:]
                if alarm.prefix == victim_prefix
            )

    residual = pollution_report(
        baseline=result.baseline,
        attacked=mitigated,
        attacker=attacker,
        victim=victim,
    )
    step = MitigationStep(
        strategy=policy.strategy,
        victim=victim,
        attacker=attacker,
        prefix=victim_prefix,
        padding_before=padding,
        padding_after=new_padding,
        detected_at=detected_at,
        time_to_detect=time_to_detect,
        time_to_mitigate=policy.reaction_updates if detected_at is not None else 0,
        time_to_recover=recovery_rounds,
        touched_ases=touched,
        pollution_baseline=result.report.before_fraction,
        pollution_attack=result.report.after_fraction,
        pollution_residual=residual.after_fraction,
        alarms=len(attack_alarms),
        self_alarms=self_alarms,
    )
    return ClosedLoopReport(
        step=step,
        alarms=list(pipeline.alarms),
        breaches=slos.events(),
        processed=pipeline.processed,
        duplicates=pipeline.duplicates,
        dead_lettered=pipeline.dead_lettered,
        lost=pipeline.lost,
        coverage=pipeline.coverage,
    )
