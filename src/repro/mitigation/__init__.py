"""Closed-loop mitigation: detect → re-announce → re-converge.

The source paper stops at detection; this package closes the loop the
way ARTEMIS does for classic hijacks — automatically, from the victim's
side, using the one knob the ASPP attack model exposes: the victim's
own origin padding λ.  The attacker's advantage is *manufactured from*
λ (stripping λ-1 copies shortens the malicious route by λ-1 hops), so
the victim can dismantle the attack by re-announcing with less padding:

* ``stepdown`` walks λ down one notch at a time (least collateral —
  traffic engineering is partially preserved);
* ``reset`` drops straight to the padding floor, making the attacker's
  strip a no-op (fastest neutralisation, forfeits the TE);
* ``none`` is the control arm every figure compares against.

:func:`run_closed_loop` drives the whole cycle over one synthesized
churn stream: the fault-tolerant :class:`StreamingPipeline` raises the
alarm, :class:`MitigationController` chooses the new λ and re-converges
it through :func:`repro.bgp.delta.propagate_delta` on the cached
compiled baseline, and the resulting monitor updates are fed back
through the pipeline — yielding time-to-detect / time-to-mitigate /
time-to-recover and residual pollution per strategy, the figure family
(figM1/figM2) the paper never had.
"""

from repro.mitigation.controller import (
    ClosedLoopReport,
    MitigationController,
    MitigationPolicy,
    MitigationStep,
    mitigation_update_stream,
    run_closed_loop,
)
from repro.mitigation.strategies import (
    MITIGATION_STRATEGIES,
    mitigated_padding,
)

__all__ = [
    "MITIGATION_STRATEGIES",
    "mitigated_padding",
    "MitigationPolicy",
    "MitigationStep",
    "MitigationController",
    "ClosedLoopReport",
    "mitigation_update_stream",
    "run_closed_loop",
]
