"""Victim countermeasure strategies against prepend-stripping.

The attack's entire pollution gain is a function of the victim's own
origin padding: the attacker strips ``λ - keep`` trailing copies, so
the malicious route is exactly that many hops shorter than the honest
one.  Every strategy here is therefore a rule for choosing a *new* λ
once the attack is detected — no filtering, no out-of-band channel,
just the victim's next announcement, which is what makes the
countermeasure deployable unilaterally (the property ARTEMIS calls
self-operated mitigation).
"""

from __future__ import annotations

from repro.exceptions import SimulationError

__all__ = ["MITIGATION_STRATEGIES", "mitigated_padding"]

MITIGATION_STRATEGIES = ("none", "stepdown", "reset")


def mitigated_padding(
    strategy: str,
    current: int,
    *,
    step: int = 1,
    floor: int = 1,
) -> int:
    """The origin padding the victim re-announces with.

    ``none`` keeps λ (the control arm); ``stepdown`` reduces it by
    ``step`` toward ``floor`` (gradual, preserving as much of the
    traffic-engineering intent as possible); ``reset`` jumps straight
    to ``floor`` — with the default floor of 1 the attacker's strip
    removes nothing, so the malicious route loses its length advantage
    entirely and residual pollution collapses to the attacker's
    organic (before-hijack) traversal share.
    """
    if strategy not in MITIGATION_STRATEGIES:
        raise SimulationError(
            f"unknown mitigation strategy {strategy!r}; "
            f"expected one of {MITIGATION_STRATEGIES}"
        )
    if current < 1:
        raise SimulationError("current padding must be >= 1")
    if floor < 1:
        raise SimulationError("padding floor must be >= 1")
    if step < 1:
        raise SimulationError("stepdown step must be >= 1")
    if strategy == "none":
        return current
    if strategy == "reset":
        return min(current, floor)
    return max(floor, current - step)
