"""Optimised vantage-point placement (the paper's stated future work).

An ASPP interception launched by attacker ``M`` under valley-free
export pollutes (a subset of) ``M``'s customer cone — so a monitor can
only witness the attack if it sits *inside* that cone (or is ``M``
itself).  Conversely, a single monitor ``m`` witnesses attacks by any
AS on ``m``'s provider-ancestor chains.  Covering all potential
attackers is therefore a set-cover problem:

    elements   = transit ASes (the possible attackers)
    set of m   = provider-ancestors(m) ∪ {m}

:func:`greedy_cover_monitors` runs the classical greedy set-cover
approximation (ln n factor), which concentrates monitors at the *edge*
— deep stubs cover whole ancestor chains — the opposite of the paper's
top-degree ranking, and the reason the placement ablation shows
degree-ranked monitors underperforming.
"""

from __future__ import annotations

from repro.exceptions import DetectionError
from repro.topology.asgraph import ASGraph
from repro.topology.tiers import provider_ancestors

__all__ = ["greedy_cover_monitors", "attacker_coverage"]


def _candidate_cover(graph: ASGraph, monitor: int, transit: frozenset[int]) -> frozenset[int]:
    covered = set(provider_ancestors(graph, monitor)) & transit
    if monitor in transit:
        covered.add(monitor)
    return frozenset(covered)


def greedy_cover_monitors(graph: ASGraph, count: int) -> list[int]:
    """Choose ``count`` monitors greedily maximising attacker coverage.

    Ties break towards higher degree then lower ASN, so the selection
    is deterministic.  Once every transit AS is covered, remaining
    slots are filled by degree (extra redundancy).
    """
    if count < 1:
        raise DetectionError("monitor count must be positive")
    if count > len(graph):
        raise DetectionError(
            f"requested {count} monitors but the topology has {len(graph)} ASes"
        )
    transit = frozenset(asn for asn in graph if graph.customers_of(asn))
    covers = {asn: _candidate_cover(graph, asn, transit) for asn in graph}

    chosen: list[int] = []
    covered: set[int] = set()
    remaining = set(graph.ases)
    while len(chosen) < count:
        best = max(
            remaining,
            key=lambda asn: (len(covers[asn] - covered), graph.degree(asn), -asn),
        )
        if not covers[best] - covered:
            break  # full coverage reached; fill the rest by degree
        chosen.append(best)
        covered |= covers[best]
        remaining.discard(best)
    if len(chosen) < count:
        filler = sorted(remaining, key=lambda asn: (-graph.degree(asn), asn))
        chosen.extend(filler[: count - len(chosen)])
    return sorted(chosen)


def attacker_coverage(graph: ASGraph, monitors: list[int]) -> float:
    """Fraction of transit ASes whose attacks the monitor set can witness."""
    transit = frozenset(asn for asn in graph if graph.customers_of(asn))
    if not transit:
        return 0.0
    covered: set[int] = set()
    for monitor in monitors:
        covered |= _candidate_cover(graph, monitor, transit)
    return len(covered) / len(transit)
