"""Detection of the ASPP-based interception attack (the paper's §V).

* :mod:`repro.detection.alarms` — alarm records with confidence levels;
* :mod:`repro.detection.detector` — the Figure-4 algorithm: find
  padding inconsistencies on a shared path segment across vantage
  points (high confidence), fall back to relationship-based hints (low
  confidence);
* :mod:`repro.detection.monitors` — vantage-point selection strategies
  (the paper ranks ASes by degree and takes the top ``d``);
* :mod:`repro.detection.baselines` — MOAS (PHAS-like) and new-link
  detectors, which catch the baseline attacks but *not* ASPP
  interception;
* :mod:`repro.detection.timing` — pollution-before-detection analysis
  (Figure 14);
* :mod:`repro.detection.pipeline` — the high-throughput streaming
  pipeline: radix-indexed routing tables, interned-path hot loop, and
  batched multi-feed ingestion with backpressure.
"""

from repro.detection.alarms import Alarm, Confidence
from repro.detection.baselines import detect_moas, detect_new_links
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.monitors import (
    random_monitors,
    top_degree_monitors,
    victim_adjacent_monitors,
)
from repro.detection.pipeline import (
    PipelineDetector,
    RadixRoutingTable,
    StreamingPipeline,
)
from repro.detection.placement import attacker_coverage, greedy_cover_monitors
from repro.detection.selfcheck import PrefixOwnerSelfCheck
from repro.detection.streaming import StreamingDetector, attack_update_stream
from repro.detection.timing import DetectionTiming, detection_timing

__all__ = [
    "Alarm",
    "Confidence",
    "ASPPInterceptionDetector",
    "PrefixOwnerSelfCheck",
    "top_degree_monitors",
    "random_monitors",
    "victim_adjacent_monitors",
    "greedy_cover_monitors",
    "attacker_coverage",
    "StreamingDetector",
    "attack_update_stream",
    "PipelineDetector",
    "RadixRoutingTable",
    "StreamingPipeline",
    "detect_moas",
    "detect_new_links",
    "DetectionTiming",
    "detection_timing",
]
