"""Online detection over a BGP update stream.

The paper frames deployment as continuous monitoring: "provide real
time notifications of any potential ASPP based prefix interception
hijacking to the prefix owner ... an prefix owner can monitor the data
from public monitors continuously using tools like PHAS".  The batch
detector (:class:`~repro.detection.detector.ASPPInterceptionDetector`)
compares two snapshots; this module wraps it into a stateful consumer
of individual update messages:

* :class:`StreamingDetector` keeps the latest route per (monitor,
  prefix), applies each incoming update, and runs the Figure-4 check on
  the change against the current global view — emitting alarms as the
  stream plays;
* :func:`attack_update_stream` converts a simulated attack into the
  update sequence the monitors would have emitted, ordered by the
  engine's logical propagation clock, so the streaming path can be
  exercised (and timed) end to end.
"""

from __future__ import annotations

from types import MappingProxyType

from repro.attack.interception import InterceptionResult
from repro.bgp.collectors import MonitorView, RouteCollector
from repro.bgp.route import Route
from repro.bgp.updates import UpdateMessage
from repro.detection.alarms import Alarm
from repro.detection.detector import ASPPInterceptionDetector
from repro.telemetry.metrics import RunMetrics, timed
from repro.topology.relationships import PrefClass

__all__ = ["StreamingDetector", "attack_update_stream"]

#: Collector feeds carry no local-preference attribute, so the class of
#: a reconstructed route must be inferred.  The class is irrelevant to
#: the padding-inconsistency check itself (the Figure-4 algorithm reads
#: only AS-PATHs), but it *is* part of route identity: duplicate
#: suppression compares full routes, so a wrongly defaulted class makes
#: a re-announced route look like a change.  The detector therefore
#: remembers the last class observed per (prefix, monitor, neighbour) —
#: a neighbour's class is fixed by the business relationship, so it
#: survives withdraw/re-announce flaps — and only falls back to the
#: most conservative tier for neighbours it has never seen.
_DEFAULT_PREF = PrefClass.PROVIDER


class StreamingDetector:
    """Stateful wrapper running the Figure-4 algorithm per update.

    ``prime`` the detector with a baseline view first (real deployments
    bootstrap from a table dump), then feed updates; each call returns
    the alarms that update triggered.

    ``metrics`` optionally attaches a telemetry registry recording
    updates consumed, alarms raised and the number of updates until the
    first alarm (``detection.*`` namespace).

    ``copy_views`` controls what :meth:`consume` hands to
    ``inspect_change``: the default (``False``) passes a read-only
    *live* view over the internal table — the inspection protocol is
    read-only, so no copy is needed — while ``True`` restores the
    historical per-update ``dict(...)`` snapshot (kept only so the
    equivalence suite can prove both paths raise identical alarms).
    """

    def __init__(
        self,
        detector: ASPPInterceptionDetector,
        *,
        metrics: RunMetrics | None = None,
        copy_views: bool = False,
    ) -> None:
        self._detector = detector
        self._copy_views = copy_views
        #: prefix -> monitor -> current route
        self._tables: dict[str, dict[int, Route | None]] = {}
        #: prefix -> monitor -> neighbour -> last class observed for
        #: routes learned from that neighbour (survives withdrawals).
        self._classes: dict[str, dict[int, dict[int, PrefClass]]] = {}
        self.metrics = metrics
        self._updates_seen = 0
        self._first_alarm_recorded = False

    def prime(self, view: MonitorView) -> None:
        """Install a baseline snapshot (no alarms are raised)."""
        table = self._tables.setdefault(view.prefix, {})
        table.update(view.routes)
        classes = self._classes.setdefault(view.prefix, {})
        for monitor, route in view.routes.items():
            if route is not None and route.learned_from is not None:
                classes.setdefault(monitor, {})[route.learned_from] = route.pref

    def current_view(self, prefix: str) -> MonitorView:
        """The detector's present belief about ``prefix``."""
        return MonitorView(prefix=prefix, routes=dict(self._tables.get(prefix, {})))

    def live_view(self, prefix: str) -> MonitorView:
        """Like :meth:`current_view` but zero-copy: the routes mapping
        is a read-only proxy over the internal table, so it tracks
        subsequent updates instead of freezing this instant."""
        return MonitorView(
            prefix=prefix,
            routes=MappingProxyType(self._tables.setdefault(prefix, {})),
        )

    def consume(self, message: UpdateMessage) -> list[Alarm]:
        """Apply one update and return any alarms it triggers."""
        self._updates_seen += 1
        metrics = self.metrics
        track = metrics is not None and metrics.enabled
        if track:
            metrics.count("detection.updates_consumed")
        table = self._tables.setdefault(message.prefix, {})
        previous = table.get(message.monitor)
        classes = self._classes.setdefault(message.prefix, {}).setdefault(
            message.monitor, {}
        )
        if message.withdrawn:
            new_route: Route | None = None
        else:
            learned = message.path[0] if message.path else None
            # The class a neighbour's routes carry is pinned by the
            # monitor-neighbour relationship: reuse the remembered one
            # (even across a withdraw/re-announce flap) and only default
            # for never-seen neighbours.
            if learned is not None:
                pref = classes.get(learned, _DEFAULT_PREF)
                classes[learned] = pref
            else:
                pref = _DEFAULT_PREF
            new_route = Route(message.prefix, message.path, learned, pref)
        if new_route == previous:
            return []
        table[message.monitor] = new_route
        view = (
            self.current_view(message.prefix)
            if self._copy_views
            else self.live_view(message.prefix)
        )
        alarms = self._detector.inspect_change(
            message.monitor, previous, new_route, view
        )
        if track and alarms:
            metrics.count("detection.alarms", len(alarms))
            if not self._first_alarm_recorded:
                self._first_alarm_recorded = True
                metrics.observe(
                    "detection.updates_to_first_alarm", self._updates_seen
                )
        return alarms

    @timed("detection.consume_seconds")
    def consume_all(self, messages: list[UpdateMessage]) -> list[Alarm]:
        """Feed a whole stream; returns the concatenated alarms."""
        alarms: list[Alarm] = []
        for message in messages:
            alarms.extend(self.consume(message))
        return alarms


def attack_update_stream(
    result: InterceptionResult,
    collector: RouteCollector,
    *,
    attacker_feeds_collector: bool = True,
) -> list[UpdateMessage]:
    """The update sequence monitors emit as the attack propagates.

    Monitors are ordered by the engine's adoption round (the logical
    hop count the malicious news travelled); an attacker that peers
    with the collector announces its modified route at round 0.
    Monitors whose route did not change emit nothing.
    """
    before = collector.snapshot(result.baseline)
    modifiers = (
        {result.attack.attacker: result.attack.modifier()}
        if attacker_feeds_collector
        else None
    )
    after = collector.snapshot(result.attacked, modifiers=modifiers)

    changed: list[tuple[int, int]] = []  # (round, monitor)
    for monitor in collector.monitors:
        if before.routes[monitor] == after.routes[monitor]:
            continue
        round_stamp = result.attacked.adoption_round.get(monitor, 0)
        changed.append((round_stamp, monitor))
    changed.sort()

    messages: list[UpdateMessage] = []
    for _round, monitor in changed:
        route = after.routes[monitor]
        if route is None:
            messages.append(
                UpdateMessage(
                    monitor=monitor, prefix=after.prefix, path=(), withdrawn=True
                )
            )
        else:
            messages.append(
                UpdateMessage(monitor=monitor, prefix=after.prefix, path=route.path)
            )
    return messages
