"""The prefix-indexed routing table behind the streaming pipeline.

Design (the tentpole's hot-path contract):

* routes live in **flat per-prefix slot arrays** indexed by a dense
  monitor-slot id, not per-update dicts of :class:`Route` objects — a
  slot holds the AS-path as an id interned through
  :class:`repro.bgp.compiled.InternTable`, so duplicate suppression is
  an integer compare and a withdraw/re-announce flap re-uses the
  interned chain instead of re-hashing tuples;
* the Figure-4 inspection reads a **live view**
  (:class:`LiveMonitorView`) backed directly by the slot arrays — the
  ``dict(...)`` snapshot the legacy
  :meth:`~repro.detection.streaming.StreamingDetector.consume` builds
  per update (O(monitors) allocations) disappears entirely;
* the padding precheck that decides whether an update needs the full
  Figure-4 scan runs on **memoised per-pid origin/padding facts** —
  O(1) amortised per update, zero tuple traversals on the quiet path.

Sentinels in the pid slot arrays: ``_ABSENT`` (monitor never reported
this prefix — not in the view), ``_WITHDRAWN`` (monitor reported a
withdrawal — in the view with route ``None``); ids >= 0 are interned
paths (0 is the empty path).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from time import perf_counter

from repro.bgp.collectors import MonitorView
from repro.bgp.compiled import CompiledTopology, InternTable
from repro.bgp.route import Route
from repro.bgp.updates import UpdateMessage
from repro.detection.alarms import Alarm
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.streaming import _DEFAULT_PREF
from repro.telemetry.metrics import RunMetrics
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import PrefClass

from repro.detection.pipeline.radix import PrefixTrie

__all__ = ["RadixRoutingTable", "LiveMonitorView", "PipelineDetector"]

_ABSENT = -2
_WITHDRAWN = -1


class _PrefixEntry:
    """Per-prefix routing state: flat slot arrays + class memory."""

    __slots__ = ("prefix", "pids", "prefs", "classes", "present", "route_cache", "view")

    def __init__(self, prefix: str, table: "RadixRoutingTable") -> None:
        self.prefix = prefix
        #: per-slot interned path id (sentinels above)
        self.pids: list[int] = []
        #: per-slot preference class (None while the slot holds no route)
        self.prefs: list[PrefClass | None] = []
        #: monitor -> neighbour -> last class observed (the PR 2
        #: per-(prefix, monitor, neighbour) memory: survives flaps)
        self.classes: dict[int, dict[int, PrefClass]] = {}
        #: monitors that appear in the view (withdrawn ones included)
        self.present: set[int] = set()
        #: (monitor, pid, pref) -> reified Route — stable because a
        #: neighbour's remembered class never changes once recorded
        self.route_cache: dict[tuple[int, int, PrefClass], Route] = {}
        self.view = LiveMonitorView(prefix, _LiveRoutes(self, table))


class _LiveRoutes(Mapping):
    """Read-only monitor -> Route mapping over one entry's slot arrays.

    Routes are materialised lazily (and memoised per interned path id),
    so iterating the view costs object construction only the first time
    a (monitor, path) pair is actually *read* — which happens during
    Figure-4 inspection, never on the per-update hot path.
    """

    __slots__ = ("_entry", "_table")

    def __init__(self, entry: _PrefixEntry, table: "RadixRoutingTable") -> None:
        self._entry = entry
        self._table = table

    def __getitem__(self, monitor: int) -> Route | None:
        entry = self._entry
        if monitor not in entry.present:
            raise KeyError(monitor)
        slot = self._table.monitor_slots[monitor]
        pid = entry.pids[slot]
        if pid == _WITHDRAWN:
            return None
        return self._table.route_for(entry, monitor, pid, entry.prefs[slot])

    def __iter__(self) -> Iterator[int]:
        return iter(self._entry.present)

    def __len__(self) -> int:
        return len(self._entry.present)


class LiveMonitorView:
    """Duck-type of :class:`~repro.bgp.collectors.MonitorView` whose
    ``routes`` mapping reads the slot arrays in place (zero copies).
    ``ASPPInterceptionDetector.inspect_change`` accepts either."""

    __slots__ = ("prefix", "routes")

    def __init__(self, prefix: str, routes: _LiveRoutes) -> None:
        self.prefix = prefix
        self.routes = routes

    def snapshot(self) -> MonitorView:
        """A frozen :class:`MonitorView` copy (tests / reporting)."""
        return MonitorView(prefix=self.prefix, routes=dict(self.routes.items()))


class RadixRoutingTable:
    """All per-prefix routing state, indexed by a radix trie.

    The trie is the authoritative index (it serves
    :meth:`longest_match`); ``_exact`` memoises prefix-string ->
    entry so the per-update exact lookup is one dict probe instead of a
    32-bit trie walk.
    """

    __slots__ = ("intern", "trie", "_exact", "monitor_slots", "_origin_pad")

    def __init__(self, intern: InternTable) -> None:
        self.intern = intern
        self.trie = PrefixTrie()
        self._exact: dict[str, _PrefixEntry] = {}
        #: monitor ASN -> dense slot id (shared across prefixes)
        self.monitor_slots: dict[int, int] = {}
        #: pid -> (origin asn, origin padding); None for the empty path
        self._origin_pad: dict[int, tuple[int, int] | None] = {0: None}

    # -- entries --------------------------------------------------------
    def entry(self, prefix: str) -> _PrefixEntry:
        """The entry for ``prefix``, created (and trie-indexed) on
        first sight."""
        found = self._exact.get(prefix)
        if found is None:
            found = _PrefixEntry(prefix, self)
            self.trie.set(prefix, found)
            # Key the memo by the *canonical* string too, but insist the
            # caller's spelling is already canonical: parse_prefix inside
            # trie.set has validated it, so prefix is its own canon.
            self._exact[prefix] = found
        return found

    def get_entry(self, prefix: str) -> _PrefixEntry | None:
        return self._exact.get(prefix)

    def longest_match(self, prefix: str) -> tuple[str, LiveMonitorView] | None:
        """Most specific tracked prefix covering ``prefix`` and its
        live view — the lookup sub-prefix/MOAS scenarios resolve
        against."""
        hit = self.trie.longest_match(prefix)
        if hit is None:
            return None
        stored, entry = hit
        return stored, entry.view  # type: ignore[union-attr]

    def prefixes(self) -> list[str]:
        return [prefix for prefix, _ in self.trie.items()]

    # -- slots ----------------------------------------------------------
    def slot_of(self, monitor: int) -> int:
        slot = self.monitor_slots.get(monitor)
        if slot is None:
            slot = len(self.monitor_slots)
            self.monitor_slots[monitor] = slot
        return slot

    @staticmethod
    def _ensure_slot(entry: _PrefixEntry, slot: int) -> None:
        pids = entry.pids
        if slot >= len(pids):
            grow = slot + 1 - len(pids)
            pids.extend([_ABSENT] * grow)
            entry.prefs.extend([None] * grow)

    # -- interned path facts --------------------------------------------
    def origin_pad(self, pid: int) -> tuple[int, int] | None:
        """``(origin, λ)`` of an interned path, memoised per pid.

        λ follows :func:`repro.bgp.aspath.padding_of_origin`: the length
        of the origin's trailing run (1 = no prepending).  The interned
        chain stores the trailing run as its bottom node, so one walk
        down the parent pointers answers both questions; every later
        update carrying the same pid is a dict hit.
        """
        memo = self._origin_pad
        found = memo.get(pid)
        if found is None and pid not in memo:
            intern = self.intern
            node = pid
            parent = intern.parent[node]
            while parent != 0:
                node = parent
                parent = intern.parent[node]
            found = (intern.asn_of(intern.head[node]), intern.run[node])
            memo[pid] = found
        return found

    def route_for(
        self, entry: _PrefixEntry, monitor: int, pid: int, pref: PrefClass
    ) -> Route:
        """The reified :class:`Route` for a slot (memoised)."""
        key = (monitor, pid, pref)
        route = entry.route_cache.get(key)
        if route is None:
            path = self.intern.reify(pid)
            route = Route(entry.prefix, path, path[0] if path else None, pref)
            entry.route_cache[key] = route
        return route


class PipelineDetector:
    """The Figure-4 streaming detector over a :class:`RadixRoutingTable`.

    Semantically identical to
    :class:`~repro.detection.streaming.StreamingDetector` (the
    equivalence suites pin alarms bit for bit); structurally rebuilt so
    the per-update cost is O(1) amortised:

    * duplicate suppression compares interned path ids and remembered
      classes — no Route construction, no tuple equality;
    * the padding precheck (origin unchanged? λ decreased?) reads
      per-pid memos — the full Figure-4 scan runs only for updates
      that can actually raise an alarm;
    * the scan, when it runs, reads the live view — no snapshot copy.

    ``metrics`` records ``detection.pipeline.*`` counters and the
    per-update latency histogram.  Updates towards
    ``detection.updates_to_first_alarm`` are counted unconditionally
    (the registry may be attached mid-stream); only the ``observe()``
    is gated on an enabled registry.
    """

    def __init__(
        self,
        detector: ASPPInterceptionDetector,
        graph: ASGraph | None = None,
        *,
        intern: InternTable | None = None,
        metrics: RunMetrics | None = None,
    ) -> None:
        if intern is None:
            if graph is None:
                raise TypeError("PipelineDetector needs a graph or an InternTable")
            intern = InternTable(CompiledTopology.from_graph(graph))
        self._detector = detector
        self.table = RadixRoutingTable(intern)
        self.metrics = metrics
        self._updates_seen = 0
        self._first_alarm_recorded = False
        #: prefix -> updates seen when its first alarm fired.  Measured
        #: at the detector (post-merge), so for lossless ingestion the
        #: value is identical across feed counts, batch sizes and
        #: backpressure policies — the deterministic time-to-detect
        #: signal the mitigation controller consumes.
        self.first_alarm_at: dict[str, int] = {}

    # -- priming --------------------------------------------------------
    def prime(self, view: MonitorView) -> None:
        """Install a baseline snapshot (no alarms are raised)."""
        table = self.table
        entry = table.entry(view.prefix)
        intern = table.intern
        for monitor, route in view.routes.items():
            slot = table.slot_of(monitor)
            table._ensure_slot(entry, slot)
            entry.present.add(monitor)
            if route is None:
                entry.pids[slot] = _WITHDRAWN
                entry.prefs[slot] = None
                continue
            entry.pids[slot] = intern.intern_tuple(route.path)
            entry.prefs[slot] = route.pref
            if route.learned_from is not None:
                entry.classes.setdefault(monitor, {})[route.learned_from] = route.pref

    # -- views ----------------------------------------------------------
    def live_view(self, prefix: str) -> LiveMonitorView:
        return self.table.entry(prefix).view

    def current_view(self, prefix: str) -> MonitorView:
        """A frozen snapshot copy (API-compatible with the legacy
        detector; not used on the hot path)."""
        entry = self.table.get_entry(prefix)
        if entry is None:
            return MonitorView(prefix=prefix, routes={})
        return entry.view.snapshot()

    # -- consumption ----------------------------------------------------
    def consume(self, message: UpdateMessage) -> list[Alarm]:
        """Apply one update and return any alarms it triggers."""
        return self.consume_batch((message,))

    def consume_batch(self, messages: Sequence[UpdateMessage]) -> list[Alarm]:
        """Apply a batch of updates in order; returns their alarms.

        One batch shares the prefix-entry lookup across consecutive
        same-prefix messages and hoists every table attribute out of
        the loop — the amortisation the bounded-queue pipeline's drain
        path relies on.
        """
        metrics = self.metrics
        track = metrics is not None and metrics.enabled
        table = self.table
        intern_tuple = table.intern.intern_tuple
        origin_pad = table.origin_pad
        origin_pad_memo = table._origin_pad
        monitor_slots = table.monitor_slots
        detector = self._detector
        alarms: list[Alarm] = []
        entry: _PrefixEntry | None = None
        entry_prefix: str | None = None
        pids: list[int] = []
        prefs: list[PrefClass | None] = []
        entry_classes: dict[int, dict[int, PrefClass]] = {}
        updates_seen = self._updates_seen
        for message in messages:
            updates_seen += 1
            start = perf_counter() if track else 0.0
            prefix = message.prefix
            if prefix != entry_prefix:
                entry = table._exact.get(prefix)
                if entry is None:
                    entry = table.entry(prefix)
                entry_prefix = prefix
                pids = entry.pids
                prefs = entry.prefs
                entry_classes = entry.classes
            monitor = message.monitor
            slot = monitor_slots.get(monitor)
            if slot is None:
                slot = table.slot_of(monitor)
            if slot >= len(pids):
                table._ensure_slot(entry, slot)
            old_pid = pids[slot]
            old_pref = prefs[slot]
            if message.withdrawn:
                if old_pid < 0:
                    # Route already None (or monitor absent): the legacy
                    # detector suppresses this as a duplicate without
                    # installing the monitor either.
                    if track:
                        metrics.count("detection.pipeline.updates")
                        metrics.observe(
                            "detection.pipeline.update_latency_us",
                            (perf_counter() - start) * 1e6,
                        )
                    continue
                pids[slot] = _WITHDRAWN
                prefs[slot] = None
                # A withdrawal is never an ASPP symptom (current route
                # is None): state changes, no inspection.
                if track:
                    metrics.count("detection.pipeline.updates")
                    metrics.count("detection.pipeline.changes")
                    metrics.observe(
                        "detection.pipeline.update_latency_us",
                        (perf_counter() - start) * 1e6,
                    )
                continue
            path = message.path
            new_pid = intern_tuple(path)
            if path:
                learned = path[0]
                classes = entry_classes.get(monitor)
                if classes is None:
                    classes = entry_classes[monitor] = {}
                pref = classes.get(learned)
                if pref is None:
                    pref = classes[learned] = _DEFAULT_PREF
            else:
                pref = _DEFAULT_PREF
            if new_pid == old_pid and pref is old_pref:
                if track:
                    metrics.count("detection.pipeline.updates")
                    metrics.observe(
                        "detection.pipeline.update_latency_us",
                        (perf_counter() - start) * 1e6,
                    )
                continue
            pids[slot] = new_pid
            prefs[slot] = pref
            entry.present.add(monitor)
            # Precheck on interned facts: the full Figure-4 scan only
            # runs when previous and current routes exist, are
            # non-empty, share an origin, and λ strictly decreased —
            # exactly the early exits of ``inspect_change``.  The memo
            # dict is probed inline (for pid > 0 the value is never
            # None, so a miss falls through to the chain walk).
            inspect = False
            if old_pid > 0 and new_pid > 0:
                before = origin_pad_memo.get(old_pid) or origin_pad(old_pid)
                now = origin_pad_memo.get(new_pid) or origin_pad(new_pid)
                inspect = before[0] == now[0] and now[1] < before[1]
            if inspect:
                previous = table.route_for(entry, monitor, old_pid, old_pref)
                current = table.route_for(entry, monitor, new_pid, pref)
                raised = detector.inspect_change(monitor, previous, current, entry.view)
                if raised:
                    alarms.extend(raised)
                    if prefix not in self.first_alarm_at:
                        self.first_alarm_at[prefix] = updates_seen
                    if track:
                        metrics.count("detection.pipeline.alarms", len(raised))
                    if not self._first_alarm_recorded:
                        self._first_alarm_recorded = True
                        if track:
                            metrics.observe(
                                "detection.updates_to_first_alarm",
                                updates_seen,
                            )
            if track:
                metrics.count("detection.pipeline.updates")
                metrics.count("detection.pipeline.changes")
                metrics.observe(
                    "detection.pipeline.update_latency_us",
                    (perf_counter() - start) * 1e6,
                )
        self._updates_seen = updates_seen
        if track:
            metrics.count("detection.pipeline.batches")
            metrics.observe("detection.pipeline.batch_size", len(messages))
        return alarms
