"""Binary radix trie over IPv4 prefixes (pure Python).

The streaming pipeline keys its routing state by prefix; real
deployments (ARTEMIS uses py-radix, the bscthesis exemplar pytricia)
index that state in a radix tree so that sub-prefix events resolve by
longest match.  This is the same structure without the C dependency: a
plain binary trie, one node per distinct bit-prefix on the path to a
stored prefix, depth bounded by 32.

Prefixes are canonical IPv4 CIDR strings (``"203.0.113.0/24"``).  Host
bits set below the mask are rejected rather than silently truncated:
two textually different keys must never alias to one table entry,
because the detector's per-prefix state (and its equivalence oracle,
which keys a plain dict by the prefix *string*) would diverge.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import DetectionError

__all__ = ["parse_prefix", "format_prefix", "PrefixTrie"]


def parse_prefix(text: str) -> tuple[int, int]:
    """Parse ``"a.b.c.d/len"`` into ``(value, length)``.

    ``value`` is the network address as a 32-bit integer; ``length``
    the mask length.  Raises :class:`DetectionError` for anything that
    is not a canonical IPv4 CIDR (bad shape, octets out of range, host
    bits set below the mask).
    """
    address, sep, length_text = text.partition("/")
    if not sep:
        raise DetectionError(f"prefix {text!r} is not in CIDR a.b.c.d/len form")
    octets = address.split(".")
    if len(octets) != 4:
        raise DetectionError(f"prefix {text!r} does not have four octets")
    value = 0
    for octet_text in octets:
        if not octet_text.isdigit():
            raise DetectionError(f"prefix {text!r} has a non-numeric octet")
        octet = int(octet_text)
        if octet > 255:
            raise DetectionError(f"prefix {text!r} has an octet > 255")
        value = (value << 8) | octet
    if not length_text.isdigit():
        raise DetectionError(f"prefix {text!r} has a non-numeric mask length")
    length = int(length_text)
    if length > 32:
        raise DetectionError(f"prefix {text!r} has a mask length > 32")
    if length < 32 and value & ((1 << (32 - length)) - 1):
        raise DetectionError(
            f"prefix {text!r} has host bits set below its /{length} mask"
        )
    return value, length


def format_prefix(value: int, length: int) -> str:
    """The canonical CIDR string for ``(value, length)``."""
    return (
        f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}."
        f"{(value >> 8) & 0xFF}.{value & 0xFF}/{length}"
    )


class _Node:
    """One trie node: two children plus an optional stored entry."""

    __slots__ = ("zero", "one", "key", "entry")

    def __init__(self) -> None:
        self.zero: _Node | None = None
        self.one: _Node | None = None
        self.key: str | None = None  # canonical prefix string when occupied
        self.entry: object | None = None


class PrefixTrie:
    """Binary radix trie: prefix string -> arbitrary entry.

    ``set``/``get``/``delete`` are exact-match; :meth:`longest_match`
    returns the most specific stored prefix covering the query.
    Iteration yields ``(prefix, entry)`` in bit order — i.e. sorted by
    ``(network value, mask length)``.
    """

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: str) -> bool:
        node = self._find(*parse_prefix(prefix))
        return node is not None and node.key is not None

    # -- exact match ----------------------------------------------------
    def _find(self, value: int, length: int) -> _Node | None:
        node: _Node | None = self._root
        bit = 1 << 31
        for _ in range(length):
            if node is None:
                return None
            node = node.one if value & bit else node.zero
            bit >>= 1
        return node

    def set(self, prefix: str, entry: object) -> None:
        """Insert (or replace) the entry stored at ``prefix``."""
        value, length = parse_prefix(prefix)
        node = self._root
        bit = 1 << 31
        for _ in range(length):
            if value & bit:
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
            bit >>= 1
        if node.key is None:
            self._size += 1
        node.key = format_prefix(value, length)
        node.entry = entry

    def get(self, prefix: str, default: object | None = None) -> object | None:
        """The entry stored exactly at ``prefix`` (or ``default``)."""
        node = self._find(*parse_prefix(prefix))
        if node is None or node.key is None:
            return default
        return node.entry

    def delete(self, prefix: str) -> bool:
        """Remove ``prefix``; True when it was stored.  Empty branches
        are pruned so the trie never leaks nodes across withdraw/
        re-announce flaps."""
        value, length = parse_prefix(prefix)
        path: list[tuple[_Node, int]] = []  # (parent, taken bit)
        node = self._root
        bit = 1 << 31
        for _ in range(length):
            taken = 1 if value & bit else 0
            child = node.one if taken else node.zero
            if child is None:
                return False
            path.append((node, taken))
            node = child
            bit >>= 1
        if node.key is None:
            return False
        node.key = None
        node.entry = None
        self._size -= 1
        # Prune now-empty leaves back up the walked path.
        for parent, taken in reversed(path):
            child = parent.one if taken else parent.zero
            if child.key is not None or child.zero is not None or child.one is not None:
                break
            if taken:
                parent.one = None
            else:
                parent.zero = None
        return True

    # -- longest match --------------------------------------------------
    def longest_match(self, prefix: str) -> tuple[str, object] | None:
        """The most specific stored prefix covering ``prefix``.

        The query may be a full /32 (a destination address) or any
        CIDR; a stored prefix covers it when the stored mask is no
        longer than the query's and the masked bits agree.  Returns
        ``(stored_prefix, entry)`` or ``None``.
        """
        value, length = parse_prefix(prefix)
        node: _Node | None = self._root
        best: _Node | None = node if node.key is not None else None
        bit = 1 << 31
        for _ in range(length):
            node = node.one if value & bit else node.zero  # type: ignore[union-attr]
            if node is None:
                break
            if node.key is not None:
                best = node
            bit >>= 1
        if best is None:
            return None
        return best.key, best.entry  # type: ignore[return-value]

    # -- iteration ------------------------------------------------------
    def items(self) -> Iterator[tuple[str, object]]:
        """All ``(prefix, entry)`` pairs in bit (sorted) order."""
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.key is not None:
                yield node.key, node.entry
            # Visit zero before one: push one first (LIFO).  A node's
            # own key sorts before its children's (shorter mask first),
            # which is exactly (value, length) order.
            if node.one is not None:
                stack.append(node.one)
            if node.zero is not None:
                stack.append(node.zero)

    def __iter__(self) -> Iterator[str]:
        return (prefix for prefix, _ in self.items())
