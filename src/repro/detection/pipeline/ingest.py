"""Batched multi-feed ingestion with bounded queues and backpressure.

A deployment watches many collector feeds at once (RouteViews alone
exports dozens); each feed delivers a slice of the global update stream
in order, but the slices interleave arbitrarily.  The pipeline makes
that interleaving irrelevant:

* every feed drains through a **bounded queue** with an explicit
  overflow policy — ``block`` (the producer is stalled while the
  pipeline drains, the lossless default), ``drop`` (the offered update
  is discarded and its sequence number recorded as skipped) or
  ``park`` (the update overflows into an unbounded side buffer that
  drains with the next pump) — every event counted in telemetry;
* messages are merged back into **sequence order** before they reach
  the detector, so the alarm stream is bit-identical to the serial
  single-feed oracle run over the same (surviving) updates, for every
  feed count, batch size and interleaving;
* the detector is invoked through
  :meth:`~repro.detection.pipeline.table.PipelineDetector.consume_batch`
  in batches of up to ``batch`` messages, amortising table lookups and
  dispatch overhead.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Sequence

from repro.bgp.collectors import MonitorView
from repro.bgp.updates import SequencedUpdate
from repro.detection.alarms import Alarm
from repro.detection.pipeline.table import PipelineDetector
from repro.exceptions import DetectionError
from repro.telemetry.metrics import RunMetrics

__all__ = ["BACKPRESSURE_POLICIES", "FeedQueue", "StreamingPipeline", "split_stream"]

BACKPRESSURE_POLICIES = ("block", "drop", "park")


class FeedQueue:
    """One monitor feed's bounded inbox (plus its parking overflow)."""

    __slots__ = ("feed_id", "capacity", "items", "parked")

    def __init__(self, feed_id: int, capacity: int) -> None:
        self.feed_id = feed_id
        self.capacity = capacity
        self.items: deque[SequencedUpdate] = deque()
        self.parked: deque[SequencedUpdate] = deque()

    @property
    def depth(self) -> int:
        return len(self.items)


class StreamingPipeline:
    """N bounded feed queues in front of one :class:`PipelineDetector`.

    Contract: the sequence numbers offered across all feeds are a
    (subset of a) dense range starting at ``first_seq``, each feed's
    slice arriving in increasing order.  ``offer`` enqueues one update;
    the pipeline pumps itself whenever a full batch is ready, and
    :meth:`flush` processes everything still buffered at end of stream
    (sequence gaps — dropped or never-offered updates — are skipped in
    order).  Alarms are returned from the call that processed them and
    also accumulated on :attr:`alarms`.
    """

    def __init__(
        self,
        detector: PipelineDetector,
        *,
        feeds: int,
        batch: int = 64,
        capacity: int = 256,
        policy: str = "block",
        first_seq: int = 0,
        metrics: RunMetrics | None = None,
    ) -> None:
        if feeds < 1:
            raise DetectionError("a pipeline needs at least one feed")
        if batch < 1:
            raise DetectionError("batch size must be >= 1")
        if capacity < 1:
            raise DetectionError("queue capacity must be >= 1")
        if policy not in BACKPRESSURE_POLICIES:
            raise DetectionError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.detector = detector
        self.batch = batch
        self.policy = policy
        self.metrics = metrics
        self.queues = [FeedQueue(i, capacity) for i in range(feeds)]
        self.alarms: list[Alarm] = []
        #: reorder buffer: seq -> message, waiting for its turn
        self._pending: dict[int, SequencedUpdate] = {}
        #: every seq currently buffered anywhere (queues, parked, or the
        #: reorder buffer) — the duplicate-delivery guard
        self._buffered: set[int] = set()
        self._next_seq = first_seq
        self._enqueued = 0
        #: sequence numbers known lost (drop policy) — skipped in order
        self._skipped: set[int] = set()
        # backpressure accounting (mirrored into metrics when attached)
        self.dropped = 0
        self.parked = 0
        self.blocked = 0
        self.processed = 0
        self.dropped_seqs: list[int] = []

    # -- producing ------------------------------------------------------
    def prime(self, view: MonitorView) -> None:
        self.detector.prime(view)

    def offer(self, feed_id: int, item: SequencedUpdate) -> list[Alarm]:
        """Enqueue one update from ``feed_id``; returns alarms raised if
        the offer triggered a pump (full batch ready, or a blocking
        drain on overflow)."""
        queue = self.queues[feed_id]
        if (
            item.seq < self._next_seq
            or item.seq in self._buffered
            or item.seq in self._skipped
        ):
            raise DetectionError(
                f"feed {feed_id} delivered sequence {item.seq} twice "
                f"(next expected {self._next_seq})"
            )
        raised: list[Alarm] = []
        metrics = self.metrics
        track = metrics is not None and metrics.enabled
        if len(queue.items) >= queue.capacity:
            if self.policy == "drop":
                self.dropped += 1
                self.dropped_seqs.append(item.seq)
                self._skipped.add(item.seq)
                if track:
                    metrics.count("detection.pipeline.dropped")
                return raised
            if self.policy == "park":
                self.parked += 1
                queue.parked.append(item)
                self._buffered.add(item.seq)
                if track:
                    metrics.count("detection.pipeline.parked")
                return raised
            # block: the producer stalls while the pipeline drains.
            self.blocked += 1
            if track:
                metrics.count("detection.pipeline.blocked")
            raised.extend(self.pump())
        queue.items.append(item)
        self._buffered.add(item.seq)
        self._enqueued += 1
        if track:
            metrics.observe("detection.pipeline.queue_depth", len(queue.items))
        if self._enqueued >= self.batch:
            raised.extend(self.pump())
        return raised

    # -- draining -------------------------------------------------------
    def _collect(self) -> None:
        """Move everything queued (parked overflow included) into the
        reorder buffer."""
        pending = self._pending
        for queue in self.queues:
            items = queue.items
            while items:
                update = items.popleft()
                pending[update.seq] = update
            parked = queue.parked
            while parked:
                update = parked.popleft()
                pending[update.seq] = update
        self._enqueued = 0

    def _ready_run(self) -> list[SequencedUpdate]:
        """The maximal run of consecutive sequence numbers available at
        the merge point (known-skipped numbers are passed over)."""
        pending = self._pending
        skipped = self._skipped
        buffered = self._buffered
        run: list[SequencedUpdate] = []
        seq = self._next_seq
        while True:
            if seq in skipped:
                skipped.remove(seq)
                seq += 1
                continue
            update = pending.pop(seq, None)
            if update is None:
                break
            buffered.discard(seq)
            run.append(update)
            seq += 1
        self._next_seq = seq
        return run

    def _process(self, run: Sequence[SequencedUpdate]) -> list[Alarm]:
        raised: list[Alarm] = []
        batch = self.batch
        consume_batch = self.detector.consume_batch
        for start in range(0, len(run), batch):
            chunk = [update.message for update in run[start : start + batch]]
            raised.extend(consume_batch(chunk))
        self.processed += len(run)
        self.alarms.extend(raised)
        return raised

    def pump(self) -> list[Alarm]:
        """Drain the queues through the merge point and the detector."""
        self._collect()
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.observe("detection.pipeline.reorder_depth", len(self._pending))
        return self._process(self._ready_run())

    def flush(self) -> list[Alarm]:
        """End of stream: process everything still buffered, skipping
        sequence gaps (lost updates) in order."""
        self._collect()
        raised = self._process(self._ready_run())
        if self._pending:
            # Whatever remains is stranded behind gaps nobody will fill:
            # process it in sequence order.
            leftovers = [self._pending[seq] for seq in sorted(self._pending)]
            self._buffered.difference_update(self._pending)
            self._pending.clear()
            self._skipped.clear()
            raised.extend(self._process(leftovers))
            self._next_seq = leftovers[-1].seq + 1
        return raised

    # -- convenience driver ---------------------------------------------
    def run(
        self,
        streams: Sequence[Sequence[SequencedUpdate]],
        *,
        rng: random.Random | None = None,
    ) -> list[Alarm]:
        """Feed per-feed streams to completion and flush.

        Interleaving is round-robin by default; passing ``rng`` draws
        the next feed at random (deterministically for a seeded rng) —
        the equivalence suites use this to prove interleaving
        independence.
        """
        if len(streams) != len(self.queues):
            raise DetectionError(
                f"{len(streams)} streams offered to a {len(self.queues)}-feed pipeline"
            )
        raised: list[Alarm] = []
        positions = [0] * len(streams)
        remaining = [i for i, stream in enumerate(streams) if stream]
        while remaining:
            if rng is None:
                feed_id = remaining[0]
            else:
                feed_id = remaining[rng.randrange(len(remaining))]
            stream = streams[feed_id]
            raised.extend(self.offer(feed_id, stream[positions[feed_id]]))
            positions[feed_id] += 1
            if positions[feed_id] >= len(stream):
                remaining.remove(feed_id)
        raised.extend(self.flush())
        return raised


def split_stream(
    messages: Iterable[SequencedUpdate],
    feeds: int,
    *,
    rng: random.Random | None = None,
) -> list[list[SequencedUpdate]]:
    """Partition a sequenced stream across ``feeds`` feeds.

    Each feed receives its slice in sequence order (feeds deliver
    in-order; only the *interleaving across* feeds is arbitrary).
    Assignment is round-robin, or random per message when ``rng`` is
    given.
    """
    if feeds < 1:
        raise DetectionError("split_stream needs at least one feed")
    streams: list[list[SequencedUpdate]] = [[] for _ in range(feeds)]
    for position, update in enumerate(messages):
        feed_id = position % feeds if rng is None else rng.randrange(feeds)
        streams[feed_id].append(update)
    return streams
