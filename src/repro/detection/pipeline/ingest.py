"""Batched multi-feed ingestion with bounded queues and backpressure.

A deployment watches many collector feeds at once (RouteViews alone
exports dozens); each feed delivers a slice of the global update stream
in order, but the slices interleave arbitrarily.  The pipeline makes
that interleaving irrelevant:

* every feed drains through a **bounded queue** with an explicit
  overflow policy — ``block`` (the producer is stalled while the
  pipeline drains, the lossless default), ``drop`` (the offered update
  is discarded and its sequence number recorded as skipped) or
  ``park`` (the update overflows into a bounded side buffer that
  drains with the next pump — reaching the park capacity forces a
  pump, so parking stays lossless *and* bounded) — every event counted
  in telemetry;
* messages are merged back into **sequence order** before they reach
  the detector, so the alarm stream is bit-identical to the serial
  single-feed oracle run over the same (surviving) updates, for every
  feed count, batch size and interleaving;
* the detector is invoked through
  :meth:`~repro.detection.pipeline.table.PipelineDetector.consume_batch`
  in batches of up to ``batch`` messages, amortising table lookups and
  dispatch overhead.

Fault tolerance is opt-in via a
:class:`~repro.detection.pipeline.faults.FeedFaultPlan` (or bare
``tolerant=True``): feeds then survive scripted outages with bounded
exponential-backoff reconnection and in-order replay, duplicate
deliveries are deduplicated instead of raising, malformed updates land
in a bounded dead-letter buffer, and a feed that keeps flapping is
quarantined — the pipeline keeps detecting on the surviving monitor
coverage while telemetry (and the optional SLO registry) track the
loss.  The quiet path pays a single predicate for all of this: a
pipeline without a fault layer runs the same code it always did.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Sequence

from repro.bgp.collectors import MonitorView
from repro.bgp.updates import SequencedUpdate
from repro.detection.alarms import Alarm
from repro.detection.pipeline.faults import (
    FeedFaultPlan,
    FeedFaultState,
    corrupt_update,
    is_malformed,
)
from repro.detection.pipeline.table import PipelineDetector
from repro.exceptions import DetectionError
from repro.telemetry.metrics import RunMetrics
from repro.telemetry.slo import SLORegistry

__all__ = ["BACKPRESSURE_POLICIES", "FeedQueue", "StreamingPipeline", "split_stream"]

BACKPRESSURE_POLICIES = ("block", "drop", "park")


class FeedQueue:
    """One monitor feed's bounded inbox (plus its parking overflow)."""

    __slots__ = ("feed_id", "capacity", "items", "parked")

    def __init__(self, feed_id: int, capacity: int) -> None:
        self.feed_id = feed_id
        self.capacity = capacity
        self.items: deque[SequencedUpdate] = deque()
        self.parked: deque[SequencedUpdate] = deque()

    @property
    def depth(self) -> int:
        return len(self.items)


class StreamingPipeline:
    """N bounded feed queues in front of one :class:`PipelineDetector`.

    Contract: the sequence numbers offered across all feeds are a
    (subset of a) dense range starting at ``first_seq``, each feed's
    slice arriving in increasing order.  ``offer`` enqueues one update;
    the pipeline pumps itself whenever a full batch is ready, and
    :meth:`flush` processes everything still buffered at end of stream
    (sequence gaps — dropped or never-offered updates — are skipped in
    order).  Alarms are returned from the call that processed them and
    also accumulated on :attr:`alarms`.

    ``fault_plan`` arms the fault-injection layer (see module docs);
    ``tolerant=True`` enables the same tolerance machinery — dedupe,
    dead-lettering, quarantine — without any scripted faults, which is
    what a deployment fronting real, unreliable feeds would run.
    """

    def __init__(
        self,
        detector: PipelineDetector,
        *,
        feeds: int,
        batch: int = 64,
        capacity: int = 256,
        policy: str = "block",
        first_seq: int = 0,
        metrics: RunMetrics | None = None,
        drop_log: int = 1024,
        park_capacity: int = 4096,
        fault_plan: FeedFaultPlan | None = None,
        tolerant: bool = False,
        quarantine_after: int = 3,
        dead_letter_cap: int = 256,
        slos: SLORegistry | None = None,
    ) -> None:
        if feeds < 1:
            raise DetectionError("a pipeline needs at least one feed")
        if batch < 1:
            raise DetectionError("batch size must be >= 1")
        if capacity < 1:
            raise DetectionError("queue capacity must be >= 1")
        if policy not in BACKPRESSURE_POLICIES:
            raise DetectionError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if drop_log < 1:
            raise DetectionError("drop_log must be >= 1")
        if park_capacity < 1:
            raise DetectionError("park_capacity must be >= 1")
        self.detector = detector
        self.batch = batch
        self.policy = policy
        self.metrics = metrics
        self.queues = [FeedQueue(i, capacity) for i in range(feeds)]
        self.alarms: list[Alarm] = []
        #: reorder buffer: seq -> message, waiting for its turn
        self._pending: dict[int, SequencedUpdate] = {}
        #: every seq currently buffered anywhere (queues, parked, or the
        #: reorder buffer) — the duplicate-delivery guard
        self._buffered: set[int] = set()
        self._next_seq = first_seq
        self._enqueued = 0
        #: sequence numbers known lost (drop policy, faults) — skipped in order
        self._skipped: set[int] = set()
        # backpressure accounting (mirrored into metrics when attached)
        self.dropped = 0
        self.parked = 0
        self.blocked = 0
        self.processed = 0
        #: bounded ring of the most recent dropped sequence numbers —
        #: :attr:`dropped` keeps the exact total even past the cap
        self._dropped_ring: deque[int] = deque(maxlen=drop_log)
        self.park_capacity = park_capacity
        self.park_high_water = 0
        # fault-tolerance layer (None == the original quiet path)
        self.slos = slos
        self.tolerant = tolerant or fault_plan is not None
        self.quarantine_after = quarantine_after
        self.duplicates = 0
        self.dead_lettered = 0
        self.lost = 0
        self.replay_high_water = 0
        self.quarantined_feeds: list[int] = []
        self._dead_letter_ring: deque[SequencedUpdate] = deque(maxlen=dead_letter_cap)
        self._fault_states: list[FeedFaultState] | None = None
        if self.tolerant:
            plan = fault_plan if fault_plan is not None else FeedFaultPlan()
            self._fault_states = [
                FeedFaultState(i, plan.faults_for(i)) for i in range(feeds)
            ]

    @property
    def dropped_seqs(self) -> list[int]:
        """The most recent dropped sequence numbers (bounded ring)."""
        return list(self._dropped_ring)

    @property
    def dead_letters(self) -> list[SequencedUpdate]:
        """The most recent malformed updates (bounded ring)."""
        return list(self._dead_letter_ring)

    @property
    def coverage(self) -> float:
        """Fraction of feeds still delivering (1.0 == no quarantine)."""
        return 1.0 - len(self.quarantined_feeds) / len(self.queues)

    # -- producing ------------------------------------------------------
    def prime(self, view: MonitorView) -> None:
        self.detector.prime(view)

    def offer(self, feed_id: int, item: SequencedUpdate) -> list[Alarm]:
        """Enqueue one update from ``feed_id``; returns alarms raised if
        the offer triggered a pump (full batch ready, or a blocking
        drain on overflow)."""
        if self._fault_states is None:
            return self._admit(feed_id, item)
        return self._offer_tolerant(feed_id, item)

    def _admit(self, feed_id: int, item: SequencedUpdate) -> list[Alarm]:
        queue = self.queues[feed_id]
        raised: list[Alarm] = []
        if (
            item.seq < self._next_seq
            or item.seq in self._buffered
            or item.seq in self._skipped
        ):
            if self.tolerant:
                # Redelivery (feed retransmission or injected duplicate
                # burst): dedupe and move on instead of tearing down.
                self.duplicates += 1
                metrics = self.metrics
                if metrics is not None and metrics.enabled:
                    metrics.count("detection.pipeline.duplicates")
                return raised
            raise DetectionError(
                f"feed {feed_id} delivered sequence {item.seq} twice "
                f"(next expected {self._next_seq})"
            )
        metrics = self.metrics
        track = metrics is not None and metrics.enabled
        if len(queue.items) >= queue.capacity:
            if self.policy == "drop":
                self.dropped += 1
                self._dropped_ring.append(item.seq)
                self._skipped.add(item.seq)
                if track:
                    metrics.count("detection.pipeline.dropped")
                return raised
            if self.policy == "park":
                self.parked += 1
                queue.parked.append(item)
                self._buffered.add(item.seq)
                depth = len(queue.parked)
                if depth > self.park_high_water:
                    self.park_high_water = depth
                if track:
                    metrics.count("detection.pipeline.parked")
                    metrics.observe("detection.pipeline.park_depth", depth)
                if depth >= self.park_capacity:
                    # The side buffer is full: force a lossless drain
                    # instead of growing without bound.
                    raised.extend(self.pump())
                return raised
            # block: the producer stalls while the pipeline drains.
            self.blocked += 1
            if track:
                metrics.count("detection.pipeline.blocked")
            raised.extend(self.pump())
        queue.items.append(item)
        self._buffered.add(item.seq)
        self._enqueued += 1
        if track:
            metrics.observe("detection.pipeline.queue_depth", len(queue.items))
        if self._enqueued >= self.batch:
            raised.extend(self.pump())
        return raised

    # -- fault tolerance ------------------------------------------------
    def _lose(self, item: SequencedUpdate) -> None:
        """Record one update as permanently lost (graceful: the merge
        skips its sequence number instead of stalling)."""
        if item.seq >= self._next_seq and item.seq not in self._buffered:
            self._skipped.add(item.seq)
        self.lost += 1
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.count("detection.pipeline.lost")

    def _dead_letter(self, item: SequencedUpdate, *, lost: bool) -> None:
        self._dead_letter_ring.append(item)
        self.dead_lettered += 1
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.count("detection.pipeline.dead_lettered")
        if lost:
            self._lose(item)

    def _quarantine(self, state: FeedFaultState) -> None:
        state.quarantined = True
        self.quarantined_feeds.append(state.feed_id)
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.count("detection.pipeline.quarantined")
            metrics.observe(
                "detection.pipeline.coverage_pct", int(self.coverage * 100)
            )
        while state.replay:
            self._lose(state.replay.popleft())

    def _reconnect(self, state: FeedFaultState) -> list[Alarm]:
        """Feed back up: replay the retransmission buffer in order."""
        state.reconnect()
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.count("detection.pipeline.reconnects")
        raised: list[Alarm] = []
        while state.replay:
            raised.extend(self._admit(state.feed_id, state.replay.popleft()))
        return raised

    def _outage_tick(self, state: FeedFaultState, item: SequencedUpdate) -> list[Alarm]:
        state.outage_remaining -= 1
        backoff = state.tick_backoff()
        metrics = self.metrics
        track = metrics is not None and metrics.enabled
        if track:
            metrics.observe("detection.pipeline.backoff", int(backoff))
        if state.outage_recoverable:
            state.replay.append(item)
            depth = len(state.replay)
            if depth > self.replay_high_water:
                self.replay_high_water = depth
            if track:
                metrics.observe("detection.pipeline.replay_depth", depth)
            if self.slos is not None:
                self.slos.record("feed-staleness", depth)
        else:
            self._lose(item)
        if state.outage_remaining == 0:
            return self._reconnect(state)
        return []

    def _offer_tolerant(self, feed_id: int, item: SequencedUpdate) -> list[Alarm]:
        assert self._fault_states is not None
        state = self._fault_states[feed_id]
        try:
            if state.quarantined:
                self._lose(item)
                return []
            if is_malformed(item.message):
                self._dead_letter(item, lost=True)
                return []
            if state.outage_remaining > 0:
                return self._outage_tick(state, item)
            if state.storm_remaining > 0:
                state.storm.append(item)
                state.storm_remaining -= 1
                if state.storm_remaining == 0:
                    raised: list[Alarm] = []
                    for held in reversed(state.storm):
                        raised.extend(self._admit(feed_id, held))
                    state.storm.clear()
                    return raised
                return []
            fault = state.next_fault()
            if fault is None:
                return self._admit(feed_id, item)
            metrics = self.metrics
            track = metrics is not None and metrics.enabled
            if track:
                metrics.count(f"detection.pipeline.faults.{fault.mode}")
            if fault.mode == "outage":
                state.disconnects += 1
                if state.disconnects > self.quarantine_after:
                    self._quarantine(state)
                    self._lose(item)
                    return []
                state.outage_remaining = fault.span
                state.outage_recoverable = fault.recoverable
                return self._outage_tick(state, item)
            if fault.mode == "dup":
                raised = self._admit(feed_id, item)
                for _ in range(fault.burst):
                    raised.extend(self._admit(feed_id, item))
                return raised
            if fault.mode == "corrupt":
                self._dead_letter(corrupt_update(item), lost=not fault.recoverable)
                if fault.recoverable:
                    # The feed retransmits the clean copy immediately.
                    return self._admit(feed_id, item)
                return []
            # gap_storm: withhold a span and release it in reverse.
            if fault.span == 1:
                return self._admit(feed_id, item)
            state.storm.append(item)
            state.storm_remaining = fault.span - 1
            return []
        finally:
            state.offers += 1

    def _drain_fault_buffers(self) -> list[Alarm]:
        """End of stream: whatever the fault layer still withholds
        (outage replay, unfinished gap storms) is delivered now."""
        raised: list[Alarm] = []
        if self._fault_states is None:
            return raised
        for state in self._fault_states:
            if state.storm:
                for held in reversed(state.storm):
                    raised.extend(self._admit(state.feed_id, held))
                state.storm.clear()
                state.storm_remaining = 0
            if state.outage_remaining > 0:
                state.outage_remaining = 0
                if state.replay:
                    raised.extend(self._reconnect(state))
        return raised

    # -- draining -------------------------------------------------------
    def _collect(self) -> None:
        """Move everything queued (parked overflow included) into the
        reorder buffer."""
        pending = self._pending
        for queue in self.queues:
            items = queue.items
            while items:
                update = items.popleft()
                pending[update.seq] = update
            parked = queue.parked
            while parked:
                update = parked.popleft()
                pending[update.seq] = update
        self._enqueued = 0

    def _ready_run(self) -> list[SequencedUpdate]:
        """The maximal run of consecutive sequence numbers available at
        the merge point (known-skipped numbers are passed over)."""
        pending = self._pending
        skipped = self._skipped
        buffered = self._buffered
        run: list[SequencedUpdate] = []
        seq = self._next_seq
        while True:
            if seq in skipped:
                skipped.remove(seq)
                seq += 1
                continue
            update = pending.pop(seq, None)
            if update is None:
                break
            buffered.discard(seq)
            run.append(update)
            seq += 1
        self._next_seq = seq
        return run

    def _process(self, run: Sequence[SequencedUpdate]) -> list[Alarm]:
        raised: list[Alarm] = []
        batch = self.batch
        consume_batch = self.detector.consume_batch
        for start in range(0, len(run), batch):
            chunk = [update.message for update in run[start : start + batch]]
            raised.extend(consume_batch(chunk))
        self.processed += len(run)
        self.alarms.extend(raised)
        return raised

    def pump(self) -> list[Alarm]:
        """Drain the queues through the merge point and the detector."""
        self._collect()
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.observe("detection.pipeline.reorder_depth", len(self._pending))
        return self._process(self._ready_run())

    def flush(self) -> list[Alarm]:
        """End of stream: process everything still buffered, skipping
        sequence gaps (lost updates) in order."""
        raised: list[Alarm] = []
        if self._fault_states is not None:
            raised.extend(self._drain_fault_buffers())
        self._collect()
        raised.extend(self._process(self._ready_run()))
        if self._pending:
            # Whatever remains is stranded behind gaps nobody will fill:
            # process it in sequence order.
            leftovers = [self._pending[seq] for seq in sorted(self._pending)]
            self._buffered.difference_update(self._pending)
            self._pending.clear()
            self._skipped.clear()
            raised.extend(self._process(leftovers))
            self._next_seq = leftovers[-1].seq + 1
        return raised

    # -- convenience driver ---------------------------------------------
    def run(
        self,
        streams: Sequence[Sequence[SequencedUpdate]],
        *,
        rng: random.Random | None = None,
    ) -> list[Alarm]:
        """Feed per-feed streams to completion and flush.

        Interleaving is round-robin by default; passing ``rng`` draws
        the next feed at random (deterministically for a seeded rng) —
        the equivalence suites use this to prove interleaving
        independence.
        """
        if len(streams) != len(self.queues):
            raise DetectionError(
                f"{len(streams)} streams offered to a {len(self.queues)}-feed pipeline"
            )
        raised: list[Alarm] = []
        positions = [0] * len(streams)
        remaining = [i for i, stream in enumerate(streams) if stream]
        while remaining:
            if rng is None:
                feed_id = remaining[0]
            else:
                feed_id = remaining[rng.randrange(len(remaining))]
            stream = streams[feed_id]
            raised.extend(self.offer(feed_id, stream[positions[feed_id]]))
            positions[feed_id] += 1
            if positions[feed_id] >= len(stream):
                remaining.remove(feed_id)
        raised.extend(self.flush())
        return raised


def split_stream(
    messages: Iterable[SequencedUpdate],
    feeds: int,
    *,
    rng: random.Random | None = None,
) -> list[list[SequencedUpdate]]:
    """Partition a sequenced stream across ``feeds`` feeds.

    Each feed receives its slice in sequence order (feeds deliver
    in-order; only the *interleaving across* feeds is arbitrary).
    Assignment is round-robin, or random per message when ``rng`` is
    given.
    """
    if feeds < 1:
        raise DetectionError("split_stream needs at least one feed")
    streams: list[list[SequencedUpdate]] = [[] for _ in range(feeds)]
    for position, update in enumerate(messages):
        feed_id = position % feeds if rng is None else rng.randrange(feeds)
        streams[feed_id].append(update)
    return streams
