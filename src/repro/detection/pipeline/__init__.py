"""High-throughput streaming detection (the ROADMAP's ARTEMIS-shaped
ingestion pipeline).

The single-feed :class:`~repro.detection.streaming.StreamingDetector`
is the semantic oracle: correct, equivalence-tested, and O(monitors)
per update.  This package is the same detector rebuilt for
RouteViews-scale churn:

* :mod:`repro.detection.pipeline.radix` — a pure-Python binary radix
  trie keyed on IPv4 prefixes with longest-match lookup, the index
  structure real hijack detectors (ARTEMIS, PHAS) hang their routing
  state off;
* :mod:`repro.detection.pipeline.table` — the prefix-indexed routing
  table: per-(prefix, monitor) route slots in flat arrays, AS-paths
  interned through :class:`repro.bgp.compiled.InternTable`, and
  :class:`PipelineDetector`, whose per-update hot path does zero dict
  copies (the Figure-4 inspection reads a *live* view) and whose
  padding precheck runs in O(1) amortised on interned path ids;
* :mod:`repro.detection.pipeline.ingest` — batched multi-feed
  ingestion: N monitor feeds drained through bounded queues with
  explicit backpressure (``block`` / ``drop`` / ``park``), merged by
  sequence stamp so any feed interleaving yields the same alarms as
  the serial oracle.
"""

from repro.detection.pipeline.faults import (
    FEED_FAULT_MODES,
    FeedFault,
    FeedFaultPlan,
    corrupt_update,
    is_malformed,
)
from repro.detection.pipeline.ingest import (
    BACKPRESSURE_POLICIES,
    FeedQueue,
    StreamingPipeline,
    split_stream,
)
from repro.detection.pipeline.radix import PrefixTrie, parse_prefix
from repro.detection.pipeline.table import (
    LiveMonitorView,
    PipelineDetector,
    RadixRoutingTable,
)

__all__ = [
    "parse_prefix",
    "PrefixTrie",
    "RadixRoutingTable",
    "LiveMonitorView",
    "PipelineDetector",
    "FeedQueue",
    "StreamingPipeline",
    "BACKPRESSURE_POLICIES",
    "split_stream",
    "FEED_FAULT_MODES",
    "FeedFault",
    "FeedFaultPlan",
    "corrupt_update",
    "is_malformed",
]
