"""Deterministic fault injection for multi-feed ingestion.

The supervised runner learned this lesson in PR 4: recovery code that
only runs when something happens to break is recovery code that never
runs in CI.  This module applies the same discipline to the streaming
pipeline's failure modes — feed outages, duplicate bursts, malformed
updates, and gap storms that overrun the reorder buffer — by making
each one *schedulable*.

A :class:`FeedFaultPlan` maps feed ids to scripted :class:`FeedFault`
events keyed by the feed's **local offer index** (how many updates that
feed has delivered so far).  Because each feed's slice arrives in
stream order no matter how the feeds interleave, the same plan fires
the same faults at the same points of every run — which is what lets
the chaos suite assert that alarms under a *recoverable* plan are
bit-identical to the fault-free run.

Fault modes:

``outage``
    The feed disconnects for ``span`` offers.  Recoverable outages
    buffer the missed updates on the producer side and replay them in
    order once the feed reconnects (bounded exponential backoff ticks
    while it is down); unrecoverable outages lose the updates — their
    sequence numbers are marked skipped so the merge never stalls.

``dup``
    The update at the trigger index is delivered ``burst`` extra
    times.  The tolerant pipeline dedupes redeliveries instead of
    raising, so duplicates are always recoverable.

``corrupt``
    A mangled copy of the update (see :func:`corrupt_update`) arrives
    first and lands in the dead-letter buffer.  Recoverable corruption
    is followed by the clean retransmission; unrecoverable corruption
    never retransmits — the sequence number is skipped.

``gap_storm``
    ``span`` consecutive updates are withheld and then delivered in
    *reverse* order — an in-feed reordering beyond anything the normal
    contract allows.  The sequence merge absorbs it, so gap storms are
    always recoverable.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.bgp.updates import SequencedUpdate, UpdateMessage

__all__ = [
    "FEED_FAULT_MODES",
    "FeedFault",
    "FeedFaultPlan",
    "FeedFaultState",
    "corrupt_update",
    "is_malformed",
]

FEED_FAULT_MODES = ("outage", "dup", "corrupt", "gap_storm")

#: Modes that are recoverable by construction (no update is ever lost),
#: regardless of the ``recoverable`` flag on the spec.
_ALWAYS_RECOVERABLE = frozenset({"dup", "gap_storm"})


def is_malformed(message: UpdateMessage) -> bool:
    """Cheap structural validation for one update.

    A well-formed update names a CIDR prefix and carries only positive
    AS numbers.  The check is deliberately O(path) with C-speed
    primitives — it sits on the ingestion hot path when fault tolerance
    is enabled.
    """
    if "/" not in message.prefix:
        return True
    path = message.path
    return bool(path) and min(path) <= 0


def corrupt_update(item: SequencedUpdate) -> SequencedUpdate:
    """A deterministically mangled copy of ``item``.

    The corruption trips both :func:`is_malformed` checks (prefix loses
    its mask separator, the first path hop goes negative) so validation
    cannot miss it whichever field a consumer inspects first.
    """
    message = item.message
    path = message.path
    bad_path = (-path[0],) + path[1:] if path else path
    return SequencedUpdate(
        seq=item.seq,
        message=UpdateMessage(
            monitor=message.monitor,
            prefix=message.prefix.replace("/", "|"),
            path=bad_path,
            withdrawn=message.withdrawn,
        ),
    )


@dataclass(frozen=True)
class FeedFault:
    """One scripted feed fault, anchored at a feed-local offer index."""

    mode: str
    #: feed-local offer index (0-based) at which the fault triggers
    at: int
    #: outage length / gap-storm width, in offers
    span: int = 4
    #: extra deliveries for ``dup`` faults
    burst: int = 2
    #: recoverable faults never lose an update; unrecoverable ones do
    #: (and the pipeline must degrade gracefully instead of raising)
    recoverable: bool = True

    def __post_init__(self) -> None:
        if self.mode not in FEED_FAULT_MODES:
            raise ValueError(
                f"unknown feed fault mode {self.mode!r}; "
                f"expected one of {FEED_FAULT_MODES}"
            )
        if self.at < 0:
            raise ValueError("fault index must be >= 0")
        if self.span < 1:
            raise ValueError("fault span must be >= 1")
        if self.burst < 1:
            raise ValueError("dup burst must be >= 1")
        if self.mode in _ALWAYS_RECOVERABLE and not self.recoverable:
            object.__setattr__(self, "recoverable", True)


@dataclass(frozen=True)
class FeedFaultPlan:
    """An immutable schedule of feed faults, keyed by feed id."""

    rules: Mapping[int, tuple[FeedFault, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned: dict[int, tuple[FeedFault, ...]] = {}
        for feed_id, faults in dict(self.rules).items():
            ordered = tuple(sorted(faults, key=lambda fault: fault.at))
            for first, second in zip(ordered, ordered[1:]):
                if second.at <= first.at:
                    raise ValueError(
                        f"feed {feed_id} schedules two faults at index {first.at}"
                    )
            if ordered:
                cleaned[int(feed_id)] = ordered
        object.__setattr__(self, "rules", cleaned)

    def __len__(self) -> int:
        return sum(len(faults) for faults in self.rules.values())

    def __bool__(self) -> bool:
        return bool(self.rules)

    def faults_for(self, feed_id: int) -> tuple[FeedFault, ...]:
        return self.rules.get(feed_id, ())

    def is_recoverable(self) -> bool:
        """True when no scheduled fault can lose an update."""
        return all(
            fault.recoverable
            for faults in self.rules.values()
            for fault in faults
        )

    @classmethod
    def seeded(
        cls,
        feeds: int,
        *,
        seed: int,
        rate: float = 0.5,
        modes: Sequence[str] = FEED_FAULT_MODES,
        horizon: int = 256,
        max_faults_per_feed: int = 2,
        max_span: int = 6,
        max_burst: int = 3,
        recoverable: bool = True,
    ) -> "FeedFaultPlan":
        """Draw a reproducible plan over ``feeds`` feed ids.

        Each feed independently faults with probability ``rate``; a
        faulty feed gets 1..``max_faults_per_feed`` faults at distinct
        offer indices inside ``[0, horizon)``, spaced so their spans
        never overlap.  The draw depends only on the arguments, never
        on scheduling.  With ``recoverable=False`` the outage/corrupt
        faults become lossy — use that to exercise graceful
        degradation, not bit-identity.
        """
        for mode in modes:
            if mode not in FEED_FAULT_MODES:
                raise ValueError(f"unknown feed fault mode {mode!r}")
        if feeds < 1:
            raise ValueError("a fault plan needs at least one feed")
        rng = random.Random(seed)
        rules: dict[int, tuple[FeedFault, ...]] = {}
        for feed_id in range(feeds):
            if rng.random() >= rate:
                continue
            count = rng.randint(1, max(1, max_faults_per_feed))
            faults: list[FeedFault] = []
            cursor = rng.randrange(max(1, horizon // 4))
            for _ in range(count):
                if cursor >= horizon:
                    break
                mode = modes[rng.randrange(len(modes))]
                span = rng.randint(1, max(1, max_span))
                faults.append(
                    FeedFault(
                        mode=mode,
                        at=cursor,
                        span=span,
                        burst=rng.randint(1, max(1, max_burst)),
                        recoverable=recoverable,
                    )
                )
                cursor += span + 1 + rng.randrange(max(1, horizon // 4))
            if faults:
                rules[feed_id] = tuple(faults)
        return cls(rules)


class FeedFaultState:
    """Mutable per-feed runtime bookkeeping for one pipeline run.

    The state machine a fault-tolerant pipeline keeps per feed: the
    script cursor, the producer-side replay buffer of a recoverable
    outage, the gap-storm withholding buffer, and the reconnection /
    quarantine counters.  Backoff is *virtual time*: each offer that
    arrives while the feed is down counts as one failed reconnection
    attempt, doubling the backoff up to ``backoff_cap`` — deterministic,
    wall-clock-free, and observable through the backoff histogram.
    """

    __slots__ = (
        "feed_id",
        "faults",
        "fault_index",
        "offers",
        "outage_remaining",
        "outage_recoverable",
        "replay",
        "storm",
        "storm_remaining",
        "backoff",
        "backoff_attempts",
        "backoff_cap",
        "disconnects",
        "reconnects",
        "quarantined",
    )

    def __init__(
        self,
        feed_id: int,
        faults: Iterable[FeedFault],
        *,
        backoff_cap: float = 64.0,
    ) -> None:
        self.feed_id = feed_id
        self.faults = tuple(faults)
        self.fault_index = 0
        self.offers = 0
        self.outage_remaining = 0
        self.outage_recoverable = True
        self.replay: deque[SequencedUpdate] = deque()
        self.storm: list[SequencedUpdate] = []
        self.storm_remaining = 0
        self.backoff = 1.0
        self.backoff_attempts = 0
        self.backoff_cap = backoff_cap
        self.disconnects = 0
        self.reconnects = 0
        self.quarantined = False

    def next_fault(self) -> FeedFault | None:
        """The fault due at the current offer index, if any.

        Catch-up semantics: a fault whose index fell inside a previous
        fault's outage or storm window fires at the first opportunity
        after it, so a manual plan with overlapping windows still
        consumes every scripted fault.
        """
        if self.fault_index >= len(self.faults):
            return None
        fault = self.faults[self.fault_index]
        if fault.at > self.offers:
            return None
        self.fault_index += 1
        return fault

    def tick_backoff(self) -> float:
        """One failed reconnection attempt; returns the new backoff."""
        self.backoff_attempts += 1
        self.backoff = min(self.backoff * 2.0, self.backoff_cap)
        return self.backoff

    def reconnect(self) -> None:
        self.reconnects += 1
        self.backoff = 1.0
