"""Prefix-owner self-check: detection with knowledge of one's own policy.

The paper's public-data detector cannot resolve one corner case: when
the attacker is a *direct neighbour* of the victim, the short and long
routes share no path segment, and differing paddings across different
victim neighbours are indistinguishable from the victim's own
per-neighbour traffic engineering (exactly the ambiguity of the
Facebook incident, §III).

The prefix owner, however, knows its own prepending policy.  For any
observed route ``[... AS_1 V^λ_seen]``, the owner knows the padding
``λ_sent`` it configured towards its neighbour ``AS_1``; seeing
``λ_seen < λ_sent`` proves someone on the path stripped padding — no
matter where the monitors sit relative to the attacker.  (``λ_seen``
*greater* than configured is not an interception symptom: anyone may
legitimately prepend additional copies of the owner's... no — only the
owner may prepend its own ASN, so a larger padding is flagged too, as
a spoofed-prepend anomaly.)

This is our extension beyond the paper (flagged as such in DESIGN.md);
it operationalises the paper's remark that the victim "can select a
set of important ASes as their monitors to prevent being hijacked".
"""

from __future__ import annotations

from repro.bgp.aspath import split_origin_padding
from repro.bgp.collectors import MonitorView
from repro.bgp.prepending import PrependingPolicy
from repro.detection.alarms import Alarm, Confidence

__all__ = ["PrefixOwnerSelfCheck"]


class PrefixOwnerSelfCheck:
    """Detector run by the prefix owner itself.

    ``owner`` is the origin AS; ``prepending`` the owner's own
    configured policy (the ground truth the public detector lacks).
    """

    def __init__(self, owner: int, prepending: PrependingPolicy) -> None:
        self._owner = owner
        self._prepending = prepending

    @property
    def owner(self) -> int:
        return self._owner

    def check_view(self, view: MonitorView) -> list[Alarm]:
        """Compare every monitor's route against the configured padding."""
        alarms: list[Alarm] = []
        for monitor, route in sorted(view.routes.items()):
            if route is None or not route.path:
                continue
            if route.path[-1] != self._owner:
                continue
            head, _, padding_seen = split_origin_padding(route.path)
            # AS_1: the owner's neighbour this route entered through.
            first_hop = head[-1] if head else monitor
            padding_sent = self._prepending.padding(self._owner, first_hop)
            if padding_seen < padding_sent:
                alarms.append(
                    Alarm(
                        prefix=view.prefix,
                        monitor=monitor,
                        confidence=Confidence.HIGH,
                        suspect=None,  # somewhere on `head`, not localised
                        removed_pads=padding_sent - padding_seen,
                        evidence=(
                            f"owner AS{self._owner} sent padding {padding_sent} "
                            f"to AS{first_hop} but monitor AS{monitor} observes "
                            f"{padding_seen}"
                        ),
                    )
                )
            elif padding_seen > padding_sent:
                alarms.append(
                    Alarm(
                        prefix=view.prefix,
                        monitor=monitor,
                        confidence=Confidence.HIGH,
                        suspect=None,
                        removed_pads=None,
                        evidence=(
                            f"spoofed prepending: owner AS{self._owner} sent "
                            f"padding {padding_sent} to AS{first_hop} but "
                            f"monitor AS{monitor} observes {padding_seen} "
                            f"copies of the owner's ASN"
                        ),
                    )
                )
        return alarms
