"""Baseline routing-anomaly detectors.

The paper motivates the ASPP attack by showing the established
detectors are blind to it:

* **MOAS / PHAS-style** control-plane detection catches origin-AS
  hijacks because the prefix suddenly has multiple origins — but the
  ASPP attacker keeps the true origin;
* **new-link** detection (e.g. "A firewall for routers") catches
  Ballani-style path shortening because the announcement fabricates an
  AS edge — but the ASPP attacker only removes duplicated ASNs and
  every adjacency on its route is real.

Both are implemented here and the test suite asserts exactly that
blindness for the ASPP attack (and sensitivity for the baselines).
"""

from __future__ import annotations

from repro.bgp.aspath import collapse_prepending
from repro.bgp.collectors import MonitorView
from repro.detection.alarms import Alarm, Confidence
from repro.topology.asgraph import ASGraph

__all__ = ["detect_moas", "detect_new_links"]


def detect_moas(view: MonitorView) -> list[Alarm]:
    """Flag the prefix when monitors disagree about its origin AS."""
    origins: dict[int, list[int]] = {}
    for monitor, route in sorted(view.routes.items()):
        if route is None or not route.path:
            continue
        origins.setdefault(route.path[-1], []).append(monitor)
    if len(origins) <= 1:
        return []
    ranked = sorted(origins.items(), key=lambda item: (-len(item[1]), item[0]))
    majority_origin = ranked[0][0]
    alarms = []
    for origin, monitors in ranked[1:]:
        alarms.append(
            Alarm(
                prefix=view.prefix,
                monitor=monitors[0],
                confidence=Confidence.HIGH,
                suspect=origin,
                removed_pads=None,
                evidence=(
                    f"MOAS conflict: origin AS{origin} seen at "
                    f"{len(monitors)} monitor(s) while majority sees "
                    f"AS{majority_origin}"
                ),
            )
        )
    return alarms


def detect_new_links(view: MonitorView, known_topology: ASGraph) -> list[Alarm]:
    """Flag routes that traverse an AS-level edge absent from the topology.

    ``known_topology`` plays the role of the long-term link database a
    topology-anomaly monitor accumulates.  Prepending runs are collapsed
    first, so ASPP (legitimate or stripped) never creates a "new" link.
    """
    alarms: list[Alarm] = []
    seen_pairs: set[tuple[int, int]] = set()
    for monitor, route in sorted(view.routes.items()):
        if route is None or not route.path:
            continue
        core = collapse_prepending(route.path)
        for a, b in zip(core, core[1:]):
            pair = (min(a, b), max(a, b))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            if a in known_topology and b in known_topology and known_topology.has_edge(a, b):
                continue
            alarms.append(
                Alarm(
                    prefix=view.prefix,
                    monitor=monitor,
                    confidence=Confidence.HIGH,
                    suspect=a,
                    removed_pads=None,
                    evidence=f"AS-level link AS{a}-AS{b} never seen in topology",
                )
            )
    return alarms
