"""Alarm records produced by the detectors.

The paper's algorithm raises alarms at two confidence levels: a direct
padding inconsistency on a shared path segment is reported with high
confidence ("Raise Alarm: detect attack!"), while relationship-based
hints — a neighbour that should have received and preferred the shorter
route but didn't — are reported with low confidence ("Raise Alarm:
possible attack!"), since inferred AS relationships may be inaccurate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Confidence", "Alarm"]


class Confidence(enum.Enum):
    """How certain the detector is about the alarm."""

    HIGH = "high"
    LOW = "low"

    def __lt__(self, other: "Confidence") -> bool:
        order = {Confidence.LOW: 0, Confidence.HIGH: 1}
        if not isinstance(other, Confidence):
            return NotImplemented
        return order[self] < order[other]


@dataclass(frozen=True)
class Alarm:
    """One detection alarm for ``prefix``.

    ``suspect`` is the AS the detector believes modified the route
    (``None`` when the evidence does not localise the modifier), and
    ``removed_pads`` the number of padded ASNs it removed (when known).
    """

    prefix: str
    monitor: int
    confidence: Confidence
    suspect: int | None
    removed_pads: int | None
    evidence: str

    def __str__(self) -> str:
        who = f"AS{self.suspect}" if self.suspect is not None else "unknown AS"
        pads = (
            f" removed {self.removed_pads} padded ASN(s)"
            if self.removed_pads is not None
            else ""
        )
        return (
            f"[{self.confidence.value.upper()}] {self.prefix}: {who}{pads} "
            f"(seen at monitor AS{self.monitor}; {self.evidence})"
        )
