"""The ASPP-interception detection algorithm (the paper's Figure 4).

Key observation (§V-A): *following the same AS path, at any given time,
an AS cannot receive two routes with two different padded ASN counts* —
an origin applies one consistent prepending policy per neighbour, so
two monitors observing the same path segment ``[AS_{I-1} ... AS_1]``
towards the origin must see the same padding ``λ``.

The detector therefore watches each monitor for a route change that
*decreases* the padding, and then:

1. **Direct symptom (high confidence)** — searches the current routes
   of *all ASes visible to the monitoring system* for one sharing a
   path segment with the changed route but carrying *more* padding.
   Destination-based routing means each observed path reveals the
   route of every AS along it ("the total ASes n are larger than the
   number of monitors"), so the search space is the set of all
   suffixes of all monitor paths.  When segment ``[AS_{I-1} ... AS_1]``
   is observed once with padding ``λ_l`` and once with ``λ_t < λ_l``,
   the AS announcing the shorter variant (``AS_I``) must have removed
   ``λ_l − λ_t`` padded ASNs.
2. **Hints (low confidence)** — if no shared segment exists, looks for
   a neighbour ``AS'_L`` of ``AS_{I-1}`` that selected a *longer*
   padded route even though, given the inferred business
   relationships, it should have received and preferred the shorter
   one.  Because relationship inference is imperfect these alarms are
   flagged low-confidence.
"""

from __future__ import annotations

from repro.bgp.aspath import collapse_prepending, split_origin_padding
from repro.bgp.collectors import CollectorFeed, MonitorView
from repro.bgp.route import Route
from repro.detection.alarms import Alarm, Confidence
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

__all__ = ["ASPPInterceptionDetector"]


class ASPPInterceptionDetector:
    """Passive detector over collector feeds.

    ``graph`` supplies the (possibly inferred) AS relationships used by
    the low-confidence hint stage; pass the inference output in a real
    deployment, or the ground-truth graph in simulation.
    """

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------
    def scan_feed(self, feed: CollectorFeed) -> list[Alarm]:
        """Inspect every route change in ``feed`` and collect alarms."""
        alarms: list[Alarm] = []
        for monitor, previous, current, view in feed.changes():
            alarms.extend(self.inspect_change(monitor, previous, current, view))
        return alarms

    def inspect_change(
        self,
        monitor: int,
        previous: Route | None,
        current: Route | None,
        view: MonitorView,
    ) -> list[Alarm]:
        """Apply the Figure-4 algorithm to one observed route change."""
        if previous is None or current is None:
            return []  # fresh announcement or withdrawal: not an ASPP symptom
        if not previous.path or not current.path:
            return []
        if previous.path[-1] != current.path[-1]:
            return []  # origin changed: that is a MOAS event, not ASPP

        _, origin, padding_before = split_origin_padding(previous.path)
        head_now, _, padding_now = split_origin_padding(current.path)
        if padding_now >= padding_before:
            return []  # padding did not decrease: nothing to check

        core_now = collapse_prepending(head_now)
        if not core_now:
            # The monitor is the victim's direct neighbour; there is no
            # intermediate AS that could have modified the route.
            return []
        suspect = core_now[0]  # AS_I: first AS on the shorter route
        segment_now = core_now[1:]  # [AS_{I-1} ... AS_1]

        alarms = self._direct_symptom(
            monitor, view, origin, core_now, padding_now
        )
        if alarms:
            return alarms
        return self._policy_hints(
            monitor, view, origin, suspect, segment_now, core_now, padding_now
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _segment_paddings(
        view: MonitorView, origin: int, exclude_monitor: int
    ) -> dict[tuple[int, ...], list[tuple[int, int]]]:
        """Index every path segment visible to the monitoring system.

        For each monitor path ``[a_0 ... a_k V^λ]`` (collapsed), every
        suffix ``[a_i ... a_k]`` is the route of AS ``a_{i-1}``'s
        next hop — destination-based routing makes the observation
        valid for all of them.  The index maps each segment
        ``[a_{i+1} ... a_k]`` (the part below the announcing AS
        ``a_i``) to the ``(padding, announcing AS)`` pairs observed.
        """
        index: dict[tuple[int, ...], list[tuple[int, int]]] = {}
        for other_monitor, route in sorted(view.routes.items()):
            if other_monitor == exclude_monitor or route is None or not route.path:
                continue
            if route.path[-1] != origin:
                continue
            head, _, padding = split_origin_padding(route.path)
            # The monitor itself is the outermost AS announcing this
            # route (the paper's example compares [E A V V V] against
            # [M A V] — the monitor E included).
            core = (other_monitor,) + collapse_prepending(head)
            for i in range(len(core)):
                index.setdefault(core[i + 1 :], []).append((padding, core[i]))
        return index

    def _direct_symptom(
        self,
        monitor: int,
        view: MonitorView,
        origin: int,
        core_now: tuple[int, ...],
        padding_now: int,
    ) -> list[Alarm]:
        """Stage 1: same segment observed elsewhere with more padding.

        Both the changed route and the other monitors' routes are
        expanded into all their suffixes (see :meth:`_segment_paddings`),
        so an inconsistency is caught even when the monitors are many
        hops above the modification point.
        """
        index = self._segment_paddings(view, origin, monitor)
        alarms: list[Alarm] = []
        extended_now = (monitor,) + core_now
        for i in range(len(extended_now)):
            segment = extended_now[i + 1 :]
            observations = index.get(segment)
            if not observations:
                continue
            via = extended_now[i]  # the AS announcing the short variant
            for padding_other, other_via in observations:
                if not segment and other_via != via:
                    # An empty segment means both routes sit directly on
                    # the victim's edge: different first-hop neighbours
                    # may legitimately receive different padding (per-
                    # neighbour traffic engineering, Figure 3), so only
                    # the *same* neighbour showing two paddings is
                    # inconsistent.
                    continue
                if padding_other > padding_now:
                    alarms.append(
                        Alarm(
                            prefix=view.prefix,
                            monitor=monitor,
                            confidence=Confidence.HIGH,
                            suspect=via,
                            removed_pads=padding_other - padding_now,
                            evidence=(
                                f"segment {segment} carries padding "
                                f"{padding_other} via AS{other_via} elsewhere "
                                f"but {padding_now} via AS{via} at monitor "
                                f"AS{monitor}"
                            ),
                        )
                    )
            if alarms:
                # The longest shared segment localises the modifier: the
                # AS immediately above it is the first point where the
                # short and long observations diverge.
                break
        return alarms

    # ------------------------------------------------------------------
    def _policy_hints(
        self,
        monitor: int,
        view: MonitorView,
        origin: int,
        suspect: int,
        segment_now: tuple[int, ...],
        core_now: tuple[int, ...],
        padding_now: int,
    ) -> list[Alarm]:
        """Stage 2: relationship-based hints (lower confidence).

        ``AS_{I-1}`` is the AS just below the suspect on the shorter
        route.  If another monitor's first-hop AS ``AS'_L`` is a
        neighbour of ``AS_{I-1}`` that holds a *longer* overall route,
        the shorter route must not have been propagated to it; if the
        relationships say it *should* have been, something upstream
        modified the route.

        When the suspect neighbours the victim directly there is no
        ``AS_{I-1}``: the victim applies per-neighbour padding at will,
        so no policy conclusion can be drawn (the paper's "direct
        neighbour of the victim" corner case) and no hint is raised.
        """
        if not segment_now:
            return []
        as_i_minus_1 = segment_now[0]
        length_now = len(core_now) + padding_now
        alarms: list[Alarm] = []
        for other_monitor, route in sorted(view.routes.items()):
            if other_monitor == monitor or route is None or not route.path:
                continue
            if route.path[-1] != origin:
                continue
            head_other, _, padding_other = split_origin_padding(route.path)
            core_other = collapse_prepending(head_other)
            if padding_now >= padding_other:
                continue
            if not core_other:
                continue
            as_l = core_other[0]
            length_other = len(core_other) + padding_other
            if length_other <= length_now:
                continue
            relationship = self._graph.relationship(as_l, as_i_minus_1)
            hint: str | None = None
            if relationship is Relationship.CUSTOMER:
                # AS_{I-1} is AS'_L's customer: a customer route to the
                # prefix existed and would have been preferred.
                hint = (
                    f"AS{as_l} uses a longer route although its customer "
                    f"AS{as_i_minus_1} held the shorter one"
                )
            elif relationship is Relationship.PEER and not self._has_peer_link(core_now + (origin,)):
                # AS_{I-1} held an all-customer (uphill) route, which it
                # must export to its peers.
                hint = (
                    f"AS{as_l} peers with AS{as_i_minus_1}, whose shorter "
                    f"route is customer-learned and thus exportable to peers"
                )
            elif relationship is Relationship.PROVIDER and self._first_hop_is_provider(
                core_other
            ):
                # AS'_L already uses a provider route; its provider
                # AS_{I-1} exports everything to customers, so the
                # shorter route should have reached it.
                hint = (
                    f"AS{as_l} uses a provider route although its provider "
                    f"AS{as_i_minus_1} held a shorter one"
                )
            if hint is not None:
                alarms.append(
                    Alarm(
                        prefix=view.prefix,
                        monitor=monitor,
                        confidence=Confidence.LOW,
                        suspect=suspect,
                        removed_pads=padding_other - padding_now,
                        evidence=hint,
                    )
                )
        return alarms

    def _has_peer_link(self, core_path: tuple[int, ...]) -> bool:
        """True when any adjacent pair on ``core_path`` is a peering edge."""
        for a, b in zip(core_path, core_path[1:]):
            if self._graph.relationship(a, b) is Relationship.PEER:
                return True
        return False

    def _first_hop_is_provider(self, core_other: tuple[int, ...]) -> bool:
        """True when ``AS'_L`` learned its current route from a provider."""
        if len(core_other) < 2:
            return False
        as_l, as_l_minus_1 = core_other[0], core_other[1]
        return self._graph.relationship(as_l, as_l_minus_1) is Relationship.PROVIDER
