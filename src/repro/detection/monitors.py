"""Vantage-point (monitor) selection strategies.

The paper evaluates detection accuracy against the number of monitors,
ranking "all ASes based on their degrees and select[ing] the top d
monitors" (Figure 13), and names smarter monitor selection as future
work.  We implement the paper's strategy plus two alternatives used by
the monitor-placement ablation: uniform random selection and
victim-adjacent placement (monitors close to a protected prefix owner).
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable

from repro.exceptions import DetectionError, UnknownASError
from repro.topology.asgraph import ASGraph

__all__ = ["top_degree_monitors", "random_monitors", "victim_adjacent_monitors"]


def _check_count(graph: ASGraph, count: int) -> None:
    if count < 1:
        raise DetectionError("monitor count must be positive")
    if count > len(graph):
        raise DetectionError(
            f"requested {count} monitors but the topology has {len(graph)} ASes"
        )


def top_degree_monitors(graph: ASGraph, count: int) -> list[int]:
    """The paper's strategy: the ``count`` highest-degree ASes.

    Ties break on the lower ASN so the selection is deterministic.
    """
    _check_count(graph, count)
    ranked = sorted(graph.ases, key=lambda asn: (-graph.degree(asn), asn))
    return ranked[:count]


def random_monitors(
    graph: ASGraph, count: int, rng: random.Random, *, exclude: Iterable[int] = ()
) -> list[int]:
    """``count`` monitors sampled uniformly (excluding ``exclude``)."""
    _check_count(graph, count)
    excluded = set(exclude)
    pool = [asn for asn in graph.ases if asn not in excluded]
    if count > len(pool):
        raise DetectionError("not enough ASes left after exclusions")
    return sorted(rng.sample(pool, count))


def victim_adjacent_monitors(graph: ASGraph, victim: int, count: int) -> list[int]:
    """``count`` monitors nearest the victim (BFS by hop distance).

    The paper's corner-case analysis notes that a victim can only catch
    an adjacent attacker if it has a vantage point on the attacker or
    one of the attacker's neighbours — placing monitors around the
    victim approximates that self-defence deployment.  Within each BFS
    ring, higher-degree ASes are preferred.
    """
    if victim not in graph:
        raise UnknownASError(victim)
    _check_count(graph, count)
    distance: dict[int, int] = {victim: 0}
    queue: deque[int] = deque([victim])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors_of(current):
            if neighbor not in distance:
                distance[neighbor] = distance[current] + 1
                queue.append(neighbor)
    candidates = [asn for asn in distance if asn != victim]
    candidates.sort(key=lambda asn: (distance[asn], -graph.degree(asn), asn))
    if len(candidates) < count:
        raise DetectionError(
            f"only {len(candidates)} ASes reachable from the victim; "
            f"cannot place {count} monitors"
        )
    return sorted(candidates[:count])
