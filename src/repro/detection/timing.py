"""Detection-timing analysis: pollution before the first alarm (Figure 14).

The engine's synchronous rounds give a logical clock for attack
propagation: every AS (monitors included) adopts the malicious route at
some round.  A monitor can raise the alarm no earlier than the round
its own view first shows the inconsistent route; the attack's
*detection round* is the earliest such round over all monitors whose
change actually triggers an alarm.  The damage already done by then is
the fraction of ASes that adopted the malicious route at an earlier or
equal round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.interception import InterceptionResult
from repro.bgp.collectors import RouteCollector
from repro.detection.alarms import Alarm, Confidence
from repro.detection.detector import ASPPInterceptionDetector
from repro.telemetry.metrics import RunMetrics

__all__ = ["DetectionTiming", "detection_timing"]


@dataclass(frozen=True)
class DetectionTiming:
    """Outcome of the timing analysis for one attack instance."""

    detected: bool
    #: logical round at which the first alarming monitor saw the attack
    detection_round: int | None
    #: ASes polluted no later than the detection round
    polluted_before_detection: frozenset[int]
    #: all ASes polluted once the attack fully converged
    polluted_total: frozenset[int]
    #: population size the fractions are computed over
    num_ases: int
    alarms: tuple[Alarm, ...]

    @property
    def fraction_polluted_before_detection(self) -> float:
        """Figure 14's x-axis statistic (1.0 when the attack went undetected)."""
        if not self.detected:
            return 1.0
        return (
            len(self.polluted_before_detection) / self.num_ases
            if self.num_ases
            else 0.0
        )


def detection_timing(
    result: InterceptionResult,
    collector: RouteCollector,
    detector: ASPPInterceptionDetector,
    *,
    min_confidence: Confidence = Confidence.LOW,
    attacker_feeds_collector: bool = True,
    metrics: RunMetrics | None = None,
) -> DetectionTiming:
    """Run the detector against an attack instance and time the detection.

    ``result`` must come from :func:`repro.attack.simulate_interception`
    (its attacked outcome carries post-attack adoption rounds).
    ``min_confidence`` controls whether low-confidence hint alarms count
    as detections.

    ``attacker_feeds_collector`` models whether an attacker that peers
    with the collector announces its (modified) route there like to any
    other neighbour — immediate, round-0 detection — or stays stealthy
    and suppresses its collector session (its feed then shows the
    unchanged legitimate route, and detection must wait for pollution
    to reach an honest monitor).

    ``metrics`` optionally records the analysis into a telemetry
    registry (``detection.*`` namespace): timings run, attacks
    detected, alarms raised, detection rounds and the
    polluted-before-detection fraction.
    """
    before_view = collector.snapshot(result.baseline)
    modifiers = (
        {result.attack.attacker: result.attack.modifier()}
        if attacker_feeds_collector
        else None
    )
    after_view = collector.snapshot(result.attacked, modifiers=modifiers)

    detection_round: int | None = None
    alarms: list[Alarm] = []
    for monitor in collector.monitors:
        previous = before_view.routes.get(monitor)
        current = after_view.routes.get(monitor)
        if previous == current:
            continue
        monitor_alarms = [
            alarm
            for alarm in detector.inspect_change(monitor, previous, current, after_view)
            if not (alarm.confidence is Confidence.LOW and min_confidence is Confidence.HIGH)
        ]
        if not monitor_alarms:
            continue
        alarms.extend(monitor_alarms)
        monitor_round = result.attacked.adoption_round.get(monitor, 0)
        if detection_round is None or monitor_round < detection_round:
            detection_round = monitor_round

    attacker = result.attack.attacker
    victim = result.attack.victim
    polluted_total = result.report.after
    if detection_round is None:
        polluted_before = polluted_total
    else:
        polluted_before = frozenset(
            asn
            for asn in polluted_total
            if result.attacked.adoption_round.get(asn, 0) <= detection_round
        )
    population = [
        asn for asn in result.attacked.best if asn not in (attacker, victim)
    ]
    timing = DetectionTiming(
        detected=detection_round is not None,
        detection_round=detection_round,
        polluted_before_detection=polluted_before,
        polluted_total=polluted_total,
        num_ases=len(population),
        alarms=tuple(alarms),
    )
    if metrics is not None and metrics.enabled:
        metrics.count("detection.timings")
        metrics.count("detection.alarms", len(alarms))
        if timing.detected:
            metrics.count("detection.detected")
            metrics.observe("detection.detection_round", detection_round)
        metrics.observe(
            "detection.polluted_before_fraction",
            timing.fraction_polluted_before_detection,
        )
    return timing
