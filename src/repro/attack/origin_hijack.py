"""Baseline attack: origin-AS (MOAS) prefix hijacking.

The attacker announces the victim's prefix as if it originated it,
replacing the whole AS path with ``[M]``.  Polluted ASes blackhole
their traffic to the victim.  This is the classic hijack the paper
contrasts with: it is effective but trivially detectable because the
prefix suddenly has **multiple origin ASes** (MOAS) — see
:func:`repro.detection.baselines.detect_moas`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.engine import PathModifier
from repro.exceptions import SimulationError

__all__ = ["OriginHijackAttack"]


@dataclass(frozen=True)
class OriginHijackAttack:
    """Configuration of an origin-AS hijack by ``attacker``."""

    attacker: int
    victim: int

    def __post_init__(self) -> None:
        if self.attacker == self.victim:
            raise SimulationError("attacker and victim must be distinct ASes")

    def modifier(self) -> PathModifier:
        """Replace the used path entirely: the attacker claims origination.

        Returning an empty base path makes the engine emit ``[M]`` —
        exactly the bogus origination.  The modification applies no
        matter what route the attacker actually holds.
        """
        return lambda path: ()
