"""Pollution metrics: how much of the Internet the attacker captured.

The paper quantifies attack impact as "the fraction of ASes adopting
the malicious route, meaning that their traffic to victim V will
traverse attacker M", and plots it against the no-attack baseline
("Before hijack") in Figures 7-12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.delta import DeltaState, DerivedUniformState
from repro.bgp.engine import PropagationOutcome

__all__ = ["PollutionReport", "fraction_traversing", "pollution_report"]


def _eligible_ases(outcome: PropagationOutcome, attacker: int, victim: int) -> list[int]:
    """The population over which pollution is measured.

    The attacker and the victim themselves are excluded: the victim
    always reaches itself, and the attacker trivially traverses itself.
    """
    return [asn for asn in outcome.best if asn not in (attacker, victim)]


def fraction_traversing(
    outcome: PropagationOutcome, transit: int, *, victim: int
) -> float:
    """Fraction of (other) ASes whose selected path traverses ``transit``."""
    population = _eligible_ases(outcome, transit, victim)
    if not population:
        return 0.0
    hits = 0
    for asn in population:
        route = outcome.best.get(asn)
        if route is not None and transit in route.path:
            hits += 1
    return hits / len(population)


@dataclass(frozen=True)
class PollutionReport:
    """Before/after impact of one attack instance."""

    attacker: int
    victim: int
    num_ases: int
    #: ASes whose path traversed the attacker before the attack
    before: frozenset[int]
    #: ASes whose path traverses the attacker under the attack
    after: frozenset[int]
    #: ASes newly captured by the attack (after - before)
    newly_polluted: frozenset[int]

    @property
    def before_fraction(self) -> float:
        """Paper's "Before hijack" series."""
        return len(self.before) / self.num_ases if self.num_ases else 0.0

    @property
    def after_fraction(self) -> float:
        """Paper's "After hijack" series (% of paths traversing attacker)."""
        return len(self.after) / self.num_ases if self.num_ases else 0.0

    @property
    def gain(self) -> float:
        """Increase in traversal fraction caused by the attack."""
        return self.after_fraction - self.before_fraction


def _member_indices(state, attacker_idx: int, bit: int) -> frozenset[int]:
    """Indices whose selected path traverses the attacker, memoised on
    the (immutable, converged) compiled state per attacker.

    A λ-sweep reports against the same canonical state eight times and
    a pair grid revisits each victim's baseline once per attacker, so
    the memo turns the report's baseline half into a dict hit.
    """
    cache = state._trav
    if cache is None:
        cache = state._trav = {}
    members = cache.get(attacker_idx)
    if members is None:
        mask = state.table.mask
        best_pref = state.best_pref
        best_pid = state.best_pid
        members = frozenset(
            i
            for i in range(state.table.topo.n)
            if best_pref[i] >= 0 and mask[best_pid[i]] & bit
        )
        cache[attacker_idx] = members
    return members


def _compiled_traversal_sets(
    baseline: PropagationOutcome,
    attacked: PropagationOutcome,
    attacker: int,
    victim: int,
) -> tuple[int, set[int], set[int]] | None:
    """``(population size, before, after)`` computed on the outcomes'
    attached compiled states, or ``None`` when they are unavailable.

    When both outcomes carry :class:`~repro.bgp.compiled.CompiledState`
    over the same intern table — the invariable case for runner tasks,
    where the attack warm-starts from the cache's derived baseline —
    "does this AS's path traverse the attacker?" is one mask AND per AS
    instead of a tuple scan, and the result is exactly the membership
    test on the reified path.

    Delta-propagated outcomes get a further cut: attacker membership is
    λ-invariant (a uniform-λ rewrite only pads the victim's trailing
    run), so a :class:`~repro.bgp.delta.DerivedUniformState` baseline is
    measured on its canonical arrays without ever materialising the
    derivation, and a :class:`~repro.bgp.delta.DeltaState` attack's
    after-set is the baseline membership patched over the overlay's
    touched rows — O(affected cone) instead of O(topology).
    """
    base_state = baseline.compiled_state
    attack_state = attacked.compiled_state
    if (
        base_state is None
        or attack_state is None
        or base_state.table is not attack_state.table
    ):
        return None
    topo = base_state.table.topo
    attacker_idx = topo.index.get(attacker)
    if attacker_idx is None:
        return None
    victim_idx = topo.index.get(victim)
    bit = 1 << attacker_idx
    mask = base_state.table.mask
    asn_of = topo.asn
    n = topo.n
    # The canonical arrays carry the same attacker membership as any
    # λ-derivation of them; reading through keeps the derived baseline
    # lazy and shares one membership memo across the whole λ family.
    base_read = (
        base_state.canonical
        if isinstance(base_state, DerivedUniformState)
        else base_state
    )
    before_idx = _member_indices(base_read, attacker_idx, bit)
    if isinstance(attack_state, DeltaState) and attack_state.base is base_read:
        # O(touched): everything outside the overlay kept its baseline
        # row, so only overlay entries can flip membership.
        after_set = set(before_idx)
        over_pid = attack_state.over_best_pid
        for i, pref in attack_state.over_best_pref.items():
            if pref >= 0 and mask[over_pid[i]] & bit:
                after_set.add(i)
            else:
                after_set.discard(i)
    else:
        attack_pref = attack_state.best_pref
        attack_pid = attack_state.best_pid
        after_set = {
            i
            for i in range(n)
            if attack_pref[i] >= 0 and mask[attack_pid[i]] & bit
        }
    excluded = {attacker_idx} if victim_idx is None else {attacker_idx, victim_idx}
    num_ases = n - len(excluded)
    before = {asn_of[i] for i in before_idx if i not in excluded}
    after = {asn_of[i] for i in after_set if i not in excluded}
    return num_ases, before, after


def pollution_report(
    *,
    baseline: PropagationOutcome,
    attacked: PropagationOutcome,
    attacker: int,
    victim: int,
) -> PollutionReport:
    """Compare baseline and attacked outcomes into a :class:`PollutionReport`."""
    compiled = _compiled_traversal_sets(baseline, attacked, attacker, victim)
    if compiled is not None:
        num_ases, before, after = compiled
        return PollutionReport(
            attacker=attacker,
            victim=victim,
            num_ases=num_ases,
            before=frozenset(before),
            after=frozenset(after),
            newly_polluted=frozenset(after - before),
        )
    population = _eligible_ases(baseline, attacker, victim)
    before = set()
    after = set()
    for asn in population:
        base_route = baseline.best.get(asn)
        if base_route is not None and attacker in base_route.path:
            before.add(asn)
        attack_route = attacked.best.get(asn)
        if attack_route is not None and attacker in attack_route.path:
            after.add(asn)
    return PollutionReport(
        attacker=attacker,
        victim=victim,
        num_ases=len(population),
        before=frozenset(before),
        after=frozenset(after),
        newly_polluted=frozenset(after - before),
    )
