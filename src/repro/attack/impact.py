"""Pollution metrics: how much of the Internet the attacker captured.

The paper quantifies attack impact as "the fraction of ASes adopting
the malicious route, meaning that their traffic to victim V will
traverse attacker M", and plots it against the no-attack baseline
("Before hijack") in Figures 7-12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.engine import PropagationOutcome

__all__ = ["PollutionReport", "fraction_traversing", "pollution_report"]


def _eligible_ases(outcome: PropagationOutcome, attacker: int, victim: int) -> list[int]:
    """The population over which pollution is measured.

    The attacker and the victim themselves are excluded: the victim
    always reaches itself, and the attacker trivially traverses itself.
    """
    return [asn for asn in outcome.best if asn not in (attacker, victim)]


def fraction_traversing(
    outcome: PropagationOutcome, transit: int, *, victim: int
) -> float:
    """Fraction of (other) ASes whose selected path traverses ``transit``."""
    population = _eligible_ases(outcome, transit, victim)
    if not population:
        return 0.0
    hits = 0
    for asn in population:
        route = outcome.best.get(asn)
        if route is not None and transit in route.path:
            hits += 1
    return hits / len(population)


@dataclass(frozen=True)
class PollutionReport:
    """Before/after impact of one attack instance."""

    attacker: int
    victim: int
    num_ases: int
    #: ASes whose path traversed the attacker before the attack
    before: frozenset[int]
    #: ASes whose path traverses the attacker under the attack
    after: frozenset[int]
    #: ASes newly captured by the attack (after - before)
    newly_polluted: frozenset[int]

    @property
    def before_fraction(self) -> float:
        """Paper's "Before hijack" series."""
        return len(self.before) / self.num_ases if self.num_ases else 0.0

    @property
    def after_fraction(self) -> float:
        """Paper's "After hijack" series (% of paths traversing attacker)."""
        return len(self.after) / self.num_ases if self.num_ases else 0.0

    @property
    def gain(self) -> float:
        """Increase in traversal fraction caused by the attack."""
        return self.after_fraction - self.before_fraction


def _compiled_traversal_sets(
    baseline: PropagationOutcome,
    attacked: PropagationOutcome,
    attacker: int,
    victim: int,
) -> tuple[int, set[int], set[int]] | None:
    """``(population size, before, after)`` computed on the outcomes'
    attached compiled states, or ``None`` when they are unavailable.

    When both outcomes carry :class:`~repro.bgp.compiled.CompiledState`
    over the same intern table — the invariable case for runner tasks,
    where the attack warm-starts from the cache's derived baseline —
    "does this AS's path traverse the attacker?" is one mask AND per AS
    instead of a tuple scan, and the result is exactly the membership
    test on the reified path.
    """
    base_state = baseline.compiled_state
    attack_state = attacked.compiled_state
    if (
        base_state is None
        or attack_state is None
        or base_state.table is not attack_state.table
    ):
        return None
    topo = base_state.table.topo
    attacker_idx = topo.index.get(attacker)
    if attacker_idx is None:
        return None
    victim_idx = topo.index.get(victim)
    bit = 1 << attacker_idx
    mask = base_state.table.mask
    asn_of = topo.asn
    base_pref = base_state.best_pref
    base_pid = base_state.best_pid
    attack_pref = attack_state.best_pref
    attack_pid = attack_state.best_pid
    num_ases = 0
    before: set[int] = set()
    after: set[int] = set()
    for i in range(topo.n):
        if i == attacker_idx or i == victim_idx:
            continue
        num_ases += 1
        if base_pref[i] >= 0 and mask[base_pid[i]] & bit:
            before.add(asn_of[i])
        if attack_pref[i] >= 0 and mask[attack_pid[i]] & bit:
            after.add(asn_of[i])
    return num_ases, before, after


def pollution_report(
    *,
    baseline: PropagationOutcome,
    attacked: PropagationOutcome,
    attacker: int,
    victim: int,
) -> PollutionReport:
    """Compare baseline and attacked outcomes into a :class:`PollutionReport`."""
    compiled = _compiled_traversal_sets(baseline, attacked, attacker, victim)
    if compiled is not None:
        num_ases, before, after = compiled
        return PollutionReport(
            attacker=attacker,
            victim=victim,
            num_ases=num_ases,
            before=frozenset(before),
            after=frozenset(after),
            newly_polluted=frozenset(after - before),
        )
    population = _eligible_ases(baseline, attacker, victim)
    before = set()
    after = set()
    for asn in population:
        base_route = baseline.best.get(asn)
        if base_route is not None and attacker in base_route.path:
            before.add(asn)
        attack_route = attacked.best.get(asn)
        if attack_route is not None and attacker in attack_route.path:
            after.add(asn)
    return PollutionReport(
        attacker=attacker,
        victim=victim,
        num_ases=len(population),
        before=frozenset(before),
        after=frozenset(after),
        newly_polluted=frozenset(after - before),
    )
