"""Pollution metrics: how much of the Internet the attacker captured.

The paper quantifies attack impact as "the fraction of ASes adopting
the malicious route, meaning that their traffic to victim V will
traverse attacker M", and plots it against the no-attack baseline
("Before hijack") in Figures 7-12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.engine import PropagationOutcome

__all__ = ["PollutionReport", "fraction_traversing", "pollution_report"]


def _eligible_ases(outcome: PropagationOutcome, attacker: int, victim: int) -> list[int]:
    """The population over which pollution is measured.

    The attacker and the victim themselves are excluded: the victim
    always reaches itself, and the attacker trivially traverses itself.
    """
    return [asn for asn in outcome.best if asn not in (attacker, victim)]


def fraction_traversing(
    outcome: PropagationOutcome, transit: int, *, victim: int
) -> float:
    """Fraction of (other) ASes whose selected path traverses ``transit``."""
    population = _eligible_ases(outcome, transit, victim)
    if not population:
        return 0.0
    hits = 0
    for asn in population:
        route = outcome.best.get(asn)
        if route is not None and transit in route.path:
            hits += 1
    return hits / len(population)


@dataclass(frozen=True)
class PollutionReport:
    """Before/after impact of one attack instance."""

    attacker: int
    victim: int
    num_ases: int
    #: ASes whose path traversed the attacker before the attack
    before: frozenset[int]
    #: ASes whose path traverses the attacker under the attack
    after: frozenset[int]
    #: ASes newly captured by the attack (after - before)
    newly_polluted: frozenset[int]

    @property
    def before_fraction(self) -> float:
        """Paper's "Before hijack" series."""
        return len(self.before) / self.num_ases if self.num_ases else 0.0

    @property
    def after_fraction(self) -> float:
        """Paper's "After hijack" series (% of paths traversing attacker)."""
        return len(self.after) / self.num_ases if self.num_ases else 0.0

    @property
    def gain(self) -> float:
        """Increase in traversal fraction caused by the attack."""
        return self.after_fraction - self.before_fraction


def pollution_report(
    *,
    baseline: PropagationOutcome,
    attacked: PropagationOutcome,
    attacker: int,
    victim: int,
) -> PollutionReport:
    """Compare baseline and attacked outcomes into a :class:`PollutionReport`."""
    population = _eligible_ases(baseline, attacker, victim)
    before: set[int] = set()
    after: set[int] = set()
    for asn in population:
        base_route = baseline.best.get(asn)
        if base_route is not None and attacker in base_route.path:
            before.add(asn)
        attack_route = attacked.best.get(asn)
        if attack_route is not None and attacker in attack_route.path:
            after.add(asn)
    return PollutionReport(
        attacker=attacker,
        victim=victim,
        num_ases=len(population),
        before=frozenset(before),
        after=frozenset(after),
        newly_polluted=frozenset(after - before),
    )
