"""Attack models: ASPP-based interception and the baselines it is compared to.

* :mod:`repro.attack.interception` — the paper's contribution: the
  attacker strips the victim's prepended ASNs, shortening the route by
  ``λ-1`` hops without faking the origin or fabricating links;
* :mod:`repro.attack.origin_hijack` — classic origin-AS (MOAS) hijack
  baseline, which blackholes traffic and is caught by MOAS detectors;
* :mod:`repro.attack.path_shortening` — Ballani-style invalid-next-hop
  interception baseline, which fabricates an ``M-V`` link and is caught
  by new-link detectors;
* :mod:`repro.attack.impact` — pollution metrics (the paper's
  "% of paths traversing the attacker").
"""

from repro.attack.impact import PollutionReport, fraction_traversing, pollution_report
from repro.attack.interception import ASPPInterceptionAttack, InterceptionResult, simulate_interception
from repro.attack.origin_hijack import OriginHijackAttack
from repro.attack.path_shortening import PathShorteningAttack

__all__ = [
    "ASPPInterceptionAttack",
    "InterceptionResult",
    "simulate_interception",
    "OriginHijackAttack",
    "PathShorteningAttack",
    "PollutionReport",
    "fraction_traversing",
    "pollution_report",
]
