"""Baseline attack: invalid-next-hop interception (Ballani et al. 2007).

The attacker keeps the legitimate origin but replaces the middle of the
AS path, announcing ``[M V]`` as if it were directly connected to the
victim.  Traffic is intercepted and can be forwarded onward — but the
announcement fabricates an ``M-V`` AS-level edge that does not exist,
so topology-anomaly monitors catch it (see
:func:`repro.detection.baselines.detect_new_links`).  The paper's
ASPP-based interception is the stealthier sibling of this attack: it
shortens the path **without** introducing any unreal link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.engine import PathModifier
from repro.exceptions import SimulationError

__all__ = ["PathShorteningAttack"]


@dataclass(frozen=True)
class PathShorteningAttack:
    """Configuration of a Ballani-style interception by ``attacker``."""

    attacker: int
    victim: int

    def __post_init__(self) -> None:
        if self.attacker == self.victim:
            raise SimulationError("attacker and victim must be distinct ASes")

    def modifier(self) -> PathModifier:
        """Collapse the used path to ``[V]``: the engine emits ``[M V]``."""
        victim = self.victim

        def shorten(path: tuple[int, ...]) -> tuple[int, ...]:
            if not path or path[-1] != victim:
                return path
            return (victim,)

        return shorten
