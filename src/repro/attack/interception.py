"""The ASPP-based prefix interception attack (the paper's §II-B).

The victim ``V`` originates its prefix with ``λ`` copies of its ASN
(``r0 = [V ... V]``).  The attacker ``M`` receives the propagated route
``r1 = [ASn ... AS1 V ... V]``, removes ``λ-1`` of the trailing ``V``
copies, and re-announces ``r2 = [M ASn ... AS1 V]`` — ``λ-1`` hops
shorter than the legitimate route, with the true origin and only real
AS-level links.  ASes preferring the shorter route become *polluted*:
their traffic to ``V`` now traverses ``M``, which can eavesdrop,
throttle, or modify it before it continues to ``V``.

Two attacker variants from the paper's evaluation are supported:

* ``strip_mode="origin"`` (default) removes only the origin's padding —
  the canonical attack;
* ``strip_mode="all"`` also collapses intermediary prepending anywhere
  on the path ("the prepending is not limited to the origin AS");
* ``violate_policy=True`` additionally re-exports the modified route to
  *all* neighbours, ignoring valley-free export (Figures 11-12's
  "violate routing policy" series).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.impact import PollutionReport, pollution_report
from repro.bgp.aspath import collapse_prepending, strip_origin_padding
from repro.bgp.engine import PathModifier, PropagationEngine, PropagationOutcome
from repro.bgp.policy import ExportPolicy
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import DEFAULT_PREFIX
from repro.exceptions import SimulationError

__all__ = ["ASPPInterceptionAttack", "InterceptionResult", "simulate_interception"]

_STRIP_MODES = ("origin", "all")


@dataclass(frozen=True)
class ASPPInterceptionAttack:
    """Configuration of one ASPP interception attempt."""

    attacker: int
    victim: int
    strip_mode: str = "origin"
    #: copies of the victim's ASN the attacker leaves in place (>= 1;
    #: leaving exactly one maximises the shortening).
    keep: int = 1
    #: if True the attacker also violates valley-free export.
    violate_policy: bool = False

    def __post_init__(self) -> None:
        if self.attacker == self.victim:
            raise SimulationError("attacker and victim must be distinct ASes")
        if self.strip_mode not in _STRIP_MODES:
            raise SimulationError(
                f"strip_mode must be one of {_STRIP_MODES}, got {self.strip_mode!r}"
            )
        if self.keep < 1:
            raise SimulationError("the attacker must keep at least one origin copy")

    def modifier(self) -> PathModifier:
        """The path transformation the attacker applies when re-announcing."""
        victim = self.victim
        keep = self.keep
        if self.strip_mode == "all":
            def strip_all(path: tuple[int, ...]) -> tuple[int, ...]:
                if not path or path[-1] != victim:
                    return path
                return collapse_prepending(path)

            return strip_all

        def strip_origin(path: tuple[int, ...]) -> tuple[int, ...]:
            if not path or path[-1] != victim:
                return path
            return strip_origin_padding(path, keep=keep)

        return strip_origin


@dataclass
class InterceptionResult:
    """Baseline and under-attack routing states plus the impact report."""

    attack: ASPPInterceptionAttack
    origin_padding: int
    baseline: PropagationOutcome
    attacked: PropagationOutcome
    report: PollutionReport = field(init=False)

    def __post_init__(self) -> None:
        self.report = pollution_report(
            baseline=self.baseline,
            attacked=self.attacked,
            attacker=self.attack.attacker,
            victim=self.attack.victim,
        )

    @property
    def attacker_has_route(self) -> bool:
        """Whether the attacker held a route to forward intercepted traffic on.

        The interception (rather than blackholing) property requires the
        attacker to keep a valid route to the victim; AS-PATH loop
        prevention guarantees its own route never traverses itself.
        """
        attacker = self.attack.attacker
        state = self.attacked.compiled_state
        if state is not None:
            idx = state.topo.index.get(attacker)
            if idx is not None:
                # Same test in compiled space: route presence is the
                # pref sentinel, path membership is one mask AND.
                if state.best_pref[idx] < 0:
                    return False
                return not (state.table.mask[state.best_pid[idx]] & (1 << idx))
        route = self.attacked.best.get(attacker)
        return route is not None and attacker not in route.path


def simulate_interception(
    engine: PropagationEngine,
    *,
    victim: int,
    attacker: int,
    origin_padding: int,
    prefix: str = DEFAULT_PREFIX,
    strip_mode: str = "origin",
    keep: int = 1,
    violate_policy: bool = False,
    prepending: PrependingPolicy | None = None,
    baseline: PropagationOutcome | None = None,
    secpol: object | None = None,
) -> InterceptionResult:
    """Run one attack instance: converge the baseline, launch, re-converge.

    ``origin_padding`` is the victim's uniform prepending count ``λ``
    (per-neighbour schedules can be supplied via ``prepending``, which
    overrides it).  The attack run warm-starts from the baseline so the
    attacked outcome's adoption rounds form the post-attack clock used
    by the detection-timing analysis.

    ``baseline`` optionally supplies the already-converged pre-attack
    outcome for the same victim/prefix/schedule (e.g. from a
    :class:`repro.runner.BaselineCache`), so only the attack delta is
    re-propagated.  It must equal what ``engine.propagate`` would
    return for this schedule — the sweep runner guarantees that.

    ``secpol`` optionally deploys a security policy
    (:class:`repro.secpol.SecurityDeployment`) for the *attack*
    propagation only: policies activate at attack onset, judging the
    perturbed offers, while the honest baseline converges policy-free —
    which keeps baselines cacheable across policy configurations and
    models routes learned before deployment staying grandfathered until
    re-announced.
    """
    if origin_padding < 1:
        raise SimulationError("origin padding must be >= 1")
    attack = ASPPInterceptionAttack(
        attacker=attacker,
        victim=victim,
        strip_mode=strip_mode,
        keep=keep,
        violate_policy=violate_policy,
    )
    if prepending is None:
        prepending = PrependingPolicy.uniform_origin(victim, origin_padding)
    if baseline is None:
        baseline = engine.propagate(victim, prefix=prefix, prepending=prepending)
    elif baseline.origin != victim or baseline.prefix != prefix:
        raise SimulationError(
            "supplied baseline must come from the same victim and prefix"
        )
    export_policy = (
        ExportPolicy(frozenset({attacker})) if violate_policy else ExportPolicy()
    )
    attacked = engine.propagate(
        victim,
        prefix=prefix,
        prepending=prepending,
        modifiers={attacker: attack.modifier()},
        export_policy=export_policy,
        warm_start=baseline,
        secpol=secpol,
    )
    return InterceptionResult(
        attack=attack,
        origin_padding=origin_padding,
        baseline=baseline,
        attacked=attacked,
    )
