"""Empirical CDF helpers.

Every distribution-shaped figure in the paper (Figures 5, 13, 14) is an
empirical CDF of a per-sample statistic.  This module provides a small,
dependency-free CDF object with the handful of queries the experiment
harness needs: evaluation at a point, quantiles, and fixed-grid sampling
for plotting or table output.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Sequence

from repro.exceptions import MeasurementError

__all__ = ["EmpiricalCDF", "quantile", "fractions_of"]


class EmpiricalCDF:
    """The empirical cumulative distribution of a finite sample.

    The CDF is right-continuous: ``cdf(x)`` is the fraction of samples
    that are ``<= x``.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        values = sorted(float(v) for v in samples)
        if not values:
            raise MeasurementError("cannot build a CDF from an empty sample")
        self._values = values

    @property
    def n(self) -> int:
        """Number of samples backing the CDF."""
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        """The sorted sample values."""
        return tuple(self._values)

    @property
    def min(self) -> float:
        return self._values[0]

    @property
    def max(self) -> float:
        return self._values[-1]

    @property
    def mean(self) -> float:
        return sum(self._values) / len(self._values)

    def __call__(self, x: float) -> float:
        """Fraction of samples ``<= x``."""
        return bisect_right(self._values, x) / len(self._values)

    def survival(self, x: float) -> float:
        """Fraction of samples ``> x``."""
        return 1.0 - self(x)

    def quantile(self, q: float) -> float:
        """Smallest sample value ``v`` with ``cdf(v) >= q``.

        ``q`` must lie in ``(0, 1]``; ``quantile(1.0)`` is the maximum.
        """
        if not 0.0 < q <= 1.0:
            raise MeasurementError(f"quantile level must be in (0, 1], got {q}")
        # Index of the smallest value whose CDF reaches q.
        index = max(0, -(-int(q * len(self._values) + 1e-9)) - 1)
        # Guard against floating error pushing the index past the end.
        index = min(index, len(self._values) - 1)
        # Recompute exactly: find first position where rank/n >= q.
        lo, hi = 0, len(self._values) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if (mid + 1) / len(self._values) >= q:
                hi = mid
            else:
                lo = mid + 1
        return self._values[lo]

    def fraction_below(self, x: float) -> float:
        """Fraction of samples strictly ``< x``."""
        return bisect_left(self._values, x) / len(self._values)

    def sample_grid(self, points: int = 50) -> list[tuple[float, float]]:
        """Return ``points`` evenly spaced ``(x, cdf(x))`` pairs over the range.

        Useful for printing a figure-shaped series.  When all samples are
        identical a single point is returned.
        """
        if points < 1:
            raise MeasurementError("grid must contain at least one point")
        lo, hi = self.min, self.max
        if lo == hi:
            return [(lo, 1.0)]
        step = (hi - lo) / (points - 1) if points > 1 else 0.0
        return [(lo + i * step, self(lo + i * step)) for i in range(points)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EmpiricalCDF(n={self.n}, min={self.min:.4g}, "
            f"median={self.quantile(0.5):.4g}, max={self.max:.4g})"
        )


def quantile(samples: Iterable[float], q: float) -> float:
    """Convenience wrapper: ``EmpiricalCDF(samples).quantile(q)``."""
    return EmpiricalCDF(samples).quantile(q)


def fractions_of(counts: dict[int, int]) -> dict[int, float]:
    """Normalise an integer histogram into fractions that sum to 1.

    Used for Figure 6 (distribution of padding counts).
    """
    total = sum(counts.values())
    if total <= 0:
        raise MeasurementError("histogram is empty; cannot normalise")
    return {key: value / total for key, value in sorted(counts.items())}
