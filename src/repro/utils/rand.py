"""Seeded randomness plumbing.

Every stochastic component in the library takes an explicit
:class:`random.Random` instance (never the module-level global), so a
single integer seed reproduces an entire experiment bit-for-bit.  These
helpers create and derive such instances.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "derive_rng"]

# A fixed, arbitrary large odd constant used to decorrelate derived streams.
_DERIVE_MIX = 0x9E3779B97F4A7C15


def _stable_label_hash(label: str) -> int:
    """A process-independent 64-bit hash of ``label``.

    Python's built-in ``hash`` of strings is salted per process
    (PYTHONHASHSEED), which would make derived streams — and therefore
    every experiment — unreproducible across runs.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int | None) -> random.Random:
    """Return a fresh :class:`random.Random` seeded with ``seed``.

    ``None`` produces an OS-seeded generator (non-reproducible); every
    experiment entry point defaults to a concrete integer seed instead.
    """
    return random.Random(seed)


def derive_rng(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``rng`` and a label.

    Deriving by label (rather than drawing raw integers in sequence)
    keeps sub-streams stable when unrelated components add or remove
    random draws: the topology stream does not shift when the workload
    stream changes.
    """
    base = rng.getrandbits(64)
    mixed = (base ^ _stable_label_hash(label)) * _DERIVE_MIX
    return random.Random(mixed & 0xFFFFFFFFFFFFFFFF)
