"""Fixed-width text tables for experiment output.

The benchmark harness regenerates each of the paper's tables and figures
as text; this module renders the rows the same way for every experiment
so their outputs are directly comparable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table"]


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are formatted with two decimals; all other cells use ``str``.
    Returns the table as a single string (no trailing newline).
    """
    materialized = [[_stringify(cell) for cell in row] for row in rows]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)
