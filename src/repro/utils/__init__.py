"""Small shared utilities: CDFs, seeded randomness, text tables."""

from repro.utils.cdf import EmpiricalCDF, fractions_of, quantile
from repro.utils.rand import derive_rng, make_rng
from repro.utils.tables import format_table

__all__ = [
    "EmpiricalCDF",
    "fractions_of",
    "quantile",
    "derive_rng",
    "make_rng",
    "format_table",
]
