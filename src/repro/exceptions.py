"""Exception hierarchy for the ``repro`` library.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TopologyError(ReproError):
    """A topology is malformed or an operation on it is invalid.

    Raised, for example, when an edge is added twice with conflicting
    relationships, when an AS number is invalid, or when a requested AS
    does not exist in the graph.
    """


class UnknownASError(TopologyError):
    """An operation referenced an AS number not present in the graph."""

    def __init__(self, asn: int) -> None:
        super().__init__(f"AS{asn} is not present in the topology")
        self.asn = asn


class DuplicateEdgeError(TopologyError):
    """An AS-level edge was inserted twice with conflicting relationships."""


class ConvergenceError(ReproError):
    """The BGP propagation engine failed to reach a routing fixpoint.

    Under valley-free export policies the propagation is guaranteed to
    converge (Gao-Rexford conditions); this error therefore indicates
    either a policy-violating configuration that induced a dispute wheel
    or an internal bug.  The engine raises it after a configurable number
    of worklist operations rather than looping forever.
    """

    def __init__(self, operations: int) -> None:
        super().__init__(
            f"propagation did not converge after {operations} worklist operations"
        )
        self.operations = operations


class PolicyError(ReproError):
    """A routing-policy configuration is inconsistent or unsupported."""


class SimulationError(ReproError):
    """A simulation-level precondition failed (e.g. victim == attacker)."""


class SerializationError(ReproError):
    """A topology or RIB file could not be parsed or written."""


class DetectionError(ReproError):
    """The detection pipeline was invoked with inconsistent inputs."""


class MeasurementError(ReproError):
    """A measurement routine received data it cannot characterise."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or produced no data."""
