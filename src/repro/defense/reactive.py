"""Reactive mitigation: the victim stops handing the attacker a lever.

The ASPP interception attack's entire advantage is the ``λ-1`` hops of
padding it can strip.  Once the victim learns of the attack (via the
detector or its own self-check), the cheapest unilateral mitigation is
to re-originate with reduced padding: with ``λ' = 1`` the attacker has
nothing left to remove and every AS re-converges onto legitimate
shortest routes.  The trade-off is losing the traffic engineering the
padding implemented — quantified here as the shift in inbound entry
points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.impact import PollutionReport, pollution_report
from repro.attack.interception import InterceptionResult
from repro.bgp.engine import PropagationEngine, PropagationOutcome
from repro.bgp.prepending import PrependingPolicy
from repro.exceptions import SimulationError

__all__ = ["MitigationOutcome", "reactive_padding_reduction"]


@dataclass
class MitigationOutcome:
    """Routing state after the victim's padding reduction."""

    #: padding the victim re-originated with
    new_padding: int
    #: converged state with the attacker still active
    mitigated: PropagationOutcome
    #: pollution relative to the honest re-originated (λ') world — the
    #: attacker's remaining advantage after mitigation
    report: PollutionReport
    #: fraction of ASes whose first hop into the victim changed vs the
    #: original (padded, pre-attack) state — the TE cost of mitigating
    traffic_engineering_shift: float


def _entry_points(outcome: PropagationOutcome, victim: int) -> dict[int, int]:
    """Map each AS to the victim-adjacent AS its path enters through."""
    entries: dict[int, int] = {}
    for asn, route in outcome.best.items():
        if asn == victim or route is None or not route.path:
            continue
        head = [hop for hop in route.path if hop != victim]
        entries[asn] = head[-1] if head else asn
    return entries


def reactive_padding_reduction(
    engine: PropagationEngine,
    result: InterceptionResult,
    *,
    new_padding: int = 1,
) -> MitigationOutcome:
    """Re-originate with ``new_padding`` while the attacker stays active.

    Returns the converged post-mitigation state; with ``new_padding=1``
    the attack's pollution gain provably collapses to zero (there is no
    padding to strip), which the defence tests assert.
    """
    victim = result.attack.victim
    attacker = result.attack.attacker
    if new_padding < 1:
        raise SimulationError("padding must be >= 1")
    prepending = PrependingPolicy.uniform_origin(victim, new_padding)
    # The honest world under the reduced padding: routing shifts
    # legitimately (that is the TE cost), so the attacker's *remaining
    # advantage* is measured against this re-originated baseline, not
    # the old padded one.
    honest = engine.propagate(
        victim, prefix=result.baseline.prefix, prepending=prepending
    )
    mitigated = engine.propagate(
        victim,
        prefix=result.baseline.prefix,
        prepending=prepending,
        modifiers={attacker: result.attack.modifier()},
        warm_start=honest,
    )
    report = pollution_report(
        baseline=honest,
        attacked=mitigated,
        attacker=attacker,
        victim=victim,
    )
    before_entries = _entry_points(result.baseline, victim)
    after_entries = _entry_points(mitigated, victim)
    shared = set(before_entries) & set(after_entries)
    shifted = sum(1 for asn in shared if before_entries[asn] != after_entries[asn])
    shift = shifted / len(shared) if shared else 0.0
    return MitigationOutcome(
        new_padding=new_padding,
        mitigated=mitigated,
        report=report,
        traffic_engineering_shift=shift,
    )
