"""Mitigation and prevention of ASPP interception (the paper's §VIII
future work: "Developing attack prevention schemes is also in our
future agenda").

Three defenses are implemented, each measurable through the same
pollution metrics as the attack itself:

* :mod:`repro.defense.reactive` — the prefix owner's unilateral
  response: after an alarm, stop prepending (or re-announce with less
  padding), which removes the very length advantage the attacker
  exploited;
* :mod:`repro.defense.cautious` — PGBGP-flavoured *cautious padding
  adoption* deployed by transit ASes: a deploying AS refuses to adopt
  a route whose origin padding is lower than the padding historically
  observed through the same victim-adjacent AS;
* the prefix-owner self-check lives in
  :mod:`repro.detection.selfcheck` (detection-side, but part of the
  same defence story).
"""

from repro.defense.cautious import (
    CautiousPaddingGuard,
    build_padding_registry,
    simulate_cautious_deployment,
)
from repro.defense.reactive import MitigationOutcome, reactive_padding_reduction

__all__ = [
    "reactive_padding_reduction",
    "MitigationOutcome",
    "CautiousPaddingGuard",
    "build_padding_registry",
    "simulate_cautious_deployment",
]
