"""Cautious padding adoption: a PGBGP-style distributed defence.

Pretty Good BGP (Karlin et al., cited by the paper) delays adopting
*novel* routes; we specialise the idea to the ASPP attack's signature.
A deploying AS remembers, per (origin, victim-adjacent AS) pair, the
origin padding it has historically observed, and **refuses to adopt a
route whose padding is lower than that history** — exactly the
modification an ASPP interceptor makes.  Legitimate traffic-engineering
changes by the origin eventually refresh the history (modelled by the
registry's explicit update API); a freshly stripped route is rejected
immediately.

Deployment is partial in practice, so
:func:`simulate_cautious_deployment` measures residual pollution as a
function of the deploying fraction — the ablation DESIGN.md calls for.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.attack.impact import PollutionReport, pollution_report
from repro.bgp.aspath import split_origin_padding
from repro.bgp.engine import ImportFilter, PropagationEngine, PropagationOutcome
from repro.bgp.policy import ExportPolicy
from repro.bgp.prepending import PrependingPolicy
from repro.attack.interception import ASPPInterceptionAttack
from repro.exceptions import SimulationError

__all__ = [
    "build_padding_registry",
    "CautiousPaddingGuard",
    "simulate_cautious_deployment",
]


def build_padding_registry(
    outcome: PropagationOutcome, origin: int
) -> dict[int, int]:
    """Historical padding per victim-adjacent AS, from a converged state.

    Maps each first-hop neighbour ``AS_1`` of ``origin`` to the origin
    padding observed on routes entering through it.  In a converged
    honest world every route through a given ``AS_1`` carries the same
    padding, so the registry is well-defined.
    """
    registry: dict[int, int] = {}
    for asn, route in outcome.best.items():
        if asn == origin or route is None or not route.path:
            continue
        if route.path[-1] != origin:
            continue
        head, _, padding = split_origin_padding(route.path)
        stripped_head = [hop for hop in head if hop != origin]
        first_hop = stripped_head[-1] if stripped_head else asn
        known = registry.get(first_hop)
        registry[first_hop] = padding if known is None else min(known, padding)
    return registry


class CautiousPaddingGuard:
    """The import filter a deploying AS installs.

    Rejects offers for ``origin``'s prefix whose padding undercuts the
    registry's history for the same first hop.  Unknown first hops are
    accepted (no history, no judgement), as are routes for other
    origins.
    """

    def __init__(self, origin: int, registry: dict[int, int]) -> None:
        self._origin = origin
        self._registry = dict(registry)

    def refresh(self, first_hop: int, padding: int) -> None:
        """Record a legitimately learned padding (history refresh)."""
        self._registry[first_hop] = padding

    def __call__(self, sender: int, path: tuple[int, ...]) -> bool:
        if not path or path[-1] != self._origin:
            return True
        head, _, padding = split_origin_padding(path)
        stripped_head = [hop for hop in head if hop != self._origin]
        first_hop = stripped_head[-1] if stripped_head else sender
        known = self._registry.get(first_hop)
        return known is None or padding >= known


def simulate_cautious_deployment(
    engine: PropagationEngine,
    *,
    victim: int,
    attacker: int,
    origin_padding: int,
    deployment_fraction: float,
    rng: random.Random,
    deployers: Iterable[int] | None = None,
) -> PollutionReport:
    """Measure residual attack pollution under partial deployment.

    ``deployment_fraction`` of all ASes (sampled by ``rng``, or the
    explicit ``deployers``) install a :class:`CautiousPaddingGuard`
    built from the honest baseline.  Returns the pollution report of
    the attack against the defended network.
    """
    if not 0.0 <= deployment_fraction <= 1.0:
        raise SimulationError("deployment fraction must be in [0, 1]")
    prepending = PrependingPolicy.uniform_origin(victim, origin_padding)
    baseline = engine.propagate(victim, prepending=prepending)
    registry = build_padding_registry(baseline, victim)

    graph_ases = [asn for asn in engine.graph.ases if asn not in (victim, attacker)]
    if deployers is None:
        count = round(deployment_fraction * len(graph_ases))
        deployers = rng.sample(graph_ases, count) if count else []
    filters: dict[int, ImportFilter] = {
        asn: CautiousPaddingGuard(victim, registry) for asn in deployers
    }

    attack = ASPPInterceptionAttack(attacker=attacker, victim=victim)
    attacked = engine.propagate(
        victim,
        prepending=prepending,
        modifiers={attacker: attack.modifier()},
        export_policy=ExportPolicy(),
        warm_start=baseline,
        import_filters=filters,
    )
    return pollution_report(
        baseline=baseline, attacked=attacked, attacker=attacker, victim=victim
    )
