"""Rolling service-level objectives over run telemetry.

The p50/p99 records the benchmarks report are point-in-time summaries;
a long-running detection deployment needs *objectives*: "the 99th
percentile of alarm latency over the last N observations stays below
X", with a structured, machine-readable event whenever the objective is
breached.  This module turns the histogram primitives into exactly
that:

* :class:`SLO` declares one objective — a metric, a quantile, a
  threshold, and a rolling window;
* :class:`SLOTracker` maintains the rolling window and emits
  :class:`BreachEvent` records the moment the windowed quantile crosses
  the threshold (edge-triggered: one event per excursion, not one per
  observation, so a sustained breach produces one event when it starts
  and a fresh event only after the objective recovers);
* :class:`SLORegistry` groups the trackers of one run, fans
  observations out by SLO name, and renders everything as summary rows
  or JSONL events alongside the :mod:`repro.telemetry.report` output.

Three objective kinds are predefined for the streaming mitigation loop
(:func:`default_pipeline_slos`): ``alarm-latency`` (updates between an
attack entering the stream and its first alarm), ``feed-staleness``
(per-feed backlog while a feed is disconnected) and
``recovery-deadline`` (re-convergence rounds after a mitigation
re-announce).  Trackers are deterministic: the same observation
sequence always yields the same breach events.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from math import ceil

from repro.telemetry.metrics import RunMetrics

__all__ = [
    "SLO_KINDS",
    "SLO",
    "BreachEvent",
    "SLOTracker",
    "SLORegistry",
    "default_pipeline_slos",
]

#: The objective kinds the mitigation loop ships with.  ``kind`` is a
#: free-form label (custom SLOs may use their own); these are the ones
#: the pipeline and controller emit.
SLO_KINDS = ("alarm-latency", "feed-staleness", "recovery-deadline")


@dataclass(frozen=True)
class SLO:
    """One rolling objective: ``quantile(window) <= threshold``."""

    name: str
    kind: str
    threshold: float
    quantile: float = 0.99
    #: rolling window length in observations (the tracker never holds
    #: more than this many values — memory is bounded by construction)
    window: int = 256

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an SLO needs a name")
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"SLO quantile {self.quantile} outside [0, 1]")
        if self.window < 1:
            raise ValueError("SLO window must be >= 1")


@dataclass(frozen=True)
class BreachEvent:
    """A structured record of one objective excursion."""

    slo: str
    kind: str
    threshold: float
    observed: float
    quantile: float
    #: observation index (1-based) at which the breach started
    at: int

    def to_event(self) -> dict[str, object]:
        """A JSONL-ready dict (mirrors the metrics event schema)."""
        return {
            "event": "slo-breach",
            "slo": self.slo,
            "kind": self.kind,
            "threshold": self.threshold,
            "observed": self.observed,
            "quantile": self.quantile,
            "at": self.at,
        }


def _window_quantile(values: list[float], q: float) -> float:
    """Exact nearest-rank quantile of a non-empty sorted list."""
    if q <= 0.0:
        return values[0]
    if q >= 1.0:
        return values[-1]
    rank = min(len(values), max(1, ceil(q * len(values))))
    return values[rank - 1]


class SLOTracker:
    """Rolling window + edge-triggered breach detection for one SLO.

    ``record`` appends an observation, evaluates the windowed quantile,
    and returns a :class:`BreachEvent` when the objective *newly*
    fails (it returns ``None`` while a breach is ongoing; the next
    event fires only after the objective recovers first).  A tracker
    with an empty window is healthy by definition: :meth:`current`
    returns ``0.0`` and :meth:`healthy` is ``True`` — never a crash.
    """

    def __init__(self, slo: SLO, *, metrics: RunMetrics | None = None) -> None:
        self.slo = slo
        self.metrics = metrics
        self._window: deque[float] = deque(maxlen=slo.window)
        self.observations = 0
        self.breaches: list[BreachEvent] = []
        self._in_breach = False

    def current(self) -> float:
        """The windowed quantile right now (``0.0`` on an empty window)."""
        if not self._window:
            return 0.0
        return _window_quantile(sorted(self._window), self.slo.quantile)

    def healthy(self) -> bool:
        return not self._window or self.current() <= self.slo.threshold

    def record(self, value: float) -> BreachEvent | None:
        """Observe one value; returns the breach it opened, if any."""
        self._window.append(float(value))
        self.observations += 1
        observed = self.current()
        if observed <= self.slo.threshold:
            self._in_breach = False
            return None
        if self._in_breach:
            return None  # ongoing excursion: already reported
        self._in_breach = True
        event = BreachEvent(
            slo=self.slo.name,
            kind=self.slo.kind,
            threshold=self.slo.threshold,
            observed=observed,
            quantile=self.slo.quantile,
            at=self.observations,
        )
        self.breaches.append(event)
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.count(f"slo.breaches.{self.slo.name}")
        return event


class SLORegistry:
    """The SLO trackers of one run, addressable by SLO name."""

    def __init__(
        self,
        slos: Iterable[SLO] = (),
        *,
        metrics: RunMetrics | None = None,
    ) -> None:
        self.metrics = metrics
        self.trackers: dict[str, SLOTracker] = {}
        for slo in slos:
            self.add(slo)

    def __bool__(self) -> bool:
        return bool(self.trackers)

    def __iter__(self) -> Iterator[SLOTracker]:
        return iter(self.trackers.values())

    def add(self, slo: SLO) -> SLOTracker:
        if slo.name in self.trackers:
            raise ValueError(f"duplicate SLO name {slo.name!r}")
        tracker = self.trackers[slo.name] = SLOTracker(slo, metrics=self.metrics)
        return tracker

    def record(self, name: str, value: float) -> BreachEvent | None:
        """Observe ``value`` against SLO ``name``; unknown names are
        ignored (a pipeline emits every signal it has — the operator
        chooses which objectives to hold it to)."""
        tracker = self.trackers.get(name)
        if tracker is None:
            return None
        return tracker.record(value)

    def breaches(self) -> list[BreachEvent]:
        """Every breach so far, in (SLO registration, occurrence) order."""
        out: list[BreachEvent] = []
        for tracker in self.trackers.values():
            out.extend(tracker.breaches)
        return out

    def events(self) -> list[dict[str, object]]:
        """JSONL-ready breach events (the structured alerting surface)."""
        return [breach.to_event() for breach in self.breaches()]

    def summary_rows(self) -> list[tuple[object, ...]]:
        """``(slo, kind, objective, observed, status, breaches)`` rows."""
        rows: list[tuple[object, ...]] = []
        for tracker in self.trackers.values():
            slo = tracker.slo
            status = "ok" if tracker.healthy() else "BREACHED"
            if not tracker.observations:
                status = "no data"
            rows.append(
                (
                    slo.name,
                    slo.kind,
                    f"p{slo.quantile * 100:g} <= {slo.threshold:g}",
                    f"{tracker.current():g}",
                    status,
                    len(tracker.breaches),
                )
            )
        return rows

    def summary_table(self) -> str:
        from repro.utils.tables import format_table

        rows = self.summary_rows()
        if not rows:
            rows = [("(no objectives)", "-", "-", "-", "-", "-")]
        return format_table(
            ("slo", "kind", "objective", "observed", "status", "breaches"),
            rows,
            title="service-level objectives",
        )


def default_pipeline_slos(
    *,
    alarm_latency_updates: float = 2000.0,
    feed_staleness_updates: float = 512.0,
    recovery_rounds: float = 12.0,
    window: int = 256,
) -> tuple[SLO, ...]:
    """The mitigation loop's stock objectives.

    ``alarm-latency`` holds the p99 of updates-to-alarm under
    ``alarm_latency_updates``; ``feed-staleness`` holds the p99 per-feed
    backlog (updates buffered behind a disconnected feed) under
    ``feed_staleness_updates``; ``recovery-deadline`` holds the *max*
    (p100) re-convergence rounds of a mitigation step under
    ``recovery_rounds``.
    """
    return (
        SLO(
            name="alarm-latency",
            kind="alarm-latency",
            threshold=alarm_latency_updates,
            quantile=0.99,
            window=window,
        ),
        SLO(
            name="feed-staleness",
            kind="feed-staleness",
            threshold=feed_staleness_updates,
            quantile=0.99,
            window=window,
        ),
        SLO(
            name="recovery-deadline",
            kind="recovery-deadline",
            threshold=recovery_rounds,
            quantile=1.0,
            window=window,
        ),
    )
