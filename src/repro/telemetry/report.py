"""Rendering and persistence of :class:`~repro.telemetry.RunMetrics`.

Two output formats:

* **summary table** — one aligned text table (the same renderer every
  experiment artefact uses, :func:`repro.utils.tables.format_table`)
  with one row per metric;
* **JSONL event log** — one JSON object per line, one line per metric,
  suitable for appending across runs and for machine consumption.

JSONL schema (one event per line)::

    {"event": "counter",   "name": "engine.activations", "value": 1234}
    {"event": "histogram", "name": "engine.convergence_rounds",
     "count": 8, "total": 40.0, "min": 3.0, "max": 9.0,
     "buckets": {"2": 3, "3": 5}}
    {"event": "timer",     "name": "worker.task_seconds",
     "count": 8, "total": 0.12, "max": 0.031}
    {"event": "info",      "name": "worker.12345.tasks", "value": 8}

Events are emitted in (event-kind, name) order so the log of a
deterministic run is itself deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.metrics import RunMetrics
from repro.utils.tables import format_table

__all__ = ["events", "to_jsonl", "from_jsonl", "write_jsonl", "read_jsonl", "summary_table"]


def events(metrics: RunMetrics) -> list[dict[str, object]]:
    """The metrics as a deterministic list of JSONL-ready event dicts."""
    out: list[dict[str, object]] = []
    for name in sorted(metrics.counters):
        out.append(
            {"event": "counter", "name": name, "value": metrics.counters[name].value}
        )
    for name in sorted(metrics.histograms):
        h = metrics.histograms[name]
        out.append(
            {
                "event": "histogram",
                "name": name,
                "count": h.count,
                "total": h.total,
                "min": h.min,
                "max": h.max,
                "buckets": {str(b): c for b, c in sorted(h.buckets.items())},
            }
        )
    for name in sorted(metrics.timers):
        t = metrics.timers[name]
        out.append(
            {
                "event": "timer",
                "name": name,
                "count": t.count,
                "total": t.total,
                "max": t.max,
            }
        )
    for name in sorted(metrics.info):
        out.append({"event": "info", "name": name, "value": metrics.info[name]})
    return out


def to_jsonl(metrics: RunMetrics) -> str:
    """One JSON object per line (no trailing newline)."""
    return "\n".join(json.dumps(event, sort_keys=True) for event in events(metrics))


def from_jsonl(text: str) -> RunMetrics:
    """Rebuild a registry from a JSONL event log (inverse of :func:`to_jsonl`)."""
    metrics = RunMetrics()
    data: dict[str, dict] = {"counters": {}, "histograms": {}, "timers": {}, "info": {}}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        kind, name = event["event"], event["name"]
        if kind == "counter":
            data["counters"][name] = event["value"]
        elif kind == "histogram":
            data["histograms"][name] = {
                "count": event["count"],
                "total": event["total"],
                "min": event["min"],
                "max": event["max"],
                "buckets": event["buckets"],
            }
        elif kind == "timer":
            data["timers"][name] = {
                "count": event["count"],
                "total": event["total"],
                "max": event["max"],
            }
        elif kind == "info":
            data["info"][name] = event["value"]
        else:
            raise ValueError(f"unknown metrics event kind {kind!r}")
    return metrics.merge(RunMetrics.from_dict(data))


def write_jsonl(metrics: RunMetrics, path: str | Path) -> None:
    Path(path).write_text(to_jsonl(metrics) + "\n")


def read_jsonl(path: str | Path) -> RunMetrics:
    return from_jsonl(Path(path).read_text())


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def summary_table(metrics: RunMetrics) -> str:
    """One aligned table over every recorded metric.

    Counters report their value; histograms report count/mean/min/max;
    timers report count and total/mean/max milliseconds; info rows
    report their tally.
    """
    rows: list[tuple[object, ...]] = []
    for name in sorted(metrics.counters):
        rows.append((name, "counter", _fmt(metrics.counters[name].value), "-", "-", "-"))
    for name in sorted(metrics.histograms):
        h = metrics.histograms[name]
        rows.append(
            (name, "histogram", _fmt(h.count), _fmt(h.mean), _fmt(h.min), _fmt(h.max))
        )
    for name in sorted(metrics.timers):
        t = metrics.timers[name]
        rows.append(
            (
                name,
                "timer",
                _fmt(t.count),
                f"{1e3 * t.mean:.3g} ms",
                f"{1e3 * t.total:.3g} ms total",
                f"{1e3 * t.max:.3g} ms max",
            )
        )
    for name in sorted(metrics.info):
        rows.append((name, "info", _fmt(metrics.info[name]), "-", "-", "-"))
    if not rows:
        rows.append(("(no metrics recorded)", "-", "-", "-", "-", "-"))
    return format_table(
        ("metric", "kind", "count/value", "mean", "min/total", "max"),
        rows,
        title="run metrics",
    )
