"""Run-telemetry primitives: counters, timers, histograms, registry.

The simulator's hot layers (engine, baseline cache, sweep executor,
detectors) report *what work they did* — announcements processed,
decision fast-path hits, cache derivations, updates consumed — into a
:class:`RunMetrics` registry.  The registry is designed around three
hard requirements:

* **zero overhead when disabled** — every recording method returns
  immediately on a disabled registry, and the instrumented call sites
  hoist a single ``metrics is not None and metrics.enabled`` check out
  of their hot loops, so an uninstrumented run pays nothing but that
  one branch;
* **picklable and exactly mergeable** — a process-pool worker keeps its
  own registry and ships per-task deltas back with each result;
  :meth:`RunMetrics.merge` sums them so a pooled run's aggregate equals
  the serial run's registry for every deterministic metric (wall-clock
  timers are the one inherently run-dependent section);
* **serialisable** — a registry round-trips through a plain dict (and
  therefore JSONL, see :mod:`repro.telemetry.report`) without losing
  information.

Metric names are dotted strings namespaced by layer (``engine.*``,
``cache.*``, ``worker.*``, ``detection.*``); the ``info`` section holds
run-shape details (e.g. per-worker task counts keyed by PID) that are
*expected* to differ between serial and pooled runs and are therefore
excluded from determinism comparisons.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps

__all__ = ["CACHE_SHAPE_PREFIXES", "Counter", "Timer", "Histogram", "RunMetrics", "timed"]

#: Metric namespaces whose values depend on *how* a run executed rather
#: than on the workload alone.  Every pool worker keeps its own baseline
#: cache, so a victim whose tasks land on two workers converges its
#: canonical baseline twice — ``cache.*`` counters and the engine work
#: done during those cold (non-warm-started) convergences legitimately
#: grow with the worker count.  They are real, useful telemetry (they
#: quantify duplicated baseline work), but they are excluded from
#: serial-vs-pooled determinism comparisons.  The compiled backend's
#: interning counters (``engine.compiled.*`` — hit rates depend on
#: which paths a worker's intern tables have already seen) are
#: cache-shaped for the same reason, as are the delta-propagation
#: reuse counters (``engine.delta.*`` — whether a run takes the delta
#: path or falls back to the full recompute depends on which baseline
#: object the local cache handed it), and the vectorized dispatch
#: counters (``engine.vectorized.*`` — how many runs batch into one
#: frontier walk, and how many fall back to the compiled core, depends
#: on how the work was grouped).  The whole ``runner.*`` namespace
#: is run-shaped by construction: shared-memory transport accounting
#: (``runner.shm.*`` — per-worker, absent on the serial path) and the
#: supervisor's recovery counters (``runner.retries``,
#: ``runner.pool_restarts``, ``runner.deadline_kills``,
#: ``runner.resumed_tasks``, ...) measure faults survived and work
#: skipped, not propagation performed.
CACHE_SHAPE_PREFIXES = (
    "cache.",
    "engine.cold.",
    "engine.compiled.",
    "engine.delta.",
    "engine.vectorized.",
    "runner.",
    # The campaign store and its scheduler measure work *avoided*
    # (dedupe hits, steals, bytes persisted), which depends on what
    # earlier runs left in the store — run-shaped by definition.
    "scheduler.",
    "store.",
)


@dataclass
class Counter:
    """A monotonically increasing integer."""

    name: str
    value: int = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class Timer:
    """Accumulated wall-clock time for one named operation.

    Timers are inherently non-deterministic; they are reported but
    excluded from serial-vs-pooled equality checks.
    """

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Timer") -> None:
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max


@dataclass
class Histogram:
    """Distribution summary over non-negative observations.

    Observations land in power-of-two buckets (bucket ``b`` holds
    values whose integer part has bit length ``b``, i.e. ``0``, ``1``,
    ``2-3``, ``4-7``, ...), which keeps the merged histogram exact:
    bucket counts, count, total, min and max all add up independently
    of how the observations were partitioned across workers.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    #: bucket index (``int(value).bit_length()``) -> observation count
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """An upper-bound estimate of the ``q``-quantile (``0 <= q <= 1``).

        Walks the power-of-two buckets to the one holding the ``q``-th
        observation and returns that bucket's inclusive upper edge
        (``2**b - 1``), clamped into ``[min, max]`` so the estimate
        never leaves the observed range.  Exact to within one bucket —
        good enough for the p50/p99 latency gates the benchmarks
        report.

        Explicit edge semantics (pinned by unit tests):

        * an **empty** histogram returns ``0.0`` for every ``q``;
        * ``q == 0.0`` returns the exact observed :attr:`min` and
          ``q == 1.0`` the exact observed :attr:`max` (never a bucket
          edge);
        * a **single-bucket** histogram returns a value inside
          ``[min, max]`` for every ``q`` (the bucket edge clamped into
          the observed range);
        * ``q`` outside ``[0, 1]`` (NaN included) raises ``ValueError``.
        """
        if not q >= 0.0 or not q <= 1.0:  # NaN fails both comparisons
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count or self.min is None or self.max is None:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                upper = float((1 << bucket) - 1) if bucket else 0.0
                return min(max(upper, self.min), self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count


class RunMetrics:
    """The registry: named counters, histograms, timers and info tags.

    Create one per run (``RunMetrics()``) or a disabled sentinel
    (``RunMetrics(enabled=False)``) whose recording methods are no-ops.
    The registry is a plain picklable object; :meth:`merge` folds
    another registry (or a :meth:`take` delta) in by exact summation.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, Timer] = {}
        #: run-shape details (per-worker task counts, ...) — summed on
        #: merge but *excluded* from determinism comparisons, since the
        #: keys legitimately differ between serial and pooled runs.
        self.info: dict[str, int] = {}

    # -- recording ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.value += n

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        histogram.observe(value)

    def timer_add(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        timer.add(seconds)

    def info_add(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.info[name] = self.info.get(name, 0) + n

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager timing its body into timer ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timer_add(name, time.perf_counter() - start)

    # -- accessors ------------------------------------------------------
    def counter_value(self, name: str) -> int:
        counter = self.counters.get(name)
        return counter.value if counter is not None else 0

    def __bool__(self) -> bool:
        """True when anything has been recorded."""
        return bool(self.counters or self.histograms or self.timers or self.info)

    # -- aggregation ----------------------------------------------------
    def merge(self, other: "RunMetrics | Mapping[str, object]") -> "RunMetrics":
        """Fold ``other`` (a registry or a :meth:`take` delta) into self."""
        if isinstance(other, Mapping):
            other = RunMetrics.from_dict(other)
        for name, counter in other.counters.items():
            mine = self.counters.get(name)
            if mine is None:
                self.counters[name] = Counter(name, counter.value)
            else:
                mine.merge(counter)
        for name, histogram in other.histograms.items():
            mine_h = self.histograms.get(name)
            if mine_h is None:
                self.histograms[name] = Histogram(
                    name,
                    histogram.count,
                    histogram.total,
                    histogram.min,
                    histogram.max,
                    dict(histogram.buckets),
                )
            else:
                mine_h.merge(histogram)
        for name, timer in other.timers.items():
            mine_t = self.timers.get(name)
            if mine_t is None:
                self.timers[name] = Timer(name, timer.count, timer.total, timer.max)
            else:
                mine_t.merge(timer)
        for name, value in other.info.items():
            self.info[name] = self.info.get(name, 0) + value
        return self

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()
        self.timers.clear()
        self.info.clear()

    def take(self) -> dict[str, object]:
        """Snapshot-and-reset: the delta since the last take.

        Pool workers call this after every task; the deltas merged in
        task order reproduce the serial registry exactly.
        """
        delta = self.to_dict()
        self.reset()
        return delta

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A plain-data snapshot (JSON-compatible, deterministic order)."""
        return {
            "counters": {
                name: self.counters[name].value for name in sorted(self.counters)
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": {str(b): c for b, c in sorted(h.buckets.items())},
                }
                for name, h in sorted(self.histograms.items())
            },
            "timers": {
                name: {"count": t.count, "total": t.total, "max": t.max}
                for name, t in sorted(self.timers.items())
            },
            "info": {name: self.info[name] for name in sorted(self.info)},
        }

    def deterministic_snapshot(self) -> dict[str, object]:
        """The metrics that must be identical between a serial run and
        any pooled run of the same workload: counters and histograms
        (never wall-clock timers or the per-worker ``info`` split),
        minus the :data:`CACHE_SHAPE_PREFIXES` namespaces, whose values
        measure per-worker cache locality rather than the workload."""
        snapshot = self.to_dict()
        return {
            section: {
                name: value
                for name, value in snapshot[section].items()
                if not name.startswith(CACHE_SHAPE_PREFIXES)
            }
            for section in ("counters", "histograms")
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunMetrics":
        metrics = cls()
        for name, value in dict(data.get("counters", {})).items():
            metrics.counters[name] = Counter(name, int(value))
        for name, h in dict(data.get("histograms", {})).items():
            metrics.histograms[name] = Histogram(
                name,
                int(h["count"]),
                float(h["total"]),
                None if h["min"] is None else float(h["min"]),
                None if h["max"] is None else float(h["max"]),
                {int(b): int(c) for b, c in dict(h["buckets"]).items()},
            )
        for name, t in dict(data.get("timers", {})).items():
            metrics.timers[name] = Timer(
                name, int(t["count"]), float(t["total"]), float(t["max"])
            )
        for name, value in dict(data.get("info", {})).items():
            metrics.info[name] = int(value)
        return metrics

    def summary_table(self) -> str:
        """Human-readable summary (see :mod:`repro.telemetry.report`)."""
        from repro.telemetry.report import summary_table

        return summary_table(self)

    def to_jsonl(self) -> str:
        from repro.telemetry.report import to_jsonl

        return to_jsonl(self)


def timed(name: str):
    """Method decorator timing each call into ``self.metrics``.

    The instance's ``metrics`` attribute may be ``None`` or a disabled
    registry, in which case the wrapper adds nothing but an attribute
    lookup.
    """

    def decorate(method):
        @wraps(method)
        def wrapper(self, *args, **kwargs):
            metrics = getattr(self, "metrics", None)
            if metrics is None or not metrics.enabled:
                return method(self, *args, **kwargs)
            start = time.perf_counter()
            try:
                return method(self, *args, **kwargs)
            finally:
                metrics.timer_add(name, time.perf_counter() - start)

        return wrapper

    return decorate
