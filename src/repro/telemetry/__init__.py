"""Run telemetry: lightweight, dependency-free instrumentation.

Every layer of the simulator can report what work it did into a
:class:`RunMetrics` registry — announcements processed and decision
fast-path hits in the engine, baseline-cache hits and derivations in
the runner, per-worker task counts in the executor, updates consumed
and time-to-first-alarm in the detectors.  Registries are zero-overhead
when disabled, picklable, and mergeable, so per-worker metrics from a
process pool aggregate exactly into one report; the report serialises
to JSONL event logs or a human-readable summary table.

Instrumentation never changes results: metrics are pure observations,
and the differential test suite pins that a metrics-enabled run
produces bit-identical experiment artefacts to a disabled one.
"""

from repro.telemetry.metrics import (
    CACHE_SHAPE_PREFIXES,
    Counter,
    Histogram,
    RunMetrics,
    Timer,
    timed,
)
from repro.telemetry.report import (
    events,
    from_jsonl,
    read_jsonl,
    summary_table,
    to_jsonl,
    write_jsonl,
)
from repro.telemetry.slo import (
    SLO,
    SLO_KINDS,
    BreachEvent,
    SLORegistry,
    SLOTracker,
    default_pipeline_slos,
)

__all__ = [
    "CACHE_SHAPE_PREFIXES",
    "Counter",
    "Histogram",
    "RunMetrics",
    "Timer",
    "timed",
    "events",
    "from_jsonl",
    "read_jsonl",
    "summary_table",
    "to_jsonl",
    "write_jsonl",
    "SLO",
    "SLO_KINDS",
    "BreachEvent",
    "SLORegistry",
    "SLOTracker",
    "default_pipeline_slos",
]
