"""repro — reproduction of "Studying Impacts of Prefix Interception
Attack by Exploring BGP AS-PATH Prepending" (Zhang & Pourzandi, ICDCS 2012).

The library models the Internet's AS-level routing system (topology,
valley-free BGP propagation, AS-path prepending), the ASPP-based prefix
interception attack the paper introduces, and the multi-vantage-point
detection algorithm it proposes.  See README.md for a tour and
DESIGN.md for the full system inventory.

Quickstart::

    import random
    from repro import (
        InternetTopologyConfig, generate_internet_topology,
        PropagationEngine, simulate_interception,
    )

    world = generate_internet_topology(InternetTopologyConfig(), random.Random(7))
    engine = PropagationEngine(world.graph)
    result = simulate_interception(
        engine, victim=world.content[0], attacker=world.tier1[0], origin_padding=3
    )
    print(f"polluted: {result.report.after_fraction:.0%}")
"""

from repro.attack import (
    ASPPInterceptionAttack,
    InterceptionResult,
    OriginHijackAttack,
    PathShorteningAttack,
    PollutionReport,
    fraction_traversing,
    pollution_report,
    simulate_interception,
)
from repro.bgp import (
    ASPath,
    ExportPolicy,
    MonitorView,
    PrependingPolicy,
    PropagationEngine,
    PropagationOutcome,
    Route,
    RouteCollector,
    three_phase_routes,
)
from repro.core import AttackCampaign, InterceptionStudy
from repro.defense import (
    CautiousPaddingGuard,
    MitigationOutcome,
    build_padding_registry,
    reactive_padding_reduction,
    simulate_cautious_deployment,
)
from repro.detection import (
    Alarm,
    ASPPInterceptionDetector,
    Confidence,
    DetectionTiming,
    PrefixOwnerSelfCheck,
    StreamingDetector,
    attack_update_stream,
    attacker_coverage,
    detect_moas,
    detect_new_links,
    detection_timing,
    greedy_cover_monitors,
    random_monitors,
    top_degree_monitors,
    victim_adjacent_monitors,
)
from repro.exceptions import (
    ConvergenceError,
    DetectionError,
    ExperimentError,
    MeasurementError,
    PolicyError,
    ReproError,
    SerializationError,
    SimulationError,
    TopologyError,
)
from repro.inference import infer_caida, infer_combined, infer_gao, score_inference
from repro.measurement import (
    MonitorRIBs,
    PaddingBehaviorModel,
    build_monitor_ribs,
    padding_count_distribution,
    prepended_fraction_per_monitor,
)
from repro.topology import (
    ASGraph,
    InternetTopologyConfig,
    PrefClass,
    Relationship,
    classify_tiers,
    customer_cone,
    generate_internet_topology,
    load_caida,
    save_caida,
    tier1_ases,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core façade
    "InterceptionStudy",
    "AttackCampaign",
    # topology
    "ASGraph",
    "Relationship",
    "PrefClass",
    "InternetTopologyConfig",
    "generate_internet_topology",
    "classify_tiers",
    "customer_cone",
    "tier1_ases",
    "load_caida",
    "save_caida",
    # bgp
    "ASPath",
    "Route",
    "ExportPolicy",
    "PrependingPolicy",
    "PropagationEngine",
    "PropagationOutcome",
    "RouteCollector",
    "MonitorView",
    "three_phase_routes",
    # attack
    "ASPPInterceptionAttack",
    "InterceptionResult",
    "simulate_interception",
    "OriginHijackAttack",
    "PathShorteningAttack",
    "PollutionReport",
    "pollution_report",
    "fraction_traversing",
    # detection
    "Alarm",
    "Confidence",
    "ASPPInterceptionDetector",
    "PrefixOwnerSelfCheck",
    "StreamingDetector",
    "attack_update_stream",
    "top_degree_monitors",
    "random_monitors",
    "victim_adjacent_monitors",
    "greedy_cover_monitors",
    "attacker_coverage",
    "detect_moas",
    "detect_new_links",
    "DetectionTiming",
    "detection_timing",
    # defense
    "reactive_padding_reduction",
    "MitigationOutcome",
    "CautiousPaddingGuard",
    "build_padding_registry",
    "simulate_cautious_deployment",
    # inference
    "infer_gao",
    "infer_caida",
    "infer_combined",
    "score_inference",
    # measurement
    "PaddingBehaviorModel",
    "MonitorRIBs",
    "build_monitor_ribs",
    "prepended_fraction_per_monitor",
    "padding_count_distribution",
    # exceptions
    "ReproError",
    "TopologyError",
    "PolicyError",
    "SimulationError",
    "ConvergenceError",
    "DetectionError",
    "MeasurementError",
    "SerializationError",
    "ExperimentError",
]
