"""The Facebook routing-anomaly case study (the paper's §III).

* :mod:`repro.casestudy.facebook` — an exact reconstruction of the
  2011-03-22 anomaly: the AS-level fragment of Figure 1, the baseline
  and anomalous routes, and a replay through the propagation engine
  and the detector;
* :mod:`repro.casestudy.traceroute` — a data-plane traceroute
  simulation driven by the control-plane AS path, reproducing Table I's
  cross-ocean latency signature.
"""

from repro.casestudy.facebook import (
    FACEBOOK_PREFIXES,
    FacebookReplay,
    PrefixFate,
    build_facebook_topology,
    replay_all_prefixes,
    replay_facebook_anomaly,
)
from repro.casestudy.traceroute import TracerouteHop, TracerouteSimulator

__all__ = [
    "build_facebook_topology",
    "replay_facebook_anomaly",
    "replay_all_prefixes",
    "FacebookReplay",
    "PrefixFate",
    "FACEBOOK_PREFIXES",
    "TracerouteSimulator",
    "TracerouteHop",
]
