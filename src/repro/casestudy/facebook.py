"""Reconstruction of the 2011-03-22 Facebook routing anomaly (§III).

On Mar 22nd 2011 at 7:15 GMT, AT&T (AS7018) and NTT (AS2914) — and
"almost all large ISPs" — switched their route towards two Facebook
prefixes from the normal 6-hop route through Level3,

    ``7018 3356 32934 32934 32934 32934 32934``   (5 copies of 32934)

to a 5-hop route through China Telecom and a Korean ISP,

    ``7018 4134 9318 32934 32934 32934``          (3 copies of 32934),

which is *shorter* precisely because it carries two fewer prepended
copies of Facebook's ASN.  The paper uses this instance to motivate the
ASPP interception attack: one consistent explanation is that AS9318
removed two of the five padded ASNs before re-announcing to its peer.

This module rebuilds the AS-level fragment of the paper's Figure 1 with
the real AS numbers, replays both the baseline and the anomaly through
the propagation engine, and exposes the routes for the detector and the
traceroute simulation (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.interception import InterceptionResult, simulate_interception
from repro.bgp.engine import PropagationEngine, PropagationOutcome
from repro.bgp.prepending import PrependingPolicy
from repro.topology.asgraph import ASGraph

__all__ = [
    "AS_FACEBOOK",
    "AS_ATT",
    "AS_LEVEL3",
    "AS_NTT",
    "AS_CHINA_TELECOM",
    "AS_KOREAN_ISP",
    "AS_ATT_CUSTOMER",
    "AS_SPRINT",
    "FACEBOOK_PREFIXES",
    "AFFECTED_PREFIXES",
    "FACEBOOK_PADDING",
    "ANOMALY_PADDING_SEEN",
    "build_facebook_topology",
    "replay_facebook_anomaly",
    "replay_all_prefixes",
    "FacebookReplay",
    "PrefixFate",
]

AS_FACEBOOK = 32934
AS_ATT = 7018
AS_LEVEL3 = 3356
AS_NTT = 2914
AS_SPRINT = 1239
AS_CHINA_TELECOM = 4134
AS_KOREAN_ISP = 9318
#: the AT&T customer the paper's Table I traceroute originates from
AS_ATT_CUSTOMER = 7132

#: The ten prefixes Facebook announced at the time (paper: "among all
#: ten prefixes announced by Facebook, only two ... are affected").
FACEBOOK_PREFIXES: tuple[str, ...] = (
    "66.220.144.0/20",
    "66.220.152.0/21",
    "69.63.176.0/20",
    "69.63.184.0/21",
    "69.171.224.0/20",
    "69.171.239.0/24",
    "69.171.240.0/20",
    "69.171.255.0/24",
    "74.119.76.0/22",
    "204.15.20.0/22",
)

#: The two front-end prefixes that were actually redirected.
AFFECTED_PREFIXES: tuple[str, ...] = ("69.171.224.0/20", "69.171.255.0/24")

#: Facebook's normal origination padding (5 copies of 32934).
FACEBOOK_PADDING = 5
#: Padding visible in the anomalous route (3 copies): two were removed.
ANOMALY_PADDING_SEEN = 3


def build_facebook_topology() -> tuple[ASGraph, dict[int, str]]:
    """The AS-level fragment of the paper's Figure 1.

    Returns the annotated graph and a human-readable label per ASN.
    Relationships follow the roles visible in the paper's routes:

    * AT&T, NTT, Level3, Sprint and China Telecom form the (partial)
      Tier-1 peering core;
    * the Korean ISP (AS9318) buys transit from China Telecom;
    * Facebook is a customer of Level3 and of the Korean ISP (its
      trans-Pacific connectivity during the incident);
    * the traceroute vantage point (AS7132) is an AT&T customer.
    """
    graph = ASGraph()
    tier1 = (AS_ATT, AS_LEVEL3, AS_NTT, AS_SPRINT, AS_CHINA_TELECOM)
    for index, a in enumerate(tier1):
        for b in tier1[index + 1 :]:
            graph.add_p2p(a, b)
    graph.add_p2c(AS_CHINA_TELECOM, AS_KOREAN_ISP)
    graph.add_p2c(AS_LEVEL3, AS_FACEBOOK)
    graph.add_p2c(AS_KOREAN_ISP, AS_FACEBOOK)
    graph.add_p2c(AS_ATT, AS_ATT_CUSTOMER)
    labels = {
        AS_FACEBOOK: "Facebook",
        AS_ATT: "AT&T",
        AS_LEVEL3: "Level3",
        AS_NTT: "NTT",
        AS_SPRINT: "Sprint",
        AS_CHINA_TELECOM: "China Telecom",
        AS_KOREAN_ISP: "Korean ISP",
        AS_ATT_CUSTOMER: "AT&T customer",
    }
    return graph, labels


@dataclass
class FacebookReplay:
    """The replayed anomaly: baseline and anomalous routing states."""

    graph: ASGraph
    labels: dict[int, str]
    prefix: str
    result: InterceptionResult

    @property
    def baseline(self) -> PropagationOutcome:
        return self.result.baseline

    @property
    def anomalous(self) -> PropagationOutcome:
        return self.result.attacked

    def route_change_rows(self) -> list[tuple[str, str, str]]:
        """Per-AS (name, before-path, after-path) rows for reporting."""
        rows: list[tuple[str, str, str]] = []
        for asn in sorted(self.labels):
            if asn == AS_FACEBOOK:
                continue
            before = self.baseline.path_of(asn)
            after = self.anomalous.path_of(asn)
            rows.append(
                (
                    f"{self.labels[asn]} (AS{asn})",
                    " ".join(map(str, before)) if before else "-",
                    " ".join(map(str, after)) if after else "-",
                )
            )
        return rows

    def figure1_announcements(self) -> list[str]:
        """The announcement lines of the paper's Figure 1."""
        lines = [
            f"Facebook -> Level3:      AS Path: {' '.join([str(AS_FACEBOOK)] * FACEBOOK_PADDING)}",
            f"Level3 -> AT&T:          AS Path: {AS_LEVEL3} "
            + " ".join([str(AS_FACEBOOK)] * FACEBOOK_PADDING),
            f"Facebook -> Korean ISP:  AS Path: {' '.join([str(AS_FACEBOOK)] * FACEBOOK_PADDING)}",
            f"Korean ISP -> ChinaTel:  AS Path: {AS_KOREAN_ISP} "
            + " ".join([str(AS_FACEBOOK)] * ANOMALY_PADDING_SEEN)
            + "   <- two padded ASNs removed",
            f"ChinaTel -> AT&T/NTT:    AS Path: {AS_CHINA_TELECOM} {AS_KOREAN_ISP} "
            + " ".join([str(AS_FACEBOOK)] * ANOMALY_PADDING_SEEN),
        ]
        return lines


@dataclass(frozen=True)
class PrefixFate:
    """Outcome of the anomaly for one of Facebook's ten prefixes."""

    prefix: str
    #: whether Facebook announced this prefix through the Korean ISP
    announced_via_korea: bool
    #: whether AT&T's route to the prefix changed during the anomaly
    affected: bool
    att_path_before: tuple[int, ...]
    att_path_after: tuple[int, ...]


def replay_all_prefixes() -> list[PrefixFate]:
    """Replay the anomaly for every one of Facebook's ten prefixes.

    The paper observed: "among all ten prefixes announced by Facebook,
    only two prefixes, 69.171.224.0/20 and 69.171.255.0/24, are
    affected.  Using Planetlab based traceroute experiments, we found
    that most of the Facebook front-end web servers are in these two
    prefixes."  The mechanism: only the front-end prefixes were
    announced through the trans-Pacific provider (the Korean ISP), so
    only their announcements ever passed through the AS that stripped
    the padding.  We model exactly that per-prefix announcement policy:
    the two affected prefixes are announced to both providers (padded
    5x), the other eight only to Level3 — and assert the attack touches
    exactly the former.
    """
    graph, _labels = build_facebook_topology()
    engine = PropagationEngine(graph)
    fates: list[PrefixFate] = []
    for prefix in FACEBOOK_PREFIXES:
        via_korea = prefix in AFFECTED_PREFIXES
        prepending = PrependingPolicy()
        prepending.set_padding(AS_FACEBOOK, AS_LEVEL3, FACEBOOK_PADDING)
        if via_korea:
            prepending.set_padding(AS_FACEBOOK, AS_KOREAN_ISP, FACEBOOK_PADDING)
            working_graph = graph
            working_engine = engine
        else:
            # Not announced through Korea at all: model by removing the
            # Facebook-Korea adjacency for this prefix's propagation.
            working_graph = graph.copy()
            working_graph.remove_edge(AS_KOREAN_ISP, AS_FACEBOOK)
            working_engine = PropagationEngine(working_graph)
        result = simulate_interception(
            working_engine,
            victim=AS_FACEBOOK,
            attacker=AS_KOREAN_ISP,
            origin_padding=FACEBOOK_PADDING,
            prefix=prefix,
            keep=ANOMALY_PADDING_SEEN,
            prepending=prepending,
        )
        before = result.baseline.path_of(AS_ATT) or ()
        after = result.attacked.path_of(AS_ATT) or ()
        fates.append(
            PrefixFate(
                prefix=prefix,
                announced_via_korea=via_korea,
                affected=before != after,
                att_path_before=before,
                att_path_after=after,
            )
        )
    return fates


def replay_facebook_anomaly(prefix: str = "69.171.224.0/20") -> FacebookReplay:
    """Replay the anomaly under the "AS9318 stripped two pads" hypothesis.

    Facebook pads every origination with 5 copies; the Korean ISP
    re-announces with only 3 copies (``keep=3``).  The replay asserts
    the paper's observations hold in-engine: AT&T and NTT abandon the
    6-hop Level3 route for the 5-hop route through China Telecom.
    """
    graph, labels = build_facebook_topology()
    engine = PropagationEngine(graph)
    prepending = PrependingPolicy.uniform_origin(AS_FACEBOOK, FACEBOOK_PADDING)
    result = simulate_interception(
        engine,
        victim=AS_FACEBOOK,
        attacker=AS_KOREAN_ISP,
        origin_padding=FACEBOOK_PADDING,
        prefix=prefix,
        keep=ANOMALY_PADDING_SEEN,
        prepending=prepending,
    )
    return FacebookReplay(graph=graph, labels=labels, prefix=prefix, result=result)
