"""Data-plane traceroute simulation (the paper's Table I).

The paper verifies the control-plane anomaly on the data plane with a
traceroute from an AT&T customer to Facebook: the forwarding path
follows the anomalous BGP route through China and Korea, and the RTT
jumps from ~50 ms to ~250 ms at the trans-Pacific hops.  Both signals
are functions of (a) the AS-level forwarding path and (b) where those
ASes are, so we reproduce them with a geography-annotated hop/latency
model:

* each AS is assigned a region; consecutive regions contribute a
  one-way inter-region latency from a small distance matrix;
* each AS expands to 1-3 router hops with a few ms of intra-AS delay;
* hop IPs are synthetic but deterministic per (ASN, hop index), drawn
  from documentation ranges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.aspath import collapse_prepending
from repro.exceptions import SimulationError

__all__ = ["TracerouteHop", "TracerouteSimulator", "DEFAULT_REGION_DELAYS"]

#: One-way inter-region propagation delays in milliseconds.
DEFAULT_REGION_DELAYS: dict[frozenset[str], float] = {
    frozenset({"us"}): 15.0,
    frozenset({"us", "eu"}): 45.0,
    frozenset({"us", "cn"}): 60.0,
    frozenset({"us", "kr"}): 55.0,
    frozenset({"cn", "kr"}): 12.0,
    frozenset({"cn"}): 8.0,
    frozenset({"kr"}): 6.0,
    frozenset({"eu"}): 10.0,
    frozenset({"eu", "cn"}): 90.0,
    frozenset({"eu", "kr"}): 95.0,
}

#: Default delay for region pairs missing from the matrix.
_FALLBACK_INTER_REGION_MS = 60.0
#: Per-router-hop processing/intra-PoP delay.
_INTRA_AS_HOP_MS = 1.5


@dataclass(frozen=True)
class TracerouteHop:
    """One row of a simulated traceroute."""

    index: int
    rtt_ms: float
    ip: str
    asn: int

    def as_row(self) -> tuple[int, str, str, str]:
        """(hop, delay, ip, asn) formatted like the paper's Table I."""
        return (self.index, f"{self.rtt_ms:.0f} ms", self.ip, f"AS{self.asn}")


@dataclass
class TracerouteSimulator:
    """Simulates a traceroute along a control-plane AS path.

    ``regions`` maps ASN -> region code (``"us"``, ``"cn"``, ...);
    unknown ASes default to ``default_region``.
    """

    regions: dict[int, str]
    default_region: str = "us"
    region_delays: dict[frozenset[str], float] = field(
        default_factory=lambda: dict(DEFAULT_REGION_DELAYS)
    )
    #: (min, max) router hops materialised inside each AS
    hops_per_as: tuple[int, int] = (1, 3)
    seed: int = 7

    def _region(self, asn: int) -> str:
        return self.regions.get(asn, self.default_region)

    def _inter_region_ms(self, a: str, b: str) -> float:
        return self.region_delays.get(frozenset({a, b}), _FALLBACK_INTER_REGION_MS)

    @staticmethod
    def _hop_ip(asn: int, hop: int) -> str:
        """Deterministic documentation-range IP for (ASN, hop)."""
        return f"198.51.{asn % 256}.{(asn // 256 + hop) % 250 + 1}"

    def trace(self, source_as: int, path: tuple[int, ...]) -> list[TracerouteHop]:
        """Simulate a traceroute from ``source_as`` along ``path``.

        ``path`` is the AS-PATH the source's network uses (prepending is
        collapsed; the source AS itself is traversed first).  Returns
        the hop list, RTTs cumulative as real traceroute reports them.
        """
        as_sequence = (source_as,) + collapse_prepending(path)
        if len(as_sequence) < 1:
            raise SimulationError("cannot trace an empty path")
        rng = random.Random(f"{self.seed}:{source_as}:{as_sequence}")
        hops: list[TracerouteHop] = []
        one_way_ms = 1.0  # local first hop
        hop_index = 1
        # The customer-side gateway (private address), like Table I row 1.
        hops.append(TracerouteHop(hop_index, 2 * one_way_ms, "192.168.1.1", source_as))
        previous_region = self._region(source_as)
        for asn in as_sequence:
            region = self._region(asn)
            if region != previous_region:
                one_way_ms += self._inter_region_ms(previous_region, region)
                previous_region = region
            for _ in range(rng.randint(*self.hops_per_as)):
                hop_index += 1
                one_way_ms += _INTRA_AS_HOP_MS + rng.uniform(0.0, 1.0)
                hops.append(
                    TracerouteHop(
                        index=hop_index,
                        rtt_ms=2 * one_way_ms,
                        ip=self._hop_ip(asn, hop_index),
                        asn=asn,
                    )
                )
        return hops

    def end_to_end_rtt(self, source_as: int, path: tuple[int, ...]) -> float:
        """RTT of the final hop (the destination)."""
        return self.trace(source_as, path)[-1].rtt_ms
