"""Fault-tolerant supervision over the sweep executor.

:class:`~repro.runner.executor.SweepExecutor` is fast but fragile: one
worker OOM or segfault raises ``BrokenProcessPool`` and discards the
whole batch, a hung task stalls ``pool.map`` forever, and a killed
campaign restarts from zero.  :class:`SupervisedExecutor` wraps the
same spec/worker machinery with a failure model:

* **worker death** — a broken pool is torn down (shared memory
  unlinked), completed futures are harvested, the in-flight tasks are
  charged one attempt each and re-executed on a respawned pool.  Every
  task is a pure function of its descriptor, so recovery is
  bit-identical to a fault-free run.
* **deadlines** — tasks are ``submit()``-ed individually (bounded to a
  small in-flight window so queueing time never counts against the
  deadline) and watched with ``concurrent.futures.wait``; a task that
  outlives :attr:`RetryPolicy.deadline` can only be reclaimed by
  killing the pool, so the supervisor does exactly that, charges the
  hung task, and requeues the innocent bystanders uncharged.
* **bounded retries with backoff** — each failed attempt waits
  ``backoff_base * backoff_factor**(n-1)`` (capped at ``backoff_max``)
  before resubmission; a task that exhausts
  :attr:`RetryPolicy.max_attempts` is quarantined as a structured
  :class:`TaskFailure` in its result slot instead of crashing the run.
* **graceful degradation** — if the pool cannot be built at all, or
  keeps dying without completing anything, the remaining tasks run
  serially in-process (same task objects, same results, no pool).
* **checkpoint/resume** — with a
  :class:`~repro.runner.checkpoint.CheckpointJournal` attached, every
  settled task is journaled as it lands and every journaled success is
  replayed instead of re-executed on the next run.

Supervision telemetry lands on the executor's effective registry:
``runner.retries``, ``runner.pool_restarts``, ``runner.deadline_kills``,
``runner.resumed_tasks``, ``runner.quarantined_tasks`` and
``runner.serial_degradations``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.bgp.engine import PropagationEngine
from repro.exceptions import SimulationError
from repro.runner.cache import BaselineCache
from repro.runner.checkpoint import CheckpointJournal, task_fingerprint
from repro.runner.executor import (
    SweepExecutor,
    _run_task_attempt,
    _run_task_attempt_metered,
    execute_task,
)
from repro.runner.faults import InjectedCrashError
from repro.runner.tasks import WorkerContext, WorkerSpec
from repro.telemetry.metrics import RunMetrics

__all__ = ["RetryPolicy", "SupervisedExecutor", "TaskFailure"]

_UNSET = object()


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor tries before giving up on a task."""

    #: total attempts per task (first execution included).
    max_attempts: int = 3
    #: exponential backoff before the n-th retry:
    #: ``min(backoff_max, backoff_base * backoff_factor**(n-1))``.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: per-task wall-clock deadline in pool mode; ``None`` disables the
    #: watchdog.  Serial in-process execution cannot pre-empt a running
    #: task, so deadlines are only enforced across the pool.
    deadline: float | None = None
    #: consecutive pool losses without a single completed task before
    #: the supervisor degrades to serial in-process execution.
    max_pool_restarts: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise SimulationError("backoff parameters must be non-negative (factor >= 1)")
        if self.deadline is not None and self.deadline <= 0:
            raise SimulationError(f"deadline must be positive, got {self.deadline}")
        if self.max_pool_restarts < 0:
            raise SimulationError("max_pool_restarts must be >= 0")

    def backoff(self, failed_attempts: int) -> float:
        """Delay before resubmitting after ``failed_attempts`` failures."""
        if failed_attempts < 1:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (failed_attempts - 1),
        )


@dataclass(frozen=True)
class TaskFailure:
    """A task quarantined after exhausting its retry budget.

    Occupies the task's slot in the result list so the caller keeps
    positional correspondence with the submitted batch, can tell
    exactly which inputs failed, and decides policy (skip, report,
    re-run) instead of losing the whole campaign to one poisoned task.
    """

    task: Any
    fingerprint: str
    attempts: int
    #: ``"crash"`` (worker death), ``"deadline"`` (killed past the
    #: deadline) or ``"error"`` (the task raised).
    kind: str
    error: str


class _Item:
    """Mutable supervision state for one submitted task."""

    __slots__ = ("index", "task", "fp", "attempt", "not_before", "submitted_at")

    def __init__(self, index: int, task: Any, fp: str) -> None:
        self.index = index
        self.task = task
        self.fp = fp
        self.attempt = 0
        self.not_before = 0.0
        self.submitted_at = 0.0


def _failure_kind(exc: BaseException) -> str:
    return "crash" if isinstance(exc, InjectedCrashError) else "error"


class SupervisedExecutor:
    """A :class:`SweepExecutor` with retries, deadlines and resume.

    Accepts the same construction arguments (spec, workers, adopted
    engine/cache, metrics registry) plus a :class:`RetryPolicy` and an
    optional :class:`CheckpointJournal`.  :meth:`run` preserves task
    order; quarantined tasks yield :class:`TaskFailure` entries in
    their slots.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        workers: int | None = None,
        force_processes: bool = False,
        engine: PropagationEngine | None = None,
        cache: BaselineCache | None = None,
        metrics: RunMetrics | None = None,
        retry: RetryPolicy | None = None,
        journal: CheckpointJournal | None = None,
        fingerprint_context: str | None = None,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal = journal
        #: folded into every task fingerprint (see
        #: :func:`repro.runner.checkpoint.task_fingerprint`) so resumes
        #: never cross run-level configuration boundaries.
        self.fingerprint_context = fingerprint_context
        self._inner = SweepExecutor(
            spec,
            workers=workers,
            force_processes=force_processes,
            engine=engine,
            cache=cache,
            metrics=metrics,
        )
        self._degraded = False
        self._built_pool = False
        self._fallback_ctx: WorkerContext | None = None

    # -- delegation -----------------------------------------------------
    @property
    def spec(self) -> WorkerSpec:
        return self._inner.spec

    @property
    def workers(self) -> int:
        return self._inner.workers

    @property
    def context(self) -> WorkerContext | None:
        return self._inner.context

    @property
    def metrics(self) -> RunMetrics | None:
        return self._inner.metrics

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _record(self, name: str, n: int = 1) -> None:
        registry = self._inner.metrics
        if registry is not None and registry.enabled:
            registry.count(name, n)

    # -- entry point ----------------------------------------------------
    def run(self, tasks: Any) -> list[Any]:
        """Execute ``tasks`` under supervision, in task order."""
        if self._inner.closed:
            raise SimulationError(
                "SupervisedExecutor is closed; build a new executor for "
                "further batches"
            )
        tasks = list(tasks)
        if not tasks:
            return []
        results: list[Any] = [_UNSET] * len(tasks)
        todo: list[_Item] = []
        resumed = 0
        for index, task in enumerate(tasks):
            fp = task_fingerprint(task, self.fingerprint_context)
            if self.journal is not None and self.journal.completed(fp):
                results[index] = self.journal.result_for(fp)
                resumed += 1
                continue
            todo.append(_Item(index, task, fp))
        if resumed:
            self._record("runner.resumed_tasks", resumed)
        if todo:
            if self._inner.workers == 1:
                self._run_serial(todo, results)
            else:
                self._run_pool(todo, results)
        assert all(value is not _UNSET for value in results)
        return results

    # -- settlement -----------------------------------------------------
    def _settle(self, item: _Item, value: Any, results: list[Any]) -> None:
        results[item.index] = value
        if self.journal is not None:
            self.journal.record_success(item.fp, value)

    def _retry_or_quarantine(
        self, item: _Item, results: list[Any], *, kind: str, error: str
    ) -> list[_Item]:
        """Charge ``item`` one failed attempt; requeue it or give up."""
        item.attempt += 1
        if item.attempt >= self.retry.max_attempts:
            failure = TaskFailure(
                task=item.task,
                fingerprint=item.fp,
                attempts=item.attempt,
                kind=kind,
                error=error,
            )
            self._record("runner.quarantined_tasks")
            results[item.index] = failure
            if self.journal is not None:
                self.journal.record_failure(
                    item.fp, kind=kind, attempts=item.attempt, error=error
                )
            return []
        self._record("runner.retries")
        item.not_before = time.monotonic() + self.retry.backoff(item.attempt)
        return [item]

    # -- serial path (workers == 1, and pool degradation) ---------------
    def _run_serial(
        self, items: list[_Item], results: list[Any], ctx: WorkerContext | None = None
    ) -> None:
        if ctx is None:
            ctx = self._inner.context
        assert ctx is not None
        for item in items:
            while True:
                try:
                    value = execute_task(item.task, ctx, "serial", attempt=item.attempt)
                except Exception as exc:
                    requeued = self._retry_or_quarantine(
                        item, results, kind=_failure_kind(exc), error=repr(exc)
                    )
                    if not requeued:
                        break
                    delay = item.not_before - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._settle(item, value, results)
                break

    def _degraded_context(self) -> WorkerContext:
        """In-process fallback context when the pool cannot be rebuilt.

        Built from the original spec (pickled-graph transport — no
        shared memory to manage) and wired to the executor's effective
        registry so its telemetry is not lost.
        """
        if self._fallback_ctx is None:
            self._fallback_ctx = WorkerContext(
                self._inner.spec, metrics=self._inner._pool_metrics
            )
        return self._fallback_ctx

    # -- pool path ------------------------------------------------------
    def _get_pool(self):
        if self._degraded:
            return None
        rebuilding = self._built_pool and self._inner._pool is None
        try:
            pool = self._inner._ensure_pool()
        except Exception:
            # Construction itself failed (no /dev/shm *and* fork
            # unavailable, resource limits, ...): nothing to retry
            # against — degrade.
            self._degraded = True
            return None
        if rebuilding:
            self._record("runner.pool_restarts")
        self._built_pool = True
        return pool

    def _harvest(self, value: Any, metered: bool) -> Any:
        if not metered:
            return value
        result, delta = value
        if self._inner._pool_metrics is not None:
            self._inner._pool_metrics.merge(delta)
        return result

    def _drain_broken(
        self,
        inflight: dict[Future, _Item],
        results: list[Any],
        *,
        charge: bool = True,
    ) -> list[_Item]:
        """Empty ``inflight`` after the pool died: harvest futures that
        finished before the breakage, charge (or just requeue) the rest."""
        metered = self._inner.spec.metrics_enabled
        requeue: list[_Item] = []
        for future, item in list(inflight.items()):
            value: Any = _UNSET
            if future.done() and not future.cancelled():
                try:
                    value = future.result(timeout=0)
                except Exception:
                    value = _UNSET
            if value is not _UNSET:
                self._settle(item, self._harvest(value, metered), results)
            elif charge:
                requeue.extend(
                    self._retry_or_quarantine(
                        item,
                        results,
                        kind="crash",
                        error="worker process died (BrokenProcessPool)",
                    )
                )
            else:
                item.not_before = 0.0
                requeue.append(item)
        inflight.clear()
        return requeue

    def _wait_timeout(
        self, inflight: dict[Future, _Item], pending: list[_Item], now: float
    ) -> float | None:
        """How long to block in ``wait()``: until the nearest deadline
        or backoff expiry, or indefinitely when neither applies."""
        candidates: list[float] = []
        if self.retry.deadline is not None:
            candidates.extend(
                item.submitted_at + self.retry.deadline
                for item in inflight.values()
            )
        candidates.extend(
            item.not_before for item in pending if item.not_before > now
        )
        if not candidates:
            return None
        return max(0.01, min(candidates) - now)

    def _run_pool(self, items: list[_Item], results: list[Any]) -> None:
        pending: list[_Item] = list(items)
        inflight: dict[Future, _Item] = {}
        stalls = 0  # consecutive pool losses without any completed task
        metered = self._inner.spec.metrics_enabled
        entry = _run_task_attempt_metered if metered else _run_task_attempt
        # Bound the in-flight window so a task's deadline clock starts
        # roughly when it starts *running*, not when it joins a long
        # submission queue.
        window = max(2, 2 * self._inner.workers)
        while pending or inflight:
            pool = self._get_pool()
            if pool is None:
                remaining = sorted(
                    pending + list(inflight.values()), key=lambda item: item.index
                )
                inflight.clear()
                self._record("runner.serial_degradations")
                self._run_serial(remaining, results, ctx=self._degraded_context())
                return
            now = time.monotonic()
            broken = False
            held: list[_Item] = []
            for item in pending:
                if broken or len(inflight) >= window or item.not_before > now:
                    held.append(item)
                    continue
                try:
                    future = pool.submit(entry, item.task, item.attempt)
                except BrokenProcessPool:
                    broken = True
                    held.append(item)
                    continue
                item.submitted_at = time.monotonic()
                inflight[future] = item
            pending = held
            if not broken and inflight:
                timeout = self._wait_timeout(inflight, pending, time.monotonic())
                done, _ = wait(
                    list(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                completed = 0
                for future in done:
                    item = inflight.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        broken = True
                        pending.extend(
                            self._retry_or_quarantine(
                                item,
                                results,
                                kind="crash",
                                error="worker process died (BrokenProcessPool)",
                            )
                        )
                        continue
                    except Exception as exc:
                        # The pool made progress even though the task
                        # failed: the worker is alive and accountable.
                        completed += 1
                        pending.extend(
                            self._retry_or_quarantine(
                                item,
                                results,
                                kind=_failure_kind(exc),
                                error=repr(exc),
                            )
                        )
                        continue
                    completed += 1
                    self._settle(item, self._harvest(value, metered), results)
                if completed:
                    stalls = 0
            if broken:
                pending.extend(self._drain_broken(inflight, results))
                self._inner._discard_pool(kill=True)
                stalls += 1
                if stalls > self.retry.max_pool_restarts:
                    self._degraded = True
                continue
            if self.retry.deadline is not None and inflight:
                now = time.monotonic()
                expired = [
                    future
                    for future, item in inflight.items()
                    if now - item.submitted_at > self.retry.deadline
                ]
                if expired:
                    # A hung worker never returns; the only reclamation
                    # is killing the pool.  Charge the hung tasks, let
                    # the innocent in-flight tasks ride again uncharged.
                    self._record("runner.deadline_kills", len(expired))
                    for future in expired:
                        item = inflight.pop(future)
                        pending.extend(
                            self._retry_or_quarantine(
                                item,
                                results,
                                kind="deadline",
                                error=(
                                    f"task exceeded its {self.retry.deadline:.3f}s "
                                    "deadline and its worker was killed"
                                ),
                            )
                        )
                    pending.extend(
                        self._drain_broken(inflight, results, charge=False)
                    )
                    self._inner._discard_pool(kill=True)
                    continue
            if not inflight and pending:
                # Everything left is backing off; sleep until the
                # earliest becomes submittable.
                delay = min(item.not_before for item in pending) - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, self.retry.backoff_max or 0.05))
