"""Shared-memory transport for compiled topologies.

Pool workers used to receive the full :class:`~repro.topology.asgraph.
ASGraph` as a pickled initializer argument — one serialised copy of the
whole topology per worker, re-parsed and re-compiled in each process.
With the compiled backend the parent already holds the topology as flat
CSR buffers (:meth:`~repro.bgp.compiled.CompiledTopology.to_payload`),
so the runner instead publishes that payload once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and ships
workers only the tiny ``(name, size)`` handle; each worker attaches,
copies the buffer out, and rebuilds the arrays at C speed.

The worker copies rather than keeping views into the segment so the
parent retains sole ownership of the mapping lifetime: after the copy
the worker closes its attachment immediately and the parent unlinks the
segment when the executor closes.  Each attachment is also deregistered
from :mod:`multiprocessing.resource_tracker`, which otherwise counts
the segment once per worker and logs spurious leaked-resource warnings
when the parent unlinks it (bpo-38119).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.bgp.compiled import CompiledTopology

__all__ = ["SharedTopologyHandle", "publish_topology", "attach_topology"]


@dataclass(frozen=True)
class SharedTopologyHandle:
    """Pickles in a few dozen bytes; names a published topology payload."""

    name: str
    size: int


def publish_topology(
    topo: CompiledTopology,
) -> tuple[shared_memory.SharedMemory, SharedTopologyHandle]:
    """Publish ``topo``'s payload into a new shared-memory segment.

    Returns the segment (the caller owns it and must ``close()`` and
    ``unlink()`` it when the workers are done) and the handle to ship
    to workers.  Raises ``OSError`` where shared memory is unavailable
    (e.g. no ``/dev/shm``); callers fall back to pickling the graph.
    """
    payload = topo.to_payload()
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment, SharedTopologyHandle(name=segment.name, size=len(payload))


def attach_topology(handle: SharedTopologyHandle) -> CompiledTopology:
    """Rebuild the :class:`CompiledTopology` named by ``handle``.

    Attaches to the segment, copies the payload out, detaches, and
    deregisters the attachment from the resource tracker (the parent,
    not the worker, owns the segment's lifetime).
    """
    segment = shared_memory.SharedMemory(name=handle.name)
    try:
        payload = bytes(segment.buf[: handle.size])
    finally:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API is CPython-internal
            pass
        segment.close()
    return CompiledTopology.from_payload(payload)
