"""Memoisation of converged pre-attack baselines.

Every sweep point and campaign instance first converges the victim's
*no-attack* routing state, then warm-starts the attack from it.  Sweeps
repeat that baseline work constantly: a λ-sweep revisits the same victim
eight times, a figure with two attacker-policy series converges every
baseline twice, and a campaign re-propagates a victim's baseline for
every attacker drawn against it.

:class:`BaselineCache` removes the repetition.  It memoises converged
:class:`~repro.bgp.engine.PropagationOutcome` objects per ``(victim,
prefix, prepending-schedule fingerprint)``, and for the dominant family
of schedules — the victim padding uniformly with ``λ`` copies — it
converges only one *canonical* baseline per victim (``λ = 1``) and
**derives** every other λ from it by rewriting the origin's padded run.

The derivation is exact, not approximate.  Under a uniform-origin
schedule every candidate path towards the victim carries the same
trailing ``λ``-run of the victim's ASN, so switching λ shifts all path
lengths equally: local-preference classes, length comparisons, the
lowest-neighbour tie-break, loop checks and export decisions are all
unchanged, which makes the engine's entire activation trace — and
therefore ``best``, ``adj_rib_in``, ``adoption_round`` and ``rounds`` —
identical up to the padded-run rewrite.  The invariant suite pins this
equivalence on randomized topologies
(``tests/runner/test_baseline_cache.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from repro.bgp.decision import preference_key
from repro.bgp.engine import PropagationEngine, PropagationOutcome
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import DEFAULT_PREFIX, Route
from repro.exceptions import SimulationError
from repro.telemetry.metrics import RunMetrics

__all__ = ["BaselineCache", "derive_uniform_baseline", "derive_uniform_family"]


def _uniform_rewrite_emit(canonical: PropagationOutcome, victim: int, padding: int):
    """The deferred tuple-space derivation for one ``λ = padding``.

    Derived baselines are consumed almost exclusively through their
    compiled state (warm starts, pollution masks), so the tuple maps
    are materialised lazily: this closure runs on first access to the
    derived outcome's ``best``/``adj_rib_in``.
    """

    def emit(out: PropagationOutcome) -> None:
        run = (victim,) * padding
        delta = padding - 1
        prefix = canonical.prefix
        # Carried preference keys just shift in the length component;
        # fall back to recomputing when the canonical outcome doesn't
        # carry them.
        keys = canonical.best_keys
        if keys is None:
            keys = {
                asn: (None if route is None else preference_key(route))
                for asn, route in canonical.best.items()
            }
        best: dict[int, Route | None] = {}
        best_keys: dict[int, tuple[int, int, int] | None] = {}
        for asn, route in canonical.best.items():
            key = keys[asn]
            if route is None:
                best[asn] = None
                best_keys[asn] = None
                continue
            path = route.path
            if not path:
                # The victim's own route has an empty path: nothing to pad.
                best[asn] = route
                best_keys[asn] = key
                continue
            best[asn] = Route(prefix, path[:-1] + run, route.learned_from, route.pref)
            best_keys[asn] = (key[0], key[1] + delta, key[2])
        adj_rib_in = {
            asn: {
                neighbor: (None if offer is None else (offer[0][:-1] + run, offer[1]))
                for neighbor, offer in offers.items()
            }
            for asn, offers in canonical.adj_rib_in.items()
        }
        out._set_materialised(best, adj_rib_in, best_keys)

    return emit


def derive_uniform_baseline(
    canonical: PropagationOutcome, victim: int, padding: int
) -> PropagationOutcome:
    """The converged baseline for uniform origin padding ``λ = padding``,
    derived from the canonical ``λ = 1`` outcome for the same victim.

    Every AS-PATH in a uniform-origin baseline ends with the victim's
    padded run; the derived outcome rewrites that run to ``padding``
    copies and leaves everything else — including the adoption rounds,
    which count propagation hops and are λ-invariant — untouched.  The
    tuple rewrite is deferred (see :func:`_uniform_rewrite_emit`); the
    compiled-state rewrite happens eagerly because warm starts load it
    immediately.
    """
    if canonical.origin != victim:
        raise SimulationError(
            f"canonical baseline originates at AS{canonical.origin}, not AS{victim}"
        )
    if padding < 1:
        raise SimulationError("origin padding must be >= 1")
    if padding == 1:
        return canonical
    outcome = PropagationOutcome(
        prefix=canonical.prefix,
        origin=victim,
        adoption_round=dict(canonical.adoption_round),
        rounds=canonical.rounds,
        emit=_uniform_rewrite_emit(canonical, victim, padding),
    )
    # A compiled canonical outcome begets compiled derived outcomes:
    # the same rewrite in (index, intern-id) space, so warm-starting
    # the attack from this baseline stays on the fast load path.  The
    # rewrite is deferred (:class:`repro.bgp.delta.DerivedUniformState`):
    # a delta-mode engine reads straight through to the canonical
    # arrays and never materialises it; the full-recompute warm loader
    # triggers the old eager derivation on first array access.
    state = canonical.compiled_state
    if state is not None:
        from repro.bgp.delta import DerivedUniformState

        if isinstance(state, DerivedUniformState):  # defensive: never re-derive
            state = state.canonical
        outcome.compiled_state = DerivedUniformState(state, victim, padding)
    return outcome


def derive_uniform_family(
    canonical: PropagationOutcome, victim: int, paddings: Iterable[int]
) -> dict[int, PropagationOutcome]:
    """Derive the baselines for several uniform paddings at once.

    Produces exactly ``{p: derive_uniform_baseline(canonical, victim, p)}``.
    Since the tuple rewrite is deferred per outcome, the family costs
    one compiled-state rewrite per λ up front and nothing in tuple
    space until (unless) a consumer touches a derived outcome's maps.
    """
    if canonical.origin != victim:
        raise SimulationError(
            f"canonical baseline originates at AS{canonical.origin}, not AS{victim}"
        )
    targets = sorted({int(p) for p in paddings})
    if targets and targets[0] < 1:
        raise SimulationError("origin padding must be >= 1")
    outcomes: dict[int, PropagationOutcome] = {}
    for p in targets:
        outcomes[p] = (
            canonical if p == 1 else derive_uniform_baseline(canonical, victim, p)
        )
    return outcomes


class BaselineCache:
    """LRU memo of converged pre-attack baselines for one engine.

    ``max_entries`` bounds the number of retained outcomes (a full-scale
    outcome holds routes and Adj-RIBs-in for every AS, so unbounded
    campaign caches would grow with the victim pool).  Canonical λ=1
    baselines share the same store, so a victim's canonical entry stays
    hot as long as its derived λ variants are in use.

    The cache returns the *same* outcome object to every caller with an
    equal schedule; callers must treat baselines as immutable (the
    engine's warm start already clones before mutating).
    """

    def __init__(
        self,
        engine: PropagationEngine,
        *,
        max_entries: int = 64,
        metrics: RunMetrics | None = None,
    ) -> None:
        if max_entries < 1:
            raise SimulationError("max_entries must be positive")
        self._engine = engine
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple, PropagationOutcome] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.derived = 0
        #: optional telemetry registry mirroring the local counters into
        #: the ``cache.*`` namespace (public and mutable, like
        #: :attr:`PropagationEngine.metrics`).
        self.metrics = metrics

    def _record(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.count(name)

    @property
    def engine(self) -> PropagationEngine:
        return self._engine

    def __len__(self) -> int:
        return len(self._entries)

    def baseline(
        self,
        victim: int,
        *,
        prefix: str = DEFAULT_PREFIX,
        prepending: PrependingPolicy | None = None,
    ) -> PropagationOutcome:
        """The converged no-attack outcome for ``victim`` under
        ``prepending`` — memoised, and derived from the victim's
        canonical baseline whenever the schedule is uniform-origin."""
        prepending = prepending or PrependingPolicy()
        key = (victim, prefix, prepending.fingerprint())
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._record("cache.baseline_hits")
            return cached
        self.misses += 1
        self._record("cache.baseline_misses")
        padding = prepending.uniform_origin_count(victim)
        if padding is None:
            # Arbitrary schedule: converge it directly.
            outcome = self._engine.propagate(victim, prefix=prefix, prepending=prepending)
        else:
            canonical = self._canonical(victim, prefix)
            if padding == 1:
                return canonical  # _canonical already stored it under this key
            outcome = derive_uniform_baseline(canonical, victim, padding)
            self.derived += 1
            self._record("cache.baseline_derivations")
        self._store(key, outcome)
        return outcome

    def prefetch_uniform(
        self,
        victim: int,
        paddings: Iterable[int],
        *,
        prefix: str = DEFAULT_PREFIX,
    ) -> None:
        """Warm the cache for a whole uniform-λ family in one pass.

        A λ-sweep knows every padding it is about to visit; deriving
        them together amortises the walk over the canonical outcome, so
        the per-λ cost drops well below one-at-a-time derivation.
        Already-cached λs are skipped.
        """
        missing = []
        for p in sorted({int(p) for p in paddings}):
            key = (victim, prefix, PrependingPolicy.uniform_origin(victim, p).fingerprint())
            if key not in self._entries:
                missing.append((p, key))
        if not missing:
            return
        canonical = self._canonical(victim, prefix)
        family = derive_uniform_family(canonical, victim, [p for p, _ in missing])
        for p, key in missing:
            if p == 1:
                continue  # _canonical already stored it
            self._store(key, family[p])
            self.misses += 1
            self.derived += 1
            self._record("cache.baseline_misses")
            self._record("cache.baseline_derivations")

    def prefetch_canonical_batch(
        self, victims: Iterable[int], *, prefix: str = DEFAULT_PREFIX
    ) -> int:
        """Converge many victims' canonical λ=1 baselines at once.

        On a vectorized-backend engine the missing victims share one
        CSR frontier walk (a key-matrix column each, via
        :meth:`PropagationEngine.propagate_batch`); other backends fall
        back to the per-victim canonical path.  Grids call this before
        their per-victim uniform-λ warm so a campaign's baselines cost
        one batched walk instead of one convergence per victim.
        Returns the number of baselines converged.
        """
        missing = []
        for v in dict.fromkeys(victims):
            key = (v, prefix, PrependingPolicy().fingerprint())
            if key not in self._entries:
                missing.append((v, key))
        if not missing:
            return 0
        if self._engine.backend != "vectorized" or len(missing) == 1:
            for v, _ in missing:
                self._canonical(v, prefix)
            return len(missing)
        outcomes = self._engine.propagate_batch(
            [v for v, _ in missing], prefix=prefix
        )
        for v, key in missing:
            self._record("cache.canonical_convergences")
            self._record("cache.batched_convergences")
            self._store(key, outcomes[v])
        return len(missing)

    # ------------------------------------------------------------------
    def _canonical(self, victim: int, prefix: str) -> PropagationOutcome:
        """The victim's λ=1 baseline (converged at most once)."""
        key = (victim, prefix, PrependingPolicy().fingerprint())
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            return cached
        outcome = self._engine.propagate(
            victim, prefix=prefix, prepending=PrependingPolicy.uniform_origin(victim, 1)
        )
        self._record("cache.canonical_convergences")
        self._store(key, outcome)
        return outcome

    def _store(self, key: tuple, outcome: PropagationOutcome) -> None:
        self._entries[key] = outcome
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
