"""Task descriptors executed by the sweep runner.

A task is a small frozen dataclass naming one independent propagation
experiment — cheap to pickle to a worker process — plus a ``run``
method that executes it against a :class:`WorkerContext` (the
per-worker engine, baseline cache and detection pipeline).  The same
descriptors drive the in-process serial path, which is what makes the
serial and parallel runners bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.interception import InterceptionResult, simulate_interception
from repro.bgp.collectors import RouteCollector
from repro.bgp.engine import PropagationEngine
from repro.bgp.prepending import PrependingPolicy
from repro.bgp.route import DEFAULT_PREFIX
from repro.detection.alarms import Confidence
from repro.detection.detector import ASPPInterceptionDetector
from repro.detection.timing import DetectionTiming, detection_timing
from repro.exceptions import SimulationError
from repro.runner.cache import BaselineCache
from repro.runner.faults import FaultPlan
from repro.runner.shm import SharedTopologyHandle, attach_topology
from repro.secpol.deployment import (
    POLICIES,
    STRATEGIES,
    SecurityDeployment,
    deployment_ranking,
    make_policy,
    select_deployers,
)
from repro.secpol.policies import SecurityPolicy, padding_registry
from repro.telemetry.metrics import RunMetrics
from repro.topology.asgraph import ASGraph

__all__ = [
    "WorkerSpec",
    "WorkerContext",
    "SweepPointTask",
    "SweepPointResult",
    "DeploymentPointTask",
    "DeploymentPointResult",
    "CampaignPairTask",
]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its execution context.

    The spec is shipped to each worker exactly once (as pool
    initializer arguments).  The topology travels either as a pickled
    :class:`ASGraph` (``graph``) or — the compiled-backend pool path —
    as a :class:`~repro.runner.shm.SharedTopologyHandle` naming a
    shared-memory segment the parent published, so the graph is never
    pickled per worker at all.
    """

    graph: ASGraph | None
    #: monitor fleet for tasks that run detection; ``None`` when the
    #: workload is pure propagation (λ-sweeps).
    monitors: tuple[int, ...] | None = None
    max_activations: int = 50
    cache_entries: int = 64
    #: when True each worker keeps a :class:`RunMetrics` registry wired
    #: into its engine, cache and detection pipeline, and ships a
    #: metrics delta back with every task result.
    metrics_enabled: bool = False
    #: which propagation backend worker engines are built with.
    backend: str = "compiled"
    #: propagation mode for worker engines: ``"full"`` recomputes every
    #: warm start (the oracle), ``"delta"`` re-converges attacks as
    #: copy-on-write overlays over the cached baseline (compiled only).
    engine_mode: str = "full"
    #: shared-memory handle to a published compiled topology; workers
    #: attach to it instead of unpickling ``graph``.
    shared_topology: SharedTopologyHandle | None = None
    #: deterministic fault-injection schedule (chaos testing only);
    #: ``None`` — the default — injects nothing anywhere.
    fault_plan: FaultPlan | None = None


class WorkerContext:
    """Per-worker state: compiled engine, baseline cache, detection."""

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        engine: PropagationEngine | None = None,
        cache: BaselineCache | None = None,
        metrics: RunMetrics | None = None,
        in_pool_worker: bool = False,
    ) -> None:
        # ``metrics`` lets the serial path record straight into the
        # caller's registry; pool workers build their own per-process
        # one from the spec.  When enabled, the context wires the
        # registry into the engine and cache it runs tasks against —
        # callers that *adopt* an existing engine/cache are responsible
        # for restoring the previous attachment afterwards.
        self.metrics = metrics if metrics is not None else RunMetrics(
            enabled=spec.metrics_enabled
        )
        self.faults = spec.fault_plan
        self.in_pool_worker = in_pool_worker
        track = self.metrics.enabled
        if engine is not None:
            self.engine = engine
        elif spec.shared_topology is not None:
            # Pool-worker bootstrap from shared memory: attach, copy,
            # build the engine straight on the compiled arrays.
            topo = attach_topology(spec.shared_topology)
            self.engine = PropagationEngine.from_compiled(
                topo,
                max_activations=spec.max_activations,
                mode=spec.engine_mode,
            )
            if track:
                self.metrics.count("runner.shm.bootstraps")
                self.metrics.count(
                    "runner.shm.attached_bytes", spec.shared_topology.size
                )
        elif spec.graph is not None:
            self.engine = PropagationEngine(
                spec.graph,
                max_activations=spec.max_activations,
                backend=spec.backend,
                mode=spec.engine_mode if spec.backend == "compiled" else "full",
            )
            if track and in_pool_worker:
                # A pool worker rebuilding its engine from a pickled
                # graph means the shared-memory path was not taken.
                self.metrics.count("runner.shm.graph_pickles")
        else:
            raise SimulationError(
                "WorkerSpec carries neither a graph nor a shared topology"
            )
        if cache is not None and cache.engine is not self.engine:
            raise SimulationError("shared cache must belong to this context's engine")
        self.cache = (
            cache
            if cache is not None
            else BaselineCache(self.engine, max_entries=spec.cache_entries)
        )
        if track:
            self.engine.metrics = self.metrics
            self.cache.metrics = self.metrics
        self._monitors = spec.monitors
        self._collector: RouteCollector | None = None
        self._detector: ASPPInterceptionDetector | None = None
        # Security-policy working set, memoised per worker: strategy
        # rankings and padding registries are pure functions of the
        # topology/baseline, so a deployment sweep builds each once and
        # every fraction slices or reuses it.
        self._secpol_rankings: dict[tuple[str, int, int], tuple[int, ...]] = {}
        self._secpol_registries: dict[tuple[int, str, int], dict[int, int]] = {}
        self._secpol_policies: dict[tuple[str, int, str, int], SecurityPolicy] = {}

    @property
    def graph(self) -> ASGraph:
        """The topology (materialised from the compiled arrays when the
        worker was bootstrapped through shared memory)."""
        return self.engine.graph

    @property
    def collector(self) -> RouteCollector:
        if self._collector is None:
            if self._monitors is None:
                raise SimulationError(
                    "this worker was built without a monitor fleet; campaign "
                    "tasks need WorkerSpec.monitors"
                )
            self._collector = RouteCollector(self.graph, self._monitors)
        return self._collector

    @property
    def detector(self) -> ASPPInterceptionDetector:
        if self._detector is None:
            self._detector = ASPPInterceptionDetector(self.graph)
        return self._detector

    # -- security-policy deployment helpers -----------------------------
    def deployment_ranking(
        self, strategy: str, *, victim: int, seed: int = 0
    ) -> tuple[int, ...]:
        """Memoised :func:`repro.secpol.deployment_ranking` over this
        worker's topology."""
        key = (strategy, victim, seed)
        ranking = self._secpol_rankings.get(key)
        if ranking is None:
            ranking = deployment_ranking(
                self.graph, strategy, victim=victim, seed=seed
            )
            self._secpol_rankings[key] = ranking
        return ranking

    def padding_registry_for(
        self, victim: int, *, prefix: str = DEFAULT_PREFIX, padding: int = 1
    ) -> dict[int, int]:
        """Memoised honest-baseline padding registry (PrependGuard)."""
        key = (victim, prefix, padding)
        registry = self._secpol_registries.get(key)
        if registry is None:
            prepending = PrependingPolicy.uniform_origin(victim, padding)
            baseline = self.cache.baseline(
                victim, prefix=prefix, prepending=prepending
            )
            registry = padding_registry(baseline, victim)
            self._secpol_registries[key] = registry
        return registry

    def security_policy(
        self,
        name: str,
        *,
        victim: int,
        prefix: str = DEFAULT_PREFIX,
        padding: int = 1,
    ) -> SecurityPolicy:
        """Memoised policy instance, so the compiled checker's per-path
        verdict memo survives across the sweep's fractions."""
        key = (name, victim, prefix, padding if name == "prependguard" else 0)
        policy = self._secpol_policies.get(key)
        if policy is None:
            registry = (
                self.padding_registry_for(victim, prefix=prefix, padding=padding)
                if name == "prependguard"
                else None
            )
            policy = make_policy(
                name, graph=self.graph, victim=victim, registry=registry
            )
            self._secpol_policies[key] = policy
        return policy


@dataclass(frozen=True)
class SweepPointResult:
    """Impact of one sweep point, compact enough to ship between
    processes without dragging the full routing state along."""

    attacker: int
    victim: int
    padding: int
    before_fraction: float
    after_fraction: float
    attacker_kept_route: bool

    def row(self) -> tuple[int, float, float]:
        """The ``(λ, before%, after%)`` row the figure harnesses plot."""
        return (self.padding, 100 * self.before_fraction, 100 * self.after_fraction)


@dataclass(frozen=True)
class SweepPointTask:
    """One (attacker, victim, λ) interception instance."""

    victim: int
    attacker: int
    padding: int
    violate_policy: bool = False
    strip_mode: str = "origin"
    keep: int = 1
    prefix: str = DEFAULT_PREFIX

    def run(self, ctx: WorkerContext) -> SweepPointResult:
        prepending = PrependingPolicy.uniform_origin(self.victim, self.padding)
        baseline = ctx.cache.baseline(
            self.victim, prefix=self.prefix, prepending=prepending
        )
        result = simulate_interception(
            ctx.engine,
            victim=self.victim,
            attacker=self.attacker,
            origin_padding=self.padding,
            prefix=self.prefix,
            strip_mode=self.strip_mode,
            keep=self.keep,
            violate_policy=self.violate_policy,
            prepending=prepending,
            baseline=baseline,
        )
        return SweepPointResult(
            attacker=self.attacker,
            victim=self.victim,
            padding=self.padding,
            before_fraction=result.report.before_fraction,
            after_fraction=result.report.after_fraction,
            attacker_kept_route=result.attacker_has_route,
        )


@dataclass(frozen=True)
class DeploymentPointResult:
    """Impact of one deployment-sweep point."""

    attacker: int
    victim: int
    padding: int
    policy: str
    strategy: str
    fraction: float
    #: ASes that actually deployed the policy (after exclusions and
    #: rounding; 0 for the "none" policy or a fraction rounding to zero).
    deployed_count: int
    before_fraction: float
    after_fraction: float
    attacker_kept_route: bool

    def row(self) -> tuple[float, float, float]:
        """The ``(deployment fraction, before%, after%)`` figure row."""
        return (self.fraction, 100 * self.before_fraction, 100 * self.after_fraction)


@dataclass(frozen=True)
class DeploymentPointTask:
    """One interception instance under a partial policy deployment.

    The whole security configuration (policy, strategy, fraction, seed)
    lives in frozen fields, so the checkpoint fingerprint covers it by
    construction — a ``--resume`` against a journal written under a
    different secpol setup replays nothing.  ``violate_policy``
    defaults to True (the paper's Figures 11-12 attacker): the
    canonical valley-free attack is exactly the case path-plausibility
    defences cannot see, so the leaking variant is the one that
    separates the policies.
    """

    victim: int
    attacker: int
    padding: int
    policy: str = "none"
    strategy: str = "top-degree-first"
    fraction: float = 0.0
    seed: int = 0
    violate_policy: bool = True
    strip_mode: str = "origin"
    keep: int = 1
    prefix: str = DEFAULT_PREFIX

    def __post_init__(self) -> None:
        if self.policy != "none" and self.policy not in POLICIES:
            raise SimulationError(
                f"unknown security policy {self.policy!r}; expected 'none' "
                f"or one of {POLICIES}"
            )
        if self.strategy not in STRATEGIES:
            raise SimulationError(
                f"unknown deployment strategy {self.strategy!r}; expected "
                f"one of {STRATEGIES}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise SimulationError(
                f"deployment fraction must be in [0, 1], got {self.fraction}"
            )

    def run(self, ctx: WorkerContext) -> DeploymentPointResult:
        prepending = PrependingPolicy.uniform_origin(self.victim, self.padding)
        baseline = ctx.cache.baseline(
            self.victim, prefix=self.prefix, prepending=prepending
        )
        secpol = None
        if self.policy != "none" and self.fraction > 0.0:
            ranking = ctx.deployment_ranking(
                self.strategy, victim=self.victim, seed=self.seed
            )
            deployers = select_deployers(
                ranking, self.fraction, exclude=(self.victim, self.attacker)
            )
            if deployers:
                secpol = SecurityDeployment(
                    ctx.security_policy(
                        self.policy,
                        victim=self.victim,
                        prefix=self.prefix,
                        padding=self.padding,
                    ),
                    deployers,
                )
        result = simulate_interception(
            ctx.engine,
            victim=self.victim,
            attacker=self.attacker,
            origin_padding=self.padding,
            prefix=self.prefix,
            strip_mode=self.strip_mode,
            keep=self.keep,
            violate_policy=self.violate_policy,
            prepending=prepending,
            baseline=baseline,
            secpol=secpol,
        )
        return DeploymentPointResult(
            attacker=self.attacker,
            victim=self.victim,
            padding=self.padding,
            policy=self.policy,
            strategy=self.strategy,
            fraction=self.fraction,
            deployed_count=0 if secpol is None else len(secpol.deployers),
            before_fraction=result.report.before_fraction,
            after_fraction=result.report.after_fraction,
            attacker_kept_route=result.attacker_has_route,
        )


@dataclass(frozen=True)
class CampaignPairTask:
    """One campaign instance: attack plus monitor-fleet detection."""

    attacker: int
    victim: int
    padding: int
    min_confidence: Confidence = Confidence.LOW
    attacker_feeds_collector: bool = field(default=True)

    def run(self, ctx: WorkerContext) -> tuple[InterceptionResult, DetectionTiming]:
        prepending = PrependingPolicy.uniform_origin(self.victim, self.padding)
        baseline = ctx.cache.baseline(self.victim, prepending=prepending)
        result = simulate_interception(
            ctx.engine,
            victim=self.victim,
            attacker=self.attacker,
            origin_padding=self.padding,
            prepending=prepending,
            baseline=baseline,
        )
        timing = detection_timing(
            result,
            ctx.collector,
            ctx.detector,
            min_confidence=self.min_confidence,
            attacker_feeds_collector=self.attacker_feeds_collector,
            metrics=ctx.metrics if ctx.metrics.enabled else None,
        )
        return result, timing
