"""Sharded, store-aware campaign scheduling with work-stealing.

A campaign is a list of pure, fingerprinted tasks; the
:class:`~repro.runner.supervisor.SupervisedExecutor` already makes one
worker pool survive crashes, hangs and restarts.  This module scales
that out *sideways*: :class:`ShardedScheduler` splits the fingerprinted
task space across ``shards`` independent supervised executors (each
with its own worker pool), lets idle shards steal queued work from
busy ones, and keeps the result list bit-identical to the single-pool
path at any shard count — every task is a pure function of its
descriptor, so *where* it runs can never change *what* it returns.

The scheduler is also the store's enforcement point:

* before anything is queued, every fingerprint is looked up in the
  attached :class:`~repro.store.CampaignStore` and hits go straight
  into their result slots — only missing cells are scheduled;
* as chunks complete, fresh results stream back into the store, so a
  concurrent or later campaign never recomputes them.

Supervision composes unchanged: each shard owns a full
``SupervisedExecutor`` (retries, deadlines, pool respawn, serial
degradation), a shared checkpoint journal is serialised behind
:class:`LockedJournal`, and fault plans key on task fingerprints — not
on placement — so seeded chaos runs are shard-count-independent too.

Telemetry lands under ``scheduler.*``: ``scheduler.tasks``,
``scheduler.store_hits``, ``scheduler.executed``, ``scheduler.steals``
and ``scheduler.stolen_tasks``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Sequence

from repro.bgp.engine import PropagationEngine
from repro.exceptions import SimulationError
from repro.runner.cache import BaselineCache
from repro.runner.checkpoint import task_fingerprint
from repro.runner.executor import resolve_workers
from repro.runner.supervisor import RetryPolicy, SupervisedExecutor, TaskFailure
from repro.runner.tasks import WorkerSpec
from repro.telemetry.metrics import RunMetrics

__all__ = ["LockedJournal", "ShardedScheduler"]

_UNSET = object()
#: duck-typed miss sentinel handshake with ``CampaignStore.get`` — the
#: runner layer deliberately does not import :mod:`repro.store`.
_MISS = _UNSET


class LockedJournal:
    """Thread-safe facade over a journal shared by shard executors.

    The journal protocol (``completed`` / ``result_for`` /
    ``record_success`` / ``record_failure``) is consumed concurrently
    by every shard's executor; one lock serialises the underlying
    file-backed implementation, which was written for single-threaded
    runs.  ``close`` stays with the owning caller.
    """

    def __init__(self, journal: Any) -> None:
        self._journal = journal
        self._lock = threading.Lock()

    def completed(self, fingerprint: str) -> bool:
        with self._lock:
            return self._journal.completed(fingerprint)

    def result_for(self, fingerprint: str) -> Any:
        with self._lock:
            return self._journal.result_for(fingerprint)

    def failed(self, fingerprint: str) -> bool:
        with self._lock:
            return self._journal.failed(fingerprint)

    def record_success(self, fingerprint: str, result: Any) -> None:
        with self._lock:
            self._journal.record_success(fingerprint, result)

    def record_failure(
        self, fingerprint: str, *, kind: str, attempts: int, error: str
    ) -> None:
        with self._lock:
            self._journal.record_failure(
                fingerprint, kind=kind, attempts=attempts, error=error
            )

    def close(self) -> None:
        """No-op: the wrapped journal's lifetime stays with its owner."""


class _QueuedTask:
    __slots__ = ("index", "task", "fp")

    def __init__(self, index: int, task: Any, fp: str) -> None:
        self.index = index
        self.task = task
        self.fp = fp


class ShardedScheduler:
    """Fan a fingerprinted task list over store-deduped, stealing shards.

    ``shards=1`` degenerates to exactly the supervised single-pool path
    (optionally adopting a caller ``engine``/``cache`` when serial, as
    the sweep layer does), with the store consult/stream-back layered
    on top.  ``workers`` is the pool size *per shard*
    (``None``/``0``/``1`` = serial in-process shards).

    ``store`` is duck-typed (``get(fp, default)`` / ``put(fp, value)``
    / ``missing``): anything content-addressed by the same task
    fingerprints works.  ``prepare(ctx, tasks)`` is an optional warmup
    hook invoked with the single-shard serial context and the tasks
    that will actually run — the sweep layer uses it to batch-prefetch
    baseline families for *missing* cells only, so a fully warm store
    triggers no engine work at all.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        shards: int = 1,
        workers: int | None = None,
        retry: RetryPolicy | None = None,
        store: Any = None,
        journal: Any = None,
        fingerprint_context: str | None = None,
        metrics: RunMetrics | None = None,
        engine: PropagationEngine | None = None,
        cache: BaselineCache | None = None,
        prepare: Callable[[Any, list[Any]], None] | None = None,
    ) -> None:
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        if engine is not None and (shards != 1 or resolve_workers(workers) != 1):
            raise SimulationError(
                "engine/cache adoption requires shards=1 and serial workers; "
                "sharded and pooled schedulers build their own contexts"
            )
        self.spec = spec
        self.shards = shards
        self.workers = workers
        self.retry = retry
        self.store = store
        self.fingerprint_context = fingerprint_context
        self.metrics = metrics
        self.prepare = prepare
        self._engine = engine
        self._cache = cache
        self._journal = journal
        if journal is not None and shards > 1:
            self._journal = LockedJournal(journal)
        self._lock = threading.Lock()
        self._executors: dict[int, SupervisedExecutor] = {}
        self._shard_metrics: dict[int, RunMetrics] = {}
        self._prev_engine_metrics: Any = _UNSET
        self._prev_cache_metrics: Any = _UNSET
        self._closed = False
        #: counters of the most recent :meth:`run`, for callers without
        #: a metrics registry (tests, CLI summaries).
        self.stats: dict[str, int] = {}

    # -- telemetry ------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        registry = self.metrics
        if registry is not None and registry.enabled and n:
            registry.count(name, n)

    # -- executors ------------------------------------------------------
    def _enabled(self) -> bool:
        return self.metrics is not None and self.metrics.enabled

    def _executor(self, shard: int) -> SupervisedExecutor:
        """Build shard executors lazily: an all-hits run never compiles
        a topology, and only shards that actually receive work pay for
        a context."""
        executor = self._executors.get(shard)
        if executor is not None:
            return executor
        if self.shards == 1:
            registry = self.metrics
            if resolve_workers(self.workers) != 1 and not self._enabled():
                registry = None
            if self._engine is not None and self._prev_engine_metrics is _UNSET:
                self._prev_engine_metrics = self._engine.metrics
                if self._cache is not None:
                    self._prev_cache_metrics = self._cache.metrics
        else:
            registry = None
            if self._enabled():
                registry = self._shard_metrics.setdefault(shard, RunMetrics())
        executor = SupervisedExecutor(
            self.spec,
            workers=self.workers,
            engine=self._engine if self.shards == 1 else None,
            cache=self._cache if self.shards == 1 else None,
            metrics=registry,
            retry=self.retry,
            journal=self._journal,
            fingerprint_context=self.fingerprint_context,
        )
        self._executors[shard] = executor
        return executor

    # -- entry point ----------------------------------------------------
    def run(self, tasks: Sequence[Any]) -> list[Any]:
        """Execute ``tasks``; results in task order, store hits replayed."""
        if self._closed:
            raise SimulationError(
                "ShardedScheduler is closed; build a new scheduler for "
                "further batches"
            )
        tasks = list(tasks)
        results: list[Any] = [_UNSET] * len(tasks)
        todo: list[_QueuedTask] = []
        for index, task in enumerate(tasks):
            fp = task_fingerprint(task, self.fingerprint_context)
            if self.store is not None:
                value = self.store.get(fp, _MISS)
                if value is not _MISS:
                    results[index] = value
                    continue
            todo.append(_QueuedTask(index, task, fp))
        hits = len(tasks) - len(todo)
        self.stats = {
            "tasks": len(tasks),
            "store_hits": hits,
            "executed": len(todo),
            "steals": 0,
            "stolen_tasks": 0,
        }
        self._count("scheduler.tasks", len(tasks))
        self._count("scheduler.store_hits", hits)
        self._count("scheduler.executed", len(todo))
        if todo:
            if self.shards == 1:
                self._run_single(todo, results)
            else:
                self._run_sharded(todo, results)
        assert all(value is not _UNSET for value in results)
        return results

    def _store_completed(self, chunk: list[_QueuedTask], values: list[Any]) -> None:
        for queued, value in zip(chunk, values):
            if self.store is not None and not isinstance(value, TaskFailure):
                self.store.put(queued.fp, value)

    # -- degenerate path: one shard == the plain supervised executor ----
    def _run_single(self, todo: list[_QueuedTask], results: list[Any]) -> None:
        executor = self._executor(0)
        if self.prepare is not None and executor.context is not None:
            self.prepare(executor.context, [queued.task for queued in todo])
        values = executor.run([queued.task for queued in todo])
        for queued, value in zip(todo, values):
            results[queued.index] = value
        self._store_completed(todo, values)

    # -- sharded path ---------------------------------------------------
    def _take(self, queues: list[deque], shard: int) -> list[_QueuedTask]:
        """Drain the shard's own queue, or steal half the longest one.

        Own work comes off in order; a steal takes the *tail* half of
        the most loaded queue (classic work-stealing discipline: the
        owner keeps the head it is about to run).
        """
        with self._lock:
            own = queues[shard]
            if own:
                chunk = list(own)
                own.clear()
                return chunk
            victim = max(range(len(queues)), key=lambda q: len(queues[q]))
            loot = queues[victim]
            if not loot:
                return []
            take = (len(loot) + 1) // 2
            stolen = [loot.pop() for _ in range(take)]
            stolen.reverse()
            self.stats["steals"] += 1
            self.stats["stolen_tasks"] += take
            self._count("scheduler.steals")
            self._count("scheduler.stolen_tasks", take)
            return stolen

    def _run_sharded(self, todo: list[_QueuedTask], results: list[Any]) -> None:
        queues: list[deque] = [deque() for _ in range(self.shards)]
        for position, queued in enumerate(todo):
            queues[position % self.shards].append(queued)
        errors: list[BaseException] = []

        def shard_loop(shard: int) -> None:
            try:
                executor = self._executor(shard)
                while True:
                    chunk = self._take(queues, shard)
                    if not chunk:
                        return
                    values = executor.run([queued.task for queued in chunk])
                    with self._lock:
                        for queued, value in zip(chunk, values):
                            results[queued.index] = value
                        self._store_completed(chunk, values)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                with self._lock:
                    errors.append(exc)

        threads = [
            threading.Thread(
                target=shard_loop, args=(shard,), name=f"repro-shard-{shard}"
            )
            for shard in range(min(self.shards, len(todo)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self._enabled():
            for registry in self._shard_metrics.values():
                self.metrics.merge(registry.take())
        if errors:
            raise errors[0]

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for executor in self._executors.values():
            executor.close()
        if self._prev_engine_metrics is not _UNSET and self._engine is not None:
            self._engine.metrics = self._prev_engine_metrics
        if self._prev_cache_metrics is not _UNSET and self._cache is not None:
            self._cache.metrics = self._prev_cache_metrics

    def __enter__(self) -> "ShardedScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
