"""Process-pool execution of independent sweep tasks.

The executor fans a list of task descriptors (:mod:`repro.runner.tasks`)
out over worker processes.  Each worker receives the
:class:`~repro.runner.tasks.WorkerSpec` exactly once via the pool
initializer — the topology is pickled per *worker*, the propagation
engine is compiled per worker, and every task the worker picks up
shares that worker's :class:`~repro.runner.cache.BaselineCache`.

Results come back in task-submission order (``ProcessPoolExecutor.map``
preserves ordering), and each task is a pure function of its inputs, so
the output of a run is bit-identical regardless of the worker count —
including the ``workers <= 1`` path, which runs the same task objects
in-process against a single shared context without any pool at all.

:class:`SweepExecutor` itself is the *unsupervised* fan-out: a dead
worker surfaces as :class:`~concurrent.futures.process.BrokenProcessPool`
(after unlinking the shared-memory segment so nothing leaks into
``/dev/shm``).  The fault-tolerant layer that respawns the pool,
retries the in-flight tasks and enforces deadlines lives on top of it
in :mod:`repro.runner.supervisor`.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.bgp.compiled import CompiledTopology
from repro.bgp.engine import PropagationEngine
from repro.exceptions import SimulationError
from repro.runner.cache import BaselineCache
from repro.runner.shm import publish_topology
from repro.runner.tasks import WorkerContext, WorkerSpec
from repro.telemetry.metrics import RunMetrics

__all__ = ["SweepExecutor", "available_cpus", "execute_task", "resolve_workers"]


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | None, *, force: bool = False) -> int:
    """Normalise a requested worker count.

    ``None`` and ``0`` mean "serial" (1).  Requests beyond the CPUs the
    scheduler will actually grant are clamped — extra processes on a
    saturated machine only add pickling overhead — unless ``force`` is
    set, which the differential tests use to exercise the real
    multi-process path even on single-CPU hosts.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise SimulationError(f"worker count must be >= 0, got {workers}")
    if workers in (0, 1):
        return 1
    if force:
        return workers
    return min(workers, available_cpus())


#: Shared-memory segments published by live executors.  Normally the
#: owning executor unlinks its segment on :meth:`SweepExecutor.close`;
#: this registry is the backstop for executors abandoned by a crash or
#: an exception between publish and pool construction, so ``/dev/shm``
#: is swept clean when the interpreter exits no matter what.
_LIVE_SEGMENTS: set = set()


def _cleanup_segments() -> None:
    for segment in list(_LIVE_SEGMENTS):
        _LIVE_SEGMENTS.discard(segment)
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - already reaped
            pass


atexit.register(_cleanup_segments)


# Per-process context, built once by the pool initializer.
_CONTEXT: WorkerContext | None = None


def _init_worker(spec: WorkerSpec) -> None:
    global _CONTEXT
    _CONTEXT = WorkerContext(spec, in_pool_worker=True)


def execute_task(
    task: Any, ctx: WorkerContext, worker_label: str = "serial", attempt: int = 0
) -> Any:
    """Run one task against ``ctx``, recording worker-level telemetry.

    ``worker.tasks``/``worker.task_seconds`` are worker-count-invariant
    totals; the per-worker load split goes into the registry's ``info``
    section (keyed by ``worker_label``), which is expected to differ
    between serial and pooled runs.

    When the context carries a :class:`~repro.runner.faults.FaultPlan`,
    the fault scheduled for ``(task, attempt)`` fires *before* the task
    body — so a faulted attempt does no work and records nothing, and
    ``worker.tasks`` counts exactly the attempts that completed.
    """
    if ctx.faults is not None:
        ctx.faults.fire(task, attempt, in_pool_worker=ctx.in_pool_worker)
    metrics = ctx.metrics
    if not metrics.enabled:
        return task.run(ctx)
    start = time.perf_counter()
    result = task.run(ctx)
    metrics.timer_add("worker.task_seconds", time.perf_counter() - start)
    metrics.count("worker.tasks")
    metrics.info_add(f"worker.{worker_label}.tasks")
    return result


def _run_task(task: Any) -> Any:
    assert _CONTEXT is not None, "worker used before initialization"
    return task.run(_CONTEXT)


def _run_task_metered(task: Any) -> Any:
    """Pool entry point when metrics are on: ship the delta with the
    result, so the parent can aggregate per-worker metrics exactly."""
    assert _CONTEXT is not None, "worker used before initialization"
    result = execute_task(task, _CONTEXT, f"pid{os.getpid()}")
    return result, _CONTEXT.metrics.take()


def _run_task_attempt(task: Any, attempt: int) -> Any:
    """Supervised pool entry point: the parent threads the attempt
    number through so deterministic fault plans can key on it."""
    assert _CONTEXT is not None, "worker used before initialization"
    return execute_task(task, _CONTEXT, f"pid{os.getpid()}", attempt=attempt)


def _run_task_attempt_metered(task: Any, attempt: int) -> Any:
    assert _CONTEXT is not None, "worker used before initialization"
    try:
        result = execute_task(task, _CONTEXT, f"pid{os.getpid()}", attempt=attempt)
    except BaseException:
        # Drop the failed attempt's partial recordings so they cannot
        # contaminate the delta shipped with this worker's next result.
        _CONTEXT.metrics.take()
        raise
    return result, _CONTEXT.metrics.take()


class SweepExecutor:
    """Runs task batches, serially in-process or across a process pool.

    With an effective worker count of 1 the executor builds (or adopts,
    via ``engine``/``cache``) a single :class:`WorkerContext` and runs
    tasks inline — no pool, no pickling, but the identical code path
    per task.  With more workers it lazily spins up a
    :class:`~concurrent.futures.ProcessPoolExecutor` whose processes
    each initialise their own context from ``spec``.

    Use as a context manager (or call :meth:`close`) so pool processes
    are reaped; running several batches through one executor reuses
    both the pool and the workers' warm baseline caches.  A closed
    executor is dead: further :meth:`run` calls raise
    :class:`SimulationError` instead of silently respawning a pool
    whose shared-memory segment was already unlinked.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        workers: int | None = None,
        force_processes: bool = False,
        engine: PropagationEngine | None = None,
        cache: BaselineCache | None = None,
        metrics: RunMetrics | None = None,
    ) -> None:
        self.spec = spec
        self.workers = resolve_workers(workers, force=force_processes)
        self._pool: ProcessPoolExecutor | None = None
        self._context: WorkerContext | None = None
        self._pool_metrics: RunMetrics | None = None
        self._shm_segment = None
        self._closed = False
        if self.workers == 1:
            self._context = WorkerContext(
                spec, engine=engine, cache=cache, metrics=metrics
            )
        elif metrics is not None:
            # The caller's registry is the effective pool registry even
            # when the spec itself ships unmetered workers — parent-side
            # events (shm publishes/fallbacks, supervision counters)
            # still land somewhere observable.
            self._pool_metrics = metrics
        elif spec.metrics_enabled:
            self._pool_metrics = RunMetrics()

    @property
    def context(self) -> WorkerContext | None:
        """The in-process context (serial mode only)."""
        return self._context

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def metrics(self) -> RunMetrics | None:
        """The aggregated telemetry registry, or ``None`` when metrics
        are off.  Serially this is the context's (possibly adopted)
        registry; in pool mode it accumulates the per-task deltas the
        workers ship back, merged in task-submission order."""
        if self._context is not None:
            return self._context.metrics if self._context.metrics.enabled else None
        return self._pool_metrics

    def run(self, tasks: Sequence[Any]) -> list[Any]:
        """Execute ``tasks``, returning results in task order."""
        if self._closed:
            raise SimulationError(
                "SweepExecutor is closed; build a new executor for further batches"
            )
        if not tasks:
            return []
        if self._context is not None:
            ctx = self._context
            return [execute_task(task, ctx, "serial") for task in tasks]
        pool = self._ensure_pool()
        chunksize = max(1, len(tasks) // (4 * self.workers))
        metered = self._pool_metrics is not None and self.spec.metrics_enabled
        try:
            if not metered:
                return list(pool.map(_run_task, tasks, chunksize=chunksize))
            results: list[Any] = []
            for result, delta in pool.map(
                _run_task_metered, tasks, chunksize=chunksize
            ):
                self._pool_metrics.merge(delta)
                results.append(result)
            return results
        except BrokenProcessPool:
            # A dead worker orphans the pool; release the shared-memory
            # segment *now* so a respawn (or the caller giving up)
            # cannot leak it into /dev/shm.
            self._discard_pool(kill=True)
            raise

    def map(self, tasks: Iterable[Any]) -> list[Any]:
        return self.run(list(tasks))

    def _pool_spec(self) -> WorkerSpec:
        """The spec actually shipped to pool workers.

        For the compiled backend the parent compiles the topology once,
        publishes the CSR payload into shared memory, and replaces the
        pickled graph with the segment handle — workers bootstrap their
        engines without ever unpickling an :class:`ASGraph`.  If shared
        memory is unavailable (no ``/dev/shm``, permissions, size
        limits) the original graph-pickling spec is used unchanged.
        """
        spec = self.spec
        registry = self._pool_metrics
        if registry is not None and not registry.enabled:
            registry = None
        if spec.backend != "compiled" or spec.graph is None:
            return spec
        if spec.shared_topology is not None:
            return spec
        try:
            topo = CompiledTopology.from_graph(spec.graph)
            self._shm_segment, handle = publish_topology(topo)
        except (OSError, ValueError):
            if registry is not None:
                registry.count("runner.shm.fallbacks")
            return spec
        _LIVE_SEGMENTS.add(self._shm_segment)
        if registry is not None:
            registry.count("runner.shm.publishes")
            registry.count("runner.shm.published_bytes", handle.size)
        return dataclasses.replace(spec, graph=None, shared_topology=handle)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise SimulationError(
                "SweepExecutor is closed; build a new executor for further batches"
            )
        if self._pool is None:
            spec = self._pool_spec()
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(spec,),
                )
            except BaseException:
                # Pool construction failed after the segment was
                # published: unlink it here, because close() may never
                # be reached once this propagates.
                self._release_shm()
                raise
        return self._pool

    def _release_shm(self) -> None:
        segment, self._shm_segment = self._shm_segment, None
        if segment is None:
            return
        _LIVE_SEGMENTS.discard(segment)
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass

    def _discard_pool(self, *, kill: bool = False) -> None:
        """Tear down the current pool (if any) and its shm segment.

        ``kill`` hard-terminates worker processes first — the only way
        to reclaim a worker stuck in a hung task — and skips waiting on
        them during shutdown.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            if kill:
                for proc in list(getattr(pool, "_processes", {}).values() or []):
                    try:
                        proc.kill()
                    except Exception:  # pragma: no cover - already dead
                        pass
            try:
                pool.shutdown(wait=not kill, cancel_futures=kill)
            except Exception:  # pragma: no cover - broken pool teardown
                pass
        self._release_shm()

    def close(self) -> None:
        self._closed = True
        self._discard_pool()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
