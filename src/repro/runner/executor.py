"""Process-pool execution of independent sweep tasks.

The executor fans a list of task descriptors (:mod:`repro.runner.tasks`)
out over worker processes.  Each worker receives the
:class:`~repro.runner.tasks.WorkerSpec` exactly once via the pool
initializer — the topology is pickled per *worker*, the propagation
engine is compiled per worker, and every task the worker picks up
shares that worker's :class:`~repro.runner.cache.BaselineCache`.

Results come back in task-submission order (``ProcessPoolExecutor.map``
preserves ordering), and each task is a pure function of its inputs, so
the output of a run is bit-identical regardless of the worker count —
including the ``workers <= 1`` path, which runs the same task objects
in-process against a single shared context without any pool at all.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.bgp.compiled import CompiledTopology
from repro.bgp.engine import PropagationEngine
from repro.exceptions import SimulationError
from repro.runner.shm import publish_topology
from repro.runner.tasks import WorkerContext, WorkerSpec
from repro.telemetry.metrics import RunMetrics

__all__ = ["SweepExecutor", "available_cpus", "execute_task", "resolve_workers"]


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | None, *, force: bool = False) -> int:
    """Normalise a requested worker count.

    ``None`` and ``0`` mean "serial" (1).  Requests beyond the CPUs the
    scheduler will actually grant are clamped — extra processes on a
    saturated machine only add pickling overhead — unless ``force`` is
    set, which the differential tests use to exercise the real
    multi-process path even on single-CPU hosts.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise SimulationError(f"worker count must be >= 0, got {workers}")
    if workers in (0, 1):
        return 1
    if force:
        return workers
    return min(workers, available_cpus())


# Per-process context, built once by the pool initializer.
_CONTEXT: WorkerContext | None = None


def _init_worker(spec: WorkerSpec) -> None:
    global _CONTEXT
    _CONTEXT = WorkerContext(spec, in_pool_worker=True)


def execute_task(task: Any, ctx: WorkerContext, worker_label: str = "serial") -> Any:
    """Run one task against ``ctx``, recording worker-level telemetry.

    ``worker.tasks``/``worker.task_seconds`` are worker-count-invariant
    totals; the per-worker load split goes into the registry's ``info``
    section (keyed by ``worker_label``), which is expected to differ
    between serial and pooled runs.
    """
    metrics = ctx.metrics
    if not metrics.enabled:
        return task.run(ctx)
    start = time.perf_counter()
    result = task.run(ctx)
    metrics.timer_add("worker.task_seconds", time.perf_counter() - start)
    metrics.count("worker.tasks")
    metrics.info_add(f"worker.{worker_label}.tasks")
    return result


def _run_task(task: Any) -> Any:
    assert _CONTEXT is not None, "worker used before initialization"
    return task.run(_CONTEXT)


def _run_task_metered(task: Any) -> Any:
    """Pool entry point when metrics are on: ship the delta with the
    result, so the parent can aggregate per-worker metrics exactly."""
    assert _CONTEXT is not None, "worker used before initialization"
    result = execute_task(task, _CONTEXT, f"pid{os.getpid()}")
    return result, _CONTEXT.metrics.take()


class SweepExecutor:
    """Runs task batches, serially in-process or across a process pool.

    With an effective worker count of 1 the executor builds (or adopts,
    via ``engine``) a single :class:`WorkerContext` and runs tasks
    inline — no pool, no pickling, but the identical code path per
    task.  With more workers it lazily spins up a
    :class:`~concurrent.futures.ProcessPoolExecutor` whose processes
    each initialise their own context from ``spec``.

    Use as a context manager (or call :meth:`close`) so pool processes
    are reaped; running several batches through one executor reuses
    both the pool and the workers' warm baseline caches.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        workers: int | None = None,
        force_processes: bool = False,
        engine: PropagationEngine | None = None,
        metrics: RunMetrics | None = None,
    ) -> None:
        self.spec = spec
        self.workers = resolve_workers(workers, force=force_processes)
        self._pool: ProcessPoolExecutor | None = None
        self._context: WorkerContext | None = None
        self._pool_metrics: RunMetrics | None = None
        self._shm_segment = None
        if self.workers == 1:
            self._context = WorkerContext(spec, engine=engine, metrics=metrics)
        elif spec.metrics_enabled:
            self._pool_metrics = metrics if metrics is not None else RunMetrics()

    @property
    def context(self) -> WorkerContext | None:
        """The in-process context (serial mode only)."""
        return self._context

    @property
    def metrics(self) -> RunMetrics | None:
        """The aggregated telemetry registry, or ``None`` when metrics
        are off.  Serially this is the context's (possibly adopted)
        registry; in pool mode it accumulates the per-task deltas the
        workers ship back, merged in task-submission order."""
        if self._context is not None:
            return self._context.metrics if self._context.metrics.enabled else None
        return self._pool_metrics

    def run(self, tasks: Sequence[Any]) -> list[Any]:
        """Execute ``tasks``, returning results in task order."""
        if not tasks:
            return []
        if self._context is not None:
            ctx = self._context
            return [execute_task(task, ctx, "serial") for task in tasks]
        pool = self._ensure_pool()
        chunksize = max(1, len(tasks) // (4 * self.workers))
        if self._pool_metrics is None:
            return list(pool.map(_run_task, tasks, chunksize=chunksize))
        results: list[Any] = []
        for result, delta in pool.map(_run_task_metered, tasks, chunksize=chunksize):
            self._pool_metrics.merge(delta)
            results.append(result)
        return results

    def map(self, tasks: Iterable[Any]) -> list[Any]:
        return self.run(list(tasks))

    def _pool_spec(self) -> WorkerSpec:
        """The spec actually shipped to pool workers.

        For the compiled backend the parent compiles the topology once,
        publishes the CSR payload into shared memory, and replaces the
        pickled graph with the segment handle — workers bootstrap their
        engines without ever unpickling an :class:`ASGraph`.  If shared
        memory is unavailable (no ``/dev/shm``, permissions, size
        limits) the original graph-pickling spec is used unchanged.
        """
        spec = self.spec
        if spec.backend != "compiled" or spec.graph is None:
            return spec
        if spec.shared_topology is not None:
            return spec
        try:
            topo = CompiledTopology.from_graph(spec.graph)
            self._shm_segment, handle = publish_topology(topo)
        except (OSError, ValueError):
            if self._pool_metrics is not None:
                self._pool_metrics.count("runner.shm.fallbacks")
            return spec
        if self._pool_metrics is not None:
            self._pool_metrics.count("runner.shm.publishes")
            self._pool_metrics.count("runner.shm.published_bytes", handle.size)
        return dataclasses.replace(spec, graph=None, shared_topology=handle)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._pool_spec(),),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shm_segment is not None:
            segment, self._shm_segment = self._shm_segment, None
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
