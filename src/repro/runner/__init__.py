"""Sweep runner: baseline caching, process-pool fan-out, supervision.

Sweeps and campaigns are embarrassingly parallel — every (attacker,
victim, λ) point is an independent propagation — and embarrassingly
repetitive — every point re-converges a pre-attack baseline some other
point already computed.  This package attacks both: a
:class:`BaselineCache` memoises converged baselines (deriving the whole
uniform-λ family from one canonical run per victim), and a
:class:`SweepExecutor` fans task batches out over worker processes,
shipping the topology once per worker and keeping results bit-identical
to the serial path regardless of worker count.

Long campaigns additionally get a failure model:
:class:`SupervisedExecutor` layers bounded retries with exponential
backoff, per-task deadlines, pool respawn after worker death, serial
degradation, and checkpoint/resume through a
:class:`CheckpointJournal` on top of the same task machinery, with a
deterministic :class:`FaultPlan` harness (:mod:`repro.runner.faults`)
so every recovery path is exercised in CI.

:class:`ShardedScheduler` (:mod:`repro.runner.scheduler`) scales the
supervised path sideways: the fingerprinted task space splits across
shard-local executors with work-stealing between them, consults a
content-addressed :class:`~repro.store.CampaignStore` so only missing
cells run, and streams completed records back — bit-identical to the
single-pool path at any shard count.
"""

from repro.runner.cache import (
    BaselineCache,
    derive_uniform_baseline,
    derive_uniform_family,
)
from repro.runner.checkpoint import CheckpointJournal, task_fingerprint
from repro.runner.executor import (
    SweepExecutor,
    available_cpus,
    execute_task,
    resolve_workers,
)
from repro.runner.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedFaultError,
)
from repro.runner.sampling import sample_attack_pairs
from repro.runner.scheduler import LockedJournal, ShardedScheduler
from repro.runner.shm import (
    SharedTopologyHandle,
    attach_topology,
    publish_topology,
)
from repro.runner.supervisor import RetryPolicy, SupervisedExecutor, TaskFailure
from repro.runner.tasks import (
    CampaignPairTask,
    DeploymentPointResult,
    DeploymentPointTask,
    SweepPointResult,
    SweepPointTask,
    WorkerContext,
    WorkerSpec,
)

__all__ = [
    "BaselineCache",
    "CampaignPairTask",
    "CheckpointJournal",
    "DeploymentPointResult",
    "DeploymentPointTask",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedFaultError",
    "LockedJournal",
    "RetryPolicy",
    "SharedTopologyHandle",
    "ShardedScheduler",
    "SupervisedExecutor",
    "SweepExecutor",
    "SweepPointResult",
    "SweepPointTask",
    "TaskFailure",
    "WorkerContext",
    "WorkerSpec",
    "attach_topology",
    "available_cpus",
    "publish_topology",
    "derive_uniform_baseline",
    "derive_uniform_family",
    "execute_task",
    "resolve_workers",
    "sample_attack_pairs",
    "task_fingerprint",
]
