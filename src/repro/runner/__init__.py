"""Sweep runner: baseline caching plus process-pool fan-out.

Sweeps and campaigns are embarrassingly parallel — every (attacker,
victim, λ) point is an independent propagation — and embarrassingly
repetitive — every point re-converges a pre-attack baseline some other
point already computed.  This package attacks both: a
:class:`BaselineCache` memoises converged baselines (deriving the whole
uniform-λ family from one canonical run per victim), and a
:class:`SweepExecutor` fans task batches out over worker processes,
shipping the topology once per worker and keeping results bit-identical
to the serial path regardless of worker count.
"""

from repro.runner.cache import (
    BaselineCache,
    derive_uniform_baseline,
    derive_uniform_family,
)
from repro.runner.executor import (
    SweepExecutor,
    available_cpus,
    execute_task,
    resolve_workers,
)
from repro.runner.sampling import sample_attack_pairs
from repro.runner.shm import (
    SharedTopologyHandle,
    attach_topology,
    publish_topology,
)
from repro.runner.tasks import (
    CampaignPairTask,
    SweepPointResult,
    SweepPointTask,
    WorkerContext,
    WorkerSpec,
)

__all__ = [
    "BaselineCache",
    "CampaignPairTask",
    "SharedTopologyHandle",
    "SweepExecutor",
    "SweepPointResult",
    "SweepPointTask",
    "WorkerContext",
    "WorkerSpec",
    "attach_topology",
    "available_cpus",
    "publish_topology",
    "derive_uniform_baseline",
    "derive_uniform_family",
    "execute_task",
    "resolve_workers",
    "sample_attack_pairs",
]
