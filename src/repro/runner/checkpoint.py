"""Crash-safe checkpoint journal for sweep and campaign runs.

Long campaigns die for boring reasons — OOM killers, pre-empted cloud
hosts, Ctrl-C — and restarting from zero throws away hours of converged
propagations.  Every runner task is a pure function of its descriptor,
so a completed task never needs to be re-run: this module gives each
task a deterministic *fingerprint* (a digest of its type and frozen
fields) and appends one JSONL record per finished task to a journal
file as results land.  A later run pointed at the same journal skips
every fingerprint already recorded as successful and replays its stored
result instead — bit-identical to having computed it, because the
stored payload is the pickled result object itself.

The journal is append-only and flushed per record, so a crash can lose
at most the record being written; :meth:`CheckpointJournal._load`
tolerates a truncated or garbled final line by simply ignoring
undecodable records.  Failure records (quarantined tasks) are kept for
the post-mortem but are *not* treated as completed — a resumed run
retries them from scratch.

The payload encoding is pickle (base64-armoured inside the JSON
record).  Journals are therefore private artefacts of the machine that
wrote them — treat them like any other pickle: do not load journals
from untrusted sources.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CheckpointJournal", "task_fingerprint"]


def task_fingerprint(task: Any, context: str | None = None) -> str:
    """Deterministic identity of a task descriptor.

    Tasks are frozen dataclasses, so their ``repr`` enumerates every
    field in declaration order; hashing it together with the qualified
    type name yields a stable fingerprint across processes and runs
    (no ``PYTHONHASHSEED`` dependence) that changes whenever any input
    of the task changes.  Security-policy sweeps put the whole
    deployment configuration (policy, strategy, fraction, seed) in the
    task's frozen fields, so it is fingerprinted by construction.

    ``context`` folds run-level configuration that lives *outside* the
    task descriptor (an engine-level policy object, a custom world
    build) into the digest, so ``--resume`` can never replay a
    journaled result computed under a different setup that happened to
    share the same task fields.
    """
    identity = f"{type(task).__module__}.{type(task).__qualname__}|{task!r}"
    if context:
        identity += f"|ctx:{context}"
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def _encode_payload(result: Any) -> str:
    raw = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(raw).decode("ascii")


def _decode_payload(payload: str) -> Any:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


class CheckpointJournal:
    """Append-only JSONL journal keyed by task fingerprints.

    Constructing a journal loads any records already at ``path`` (a
    missing file starts empty);  :meth:`record_success` /
    :meth:`record_failure` append-and-flush one record each.  Use
    :meth:`completed` + :meth:`result_for` to skip finished work.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: fingerprint -> last record seen for it
        self._records: dict[str, dict[str, Any]] = {}
        self._handle = None
        if self.path.exists():
            self._load()

    # -- reading --------------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one truncated
                    # line; everything before it is intact.
                    continue
                if not isinstance(record, dict) or "fp" not in record:
                    continue
                self._records[str(record["fp"])] = record

    def completed(self, fingerprint: str) -> bool:
        """True when ``fingerprint`` has a replayable success record."""
        record = self._records.get(fingerprint)
        return (
            record is not None
            and record.get("status") == "ok"
            and "payload" in record
        )

    def result_for(self, fingerprint: str) -> Any:
        """The journaled result for a :meth:`completed` fingerprint."""
        record = self._records[fingerprint]
        return _decode_payload(record["payload"])

    def failed(self, fingerprint: str) -> bool:
        record = self._records.get(fingerprint)
        return record is not None and record.get("status") == "failed"

    @property
    def completed_count(self) -> int:
        return sum(1 for fp in self._records if self.completed(fp))

    def __len__(self) -> int:
        return len(self._records)

    def successes(self) -> Iterator[tuple[str, Any]]:
        """``(fingerprint, decoded result)`` for every success record.

        This is the export surface :func:`repro.store.import_journal`
        uses to lift a legacy journal into the campaign store.
        """
        for fingerprint in self._records:
            if self.completed(fingerprint):
                yield fingerprint, self.result_for(fingerprint)

    # -- writing --------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._records[record["fp"]] = record

    def record_success(self, fingerprint: str, result: Any) -> None:
        self._append(
            {"fp": fingerprint, "status": "ok", "payload": _encode_payload(result)}
        )

    def record_failure(
        self, fingerprint: str, *, kind: str, attempts: int, error: str
    ) -> None:
        self._append(
            {
                "fp": fingerprint,
                "status": "failed",
                "kind": kind,
                "attempts": attempts,
                "error": error,
            }
        )

    # -- maintenance ----------------------------------------------------
    def compact(self) -> int:
        """Rewrite the journal to one record per fingerprint.

        A long-lived journal accretes superseded records (a failure
        later overwritten by a success keeps both lines) and the odd
        truncated line from a crash.  The in-memory map is already the
        last-record-wins truth, so compaction just serialises it back:
        into a temp file, fsynced, then atomically ``os.replace``-d over
        the original — a crash mid-compaction leaves the old journal
        intact.  Returns the number of raw lines dropped.
        """
        self.close()
        if not self.path.exists():
            return 0
        with open(self.path, "r", encoding="utf-8") as handle:
            raw_lines = sum(1 for line in handle if line.strip())
        tmp = self.path.with_name(f"{self.path.name}.compact.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in self._records.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return raw_lines - len(self._records)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
