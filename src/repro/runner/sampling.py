"""Deterministic attacker/victim pair sampling with bounded retries.

The seed implementation of both :meth:`InterceptionStudy.campaign` and
``experiments.base.sample_attack_pairs`` drew ``(attacker, victim)``
pairs in an unbounded loop, retrying whenever the two draws collided —
which spins forever when the pools only ever produce ``attacker ==
victim`` (e.g. identical single-AS pools).  This module keeps the exact
draw sequence (so seeded experiments reproduce bit-for-bit) but bounds
the retries and fails with a diagnosable :class:`ExperimentError`.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.exceptions import ExperimentError

__all__ = ["sample_attack_pairs"]


def sample_attack_pairs(
    attackers: Sequence[int],
    victims: Sequence[int],
    count: int,
    rng: random.Random,
    *,
    max_attempts: int | None = None,
) -> list[tuple[int, int]]:
    """Sample ``count`` pairs with ``attacker != victim``.

    Draws ``rng.choice(attackers)`` then ``rng.choice(victims)`` per
    attempt — the same consumption pattern (and therefore the same
    pairs for a given seed) as the original unbounded loops.  Raises
    :class:`ExperimentError` immediately when no distinct pair can ever
    be drawn, and after ``max_attempts`` draws (default: 1000 plus 100
    per requested pair) when collisions starve the sampler.
    """
    if count < 1:
        raise ExperimentError("at least one attacker/victim pair is required")
    if not attackers or not victims:
        raise ExperimentError("attack-pair pools are too small")
    if set(attackers) == set(victims) and len(set(attackers)) == 1:
        only = next(iter(set(attackers)))
        raise ExperimentError(
            f"cannot sample attacker/victim pairs: both pools contain only "
            f"AS{only}, so every draw yields attacker == victim"
        )
    if max_attempts is None:
        max_attempts = 1000 + 100 * count
    pairs: list[tuple[int, int]] = []
    attempts = 0
    while len(pairs) < count:
        attempts += 1
        if attempts > max_attempts:
            raise ExperimentError(
                f"gave up sampling attacker/victim pairs after {max_attempts} "
                f"draws ({len(pairs)}/{count} found); the pools overlap so "
                f"heavily that distinct pairs are vanishingly rare"
            )
        attacker = rng.choice(attackers)
        victim = rng.choice(victims)
        if attacker != victim:
            pairs.append((attacker, victim))
    return pairs
