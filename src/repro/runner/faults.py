"""Deterministic fault injection for the supervised runner.

Recovery code that only runs when a worker happens to segfault is
recovery code that never runs in CI.  This module makes every failure
mode the supervisor handles *schedulable*: a :class:`FaultPlan` maps
task fingerprints to scripted :class:`FaultSpec` actions — crash the
worker process outright, hang past the deadline, or raise — keyed by
the task's *attempt number*, which the supervisor threads into every
(re-)execution.  Because the plan is an immutable value shipped to
workers inside the :class:`~repro.runner.tasks.WorkerSpec`, and the
attempt counter is supplied by the parent, the same plan produces the
same faults on every run regardless of worker count, scheduling, or
which process a retry lands on.

A fault fires *before* the task body runs, so a faulted attempt does no
propagation work and records no telemetry; the eventual successful
attempt is indistinguishable from a fault-free execution — which is
what lets the chaos suite assert bit-identical results under injected
crashes.

Crash semantics depend on where the task executes: in a pool worker the
fault calls ``os._exit`` (the real thing — the parent sees
``BrokenProcessPool``), while in-process execution raises
:class:`InjectedCrashError` instead, since taking down the caller's
interpreter would be a little too deterministic.
"""

from __future__ import annotations

import os
import random
import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ReproError
from repro.runner.checkpoint import task_fingerprint

__all__ = [
    "FAULT_MODES",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedFaultError",
]

#: Exit code used for injected worker crashes (grep-able in CI logs).
CRASH_EXIT_CODE = 86

FAULT_MODES = ("crash", "hang", "raise")


class InjectedFaultError(ReproError):
    """An injected task failure (the ``raise`` fault mode)."""


class InjectedCrashError(InjectedFaultError):
    """An injected worker crash, softened to an exception in-process."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: what happens, and on which attempts."""

    mode: str
    #: attempt numbers (0-based) on which the fault fires; retries past
    #: the last scripted attempt run clean, so a task with
    #: ``attempts=(0,)`` fails once and then succeeds.
    attempts: tuple[int, ...] = (0,)
    #: sleep length for ``hang`` faults — pick it well past the
    #: supervisor's deadline so the kill path, not the sleep, ends it.
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {FAULT_MODES}"
            )
        object.__setattr__(
            self, "attempts", tuple(sorted({int(a) for a in self.attempts}))
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, keyed by task fingerprint."""

    rules: Mapping[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", dict(self.rules))

    def __len__(self) -> int:
        return len(self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    # -- construction ---------------------------------------------------
    @classmethod
    def for_tasks(cls, assignments: Mapping[Any, FaultSpec]) -> "FaultPlan":
        """Build a plan from explicit ``{task: FaultSpec}`` assignments."""
        return cls(
            {task_fingerprint(task): spec for task, spec in assignments.items()}
        )

    @classmethod
    def seeded(
        cls,
        tasks: Iterable[Any],
        *,
        seed: int,
        rate: float = 0.25,
        modes: Sequence[str] = ("crash", "raise"),
        max_faulty_attempts: int = 2,
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Draw a reproducible plan over ``tasks``.

        Each task independently faults with probability ``rate``; a
        faulty task gets a mode drawn from ``modes`` and between 1 and
        ``max_faulty_attempts`` consecutive failing attempts starting
        at attempt 0.  Keep ``max_faulty_attempts`` below the retry
        policy's ``max_attempts`` if the run is expected to converge.
        The draw depends only on ``seed`` and the task list, never on
        scheduling.  ``hang`` is deliberately absent from the default
        modes: it only converges under a deadline-enforcing policy.
        """
        for mode in modes:
            if mode not in FAULT_MODES:
                raise ValueError(f"unknown fault mode {mode!r}")
        rng = random.Random(seed)
        rules: dict[str, FaultSpec] = {}
        for task in tasks:
            if rng.random() >= rate:
                continue
            mode = modes[rng.randrange(len(modes))]
            failures = rng.randint(1, max(1, max_faulty_attempts))
            rules[task_fingerprint(task)] = FaultSpec(
                mode=mode,
                attempts=tuple(range(failures)),
                hang_seconds=hang_seconds,
            )
        return cls(rules)

    # -- execution ------------------------------------------------------
    def spec_for(self, task: Any, attempt: int) -> FaultSpec | None:
        """The fault scheduled for this task attempt, if any."""
        spec = self.rules.get(task_fingerprint(task))
        if spec is not None and attempt in spec.attempts:
            return spec
        return None

    def fire(self, task: Any, attempt: int, *, in_pool_worker: bool) -> None:
        """Perform the scheduled fault for ``(task, attempt)``, if any."""
        spec = self.spec_for(task, attempt)
        if spec is None:
            return
        label = f"{type(task).__name__} attempt {attempt}"
        if spec.mode == "hang":
            time.sleep(spec.hang_seconds)
            return
        if spec.mode == "crash":
            if in_pool_worker:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrashError(f"injected worker crash for {label}")
        raise InjectedFaultError(f"injected failure for {label}")
