"""Structural statistics of AS topologies.

Used to sanity-check generated topologies against the gross properties
of the inferred Internet graph (heavy-tailed degrees, small transit
core, large stub fringe) and by the experiment harness to report the
substrate each figure ran on.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship
from repro.topology.tiers import classify_tiers

__all__ = [
    "TopologySummary",
    "degree_histogram",
    "powerlaw_exponent",
    "summarize",
    "average_path_length",
]


@dataclass(frozen=True)
class TopologySummary:
    """Gross structural statistics of a topology."""

    num_ases: int
    num_edges: int
    num_p2c: int
    num_p2p: int
    num_s2s: int
    num_stubs: int
    max_degree: int
    mean_degree: float
    tier_counts: dict[int, int]
    powerlaw_exponent: float

    def as_rows(self) -> list[tuple[str, object]]:
        """Key/value rows for table rendering."""
        rows: list[tuple[str, object]] = [
            ("ASes", self.num_ases),
            ("links", self.num_edges),
            ("p2c links", self.num_p2c),
            ("p2p links", self.num_p2p),
            ("sibling links", self.num_s2s),
            ("stub ASes", self.num_stubs),
            ("max degree", self.max_degree),
            ("mean degree", round(self.mean_degree, 2)),
            ("degree power-law alpha", round(self.powerlaw_exponent, 2)),
        ]
        for tier in sorted(self.tier_counts):
            rows.append((f"tier-{tier} ASes", self.tier_counts[tier]))
        return rows


def degree_histogram(graph: ASGraph) -> dict[int, int]:
    """Map ``degree -> number of ASes with that degree``."""
    counts = Counter(graph.degree(asn) for asn in graph)
    return dict(sorted(counts.items()))


def powerlaw_exponent(graph: ASGraph) -> float:
    """Maximum-likelihood (Clauset-style, xmin=1) power-law exponent.

    ``alpha = 1 + n / sum(ln(degree))`` over degrees >= 1.  Returns
    ``nan`` for degenerate graphs.  Real AS graphs sit around 2.1; our
    generator should land in the 1.5-3 range.
    """
    degrees = [graph.degree(asn) for asn in graph if graph.degree(asn) >= 1]
    if not degrees:
        return float("nan")
    log_sum = sum(math.log(d) for d in degrees)
    if log_sum <= 0:
        return float("inf")
    return 1.0 + len(degrees) / log_sum


def average_path_length(
    graph: ASGraph,
    *,
    samples: int = 25,
    rng,
) -> float:
    """Mean selected AS-path length over sampled origins.

    The paper calibrates its λ sweeps against this statistic ("We
    choose 3 ASNs to pad because it is half of the average AS path
    length"); the experiment index uses it to justify the same choice
    on generated worlds.  Paths are measured as the number of ASes a
    route traverses (selected best routes of every AS towards each
    sampled origin, prepending-free origins).
    """
    # Imported here: stats must stay importable without the engine.
    from repro.bgp.engine import PropagationEngine

    engine = PropagationEngine(graph)
    origins = rng.sample(graph.ases, min(samples, len(graph)))
    total = 0
    count = 0
    for origin in origins:
        outcome = engine.propagate(origin)
        for asn, route in outcome.best.items():
            if asn == origin or route is None:
                continue
            total += len(route.path) + 1  # include the holder itself
            count += 1
    return total / count if count else 0.0


def summarize(graph: ASGraph) -> TopologySummary:
    """Compute a :class:`TopologySummary` for ``graph``."""
    num_p2c = num_p2p = num_s2s = 0
    for _, _, role in graph.edges():
        if role is Relationship.CUSTOMER:
            num_p2c += 1
        elif role is Relationship.PEER:
            num_p2p += 1
        else:
            num_s2s += 1
    degrees = [graph.degree(asn) for asn in graph]
    tiers = classify_tiers(graph)
    tier_counts = Counter(tiers.values())
    return TopologySummary(
        num_ases=len(graph),
        num_edges=graph.num_edges,
        num_p2c=num_p2c,
        num_p2p=num_p2p,
        num_s2s=num_s2s,
        num_stubs=sum(1 for asn in graph if not graph.customers_of(asn)),
        max_degree=max(degrees, default=0),
        mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
        tier_counts=dict(sorted(tier_counts.items())),
        powerlaw_exponent=powerlaw_exponent(graph),
    )
