"""Reading and writing relationship-annotated topologies.

The on-disk format follows CAIDA's *serial-1* AS-relationship files,
which the paper's methodology section consumes::

    # comment lines start with '#'
    <provider-as>|<customer-as>|-1
    <peer-as>|<peer-as>|0

We additionally write sibling edges as ``<as>|<as>|2`` (a documented
extension; CAIDA's serial-2 format reserves other codes).

CAIDA's published **as-rel2** snapshots append a fourth field naming the
inference source (``<a>|<b>|<code>|<source>``); :func:`load_asrel2` /
:func:`loads_asrel2` parse those strictly — exactly 3 or 4 fields,
known codes only, duplicate edges rejected with their line number — so
a real ``20240101.as-rel2.txt`` (optionally ``.bz2``) drops straight
into ``PropagationEngine`` at Internet scale.
"""

from __future__ import annotations

import bz2
import io
from pathlib import Path

from repro.exceptions import SerializationError
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

__all__ = [
    "load_caida",
    "save_caida",
    "loads_caida",
    "dumps_caida",
    "load_asrel2",
    "loads_asrel2",
    "to_networkx",
]

_REL_CODES = {
    Relationship.CUSTOMER: -1,  # written provider-first by ASGraph.edges()
    Relationship.PEER: 0,
    Relationship.SIBLING: 2,
}


def dumps_caida(graph: ASGraph, *, header: str | None = None) -> str:
    """Serialise ``graph`` to the CAIDA serial-1 text format."""
    out = io.StringIO()
    if header:
        for line in header.splitlines():
            out.write(f"# {line}\n")
    for a, b, role in graph.edges():
        out.write(f"{a}|{b}|{_REL_CODES[role]}\n")
    return out.getvalue()


def save_caida(graph: ASGraph, path: str | Path, *, header: str | None = None) -> None:
    """Write ``graph`` to ``path`` in CAIDA serial-1 format."""
    Path(path).write_text(dumps_caida(graph, header=header))


def _parse_relationships(text: str, *, max_fields: int | None) -> ASGraph:
    """Shared serial-1 / as-rel2 parse core.

    ``max_fields`` bounds the accepted field count (``None`` keeps the
    historical lenient serial-1 behaviour: three or more fields, extras
    ignored).  Every rejection carries the 1-based line number.
    """
    graph = ASGraph()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3 or (max_fields is not None and len(parts) > max_fields):
            raise SerializationError(
                f"line {line_number}: expected 'a|b|code"
                f"{'[|source]' if max_fields else ''}', got {raw!r}"
            )
        try:
            a, b, code = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise SerializationError(f"line {line_number}: non-integer field in {raw!r}") from exc
        try:
            if code == -1:
                graph.add_p2c(a, b)
            elif code == 0:
                graph.add_p2p(a, b)
            elif code == 2:
                graph.add_s2s(a, b)
            else:
                raise SerializationError(
                    f"line {line_number}: unknown relationship code {code}"
                )
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(f"line {line_number}: {exc}") from exc
    return graph


def loads_caida(text: str) -> ASGraph:
    """Parse a CAIDA serial-1 document into an :class:`ASGraph`."""
    return _parse_relationships(text, max_fields=None)


def load_caida(path: str | Path) -> ASGraph:
    """Read a CAIDA serial-1 file into an :class:`ASGraph`."""
    return loads_caida(Path(path).read_text())


def loads_asrel2(text: str) -> ASGraph:
    """Parse a CAIDA as-rel2 document (``a|b|code`` or ``a|b|code|source``).

    Stricter than :func:`loads_caida`: at most one trailing source
    field, relationship codes limited to -1 (p2c), 0 (p2p) and the
    sibling extension 2, and duplicate edges are a
    :class:`SerializationError` naming the offending line — a real
    snapshot never repeats a link, so a repeat means a mangled file.
    """
    return _parse_relationships(text, max_fields=4)


def load_asrel2(path: str | Path) -> ASGraph:
    """Read a CAIDA as-rel2 file (plain text or ``.bz2``, as published)."""
    path = Path(path)
    if path.suffix == ".bz2":
        with bz2.open(path, "rt") as handle:
            return loads_asrel2(handle.read())
    return loads_asrel2(path.read_text())


def to_networkx(graph: ASGraph):
    """Export to a ``networkx.Graph`` for ad-hoc analysis/plotting.

    Each edge carries a ``relationship`` attribute with the value of
    the role of the *second* endpoint relative to the first, matching
    :meth:`ASGraph.edges` ("customer" on transit edges means the edge
    is stored provider-first).  networkx is an optional dependency of
    this helper only; the library itself never imports it.
    """
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - env without networkx
        raise SerializationError(
            "to_networkx requires the optional networkx package"
        ) from exc
    exported = networkx.Graph()
    exported.add_nodes_from(graph.ases)
    for a, b, role in graph.edges():
        exported.add_edge(a, b, relationship=role.value)
    return exported
