"""Tier classification of ASes.

The paper repeatedly conditions its analysis on the position of the
attacker and victim in the Internet hierarchy ("Tier-1 hijacks Tier-1",
"a Tier-1 attacks a Tier-3 victim", "most of which are Tier-4 and
Tier-5 ASes").  This module derives that hierarchy from the
relationship-annotated graph:

* **Tier-1** ASes have no providers and form a peering clique at the
  top of the hierarchy (the paper: "A tier-1 AS is an AS with no
  providers and is peering with all other tier-1 ASes").
* Every other AS sits one tier below its best-placed provider.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import TopologyError
from repro.topology.asgraph import ASGraph

__all__ = [
    "tier1_ases",
    "classify_tiers",
    "customer_cone",
    "provider_ancestors",
    "is_stub",
]


def tier1_ases(graph: ASGraph) -> frozenset[int]:
    """Return the Tier-1 set: provider-free ASes in a mutual peering clique.

    Among provider-free ASes we keep the largest subset that is fully
    peer-meshed.  Exact maximum-clique is exponential; since the
    provider-free set is small in practice (~10-20 ASes) we use a greedy
    descent ordered by peering degree, which recovers the full clique on
    every topology our generator produces and is a standard heuristic on
    inferred graphs.
    """
    candidates = [asn for asn in graph if not graph.providers_of(asn)]
    if not candidates:
        raise TopologyError("topology has no provider-free ASes; no Tier-1 clique")
    # Greedy: repeatedly add the provider-free AS with the most peers
    # inside the candidate set, keeping mutual peering with all chosen.
    candidates.sort(key=lambda a: (-len(graph.peers_of(a)), a))
    clique: list[int] = []
    for asn in candidates:
        if all(asn in graph.peers_of(member) for member in clique):
            clique.append(asn)
    return frozenset(clique)


def classify_tiers(graph: ASGraph) -> dict[int, int]:
    """Assign a tier number to every AS.

    Tier-1 ASes get 1; any other AS gets ``1 + min(tier of providers)``.
    Provider-free ASes outside the clique (possible on inferred graphs)
    are treated as tier 2: they are not part of the core but need no
    provider, resembling large peering-only networks.  ASes unreachable
    through transit edges from the core keep the most pessimistic tier
    found through whatever providers they have, or tier 2 if none.
    """
    tier1 = tier1_ases(graph)
    tiers: dict[int, int] = {asn: 1 for asn in tier1}
    queue: deque[int] = deque(sorted(tier1))
    while queue:
        asn = queue.popleft()
        for customer in graph.customers_of(asn):
            proposed = tiers[asn] + 1
            if customer not in tiers or proposed < tiers[customer]:
                tiers[customer] = proposed
                queue.append(customer)
    for asn in graph:
        if asn not in tiers:
            # Provider-free non-clique AS, or disconnected island.
            tiers[asn] = 2 if not graph.providers_of(asn) else max(tiers.values()) + 1
    return tiers


def customer_cone(graph: ASGraph, asn: int) -> frozenset[int]:
    """All ASes reachable from ``asn`` by walking only customer edges.

    ``asn`` itself is included (CAIDA convention).  The cone size is the
    classic measure of how much of the Internet an AS provides transit
    for; the paper's Figure 7 discussion ("victim's customers are richly
    peered") is about the cone boundary.
    """
    seen = {asn}
    queue: deque[int] = deque([asn])
    while queue:
        current = queue.popleft()
        for customer in graph.customers_of(current):
            if customer not in seen:
                seen.add(customer)
                queue.append(customer)
    return frozenset(seen)


def provider_ancestors(graph: ASGraph, asn: int) -> frozenset[int]:
    """All ASes above ``asn`` in the provider hierarchy (excluding it).

    This is the customer cone's mirror: ``asn`` lies in the customer
    cone of exactly these ASes, so an attack launched by any of them
    can reach ``asn`` under valley-free export.
    """
    seen: set[int] = set()
    stack = [asn]
    while stack:
        current = stack.pop()
        for provider in graph.providers_of(current):
            if provider not in seen:
                seen.add(provider)
                stack.append(provider)
    return frozenset(seen)


def is_stub(graph: ASGraph, asn: int) -> bool:
    """True when ``asn`` provides no transit (has no customers)."""
    return not graph.customers_of(asn)
