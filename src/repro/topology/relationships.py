"""AS business relationships and the local-preference classes they induce.

BGP routing on the inter-domain level is driven by commercial
relationships between ASes (Gao 2000).  The paper's simulator encodes
the standard model:

* **customer-provider** (``P2C``): the customer pays the provider for
  transit;
* **peer-peer** (``P2P``): settlement-free exchange of each other's
  customer routes;
* **sibling** (``S2S``): two ASes under one organisation that exchange
  *all* routes (the paper's Figure 11 analysis hinges on a sibling of a
  CDN re-exporting a route).

Route selection prefers customer-learned routes over peer-learned over
provider-learned ("profit-driven" local preference), and export follows
the valley-free rule.
"""

from __future__ import annotations

import enum

__all__ = ["Relationship", "PrefClass"]


class Relationship(enum.Enum):
    """The role of a neighbour *relative to* a given AS.

    ``graph.relationship(a, b) == Relationship.CUSTOMER`` means *b is a
    customer of a*.
    """

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"
    SIBLING = "sibling"
    NONE = "none"

    def inverse(self) -> "Relationship":
        """The same edge seen from the other endpoint."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self

    @property
    def is_transit(self) -> bool:
        """True for the customer-provider (transit) relationship."""
        return self in (Relationship.CUSTOMER, Relationship.PROVIDER)


class PrefClass(enum.IntEnum):
    """Local-preference class of a route, ordered best-first.

    Lower values are more preferred.  ``ORIGIN`` marks the prefix
    owner's own (self-originated) route, which beats everything.
    Sibling-learned routes sit between customer and peer routes: they
    carry no cost, but a customer route still earns revenue.
    """

    ORIGIN = 0
    CUSTOMER = 1
    SIBLING = 2
    PEER = 3
    PROVIDER = 4

    @classmethod
    def for_relationship(cls, relationship: Relationship) -> "PrefClass":
        """Preference class of a route learned from a ``relationship`` neighbour."""
        mapping = {
            Relationship.CUSTOMER: cls.CUSTOMER,
            Relationship.SIBLING: cls.SIBLING,
            Relationship.PEER: cls.PEER,
            Relationship.PROVIDER: cls.PROVIDER,
        }
        try:
            return mapping[relationship]
        except KeyError:
            raise ValueError(
                f"no preference class for relationship {relationship!r}"
            ) from None
