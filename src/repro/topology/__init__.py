"""AS-level topology substrate.

This package provides the inferred-Internet-topology substrate the paper
builds its simulations on: the :class:`~repro.topology.asgraph.ASGraph`
data structure annotated with business relationships, tier
classification, a hierarchical Internet-like topology generator (our
substitute for the RouteViews/RIPE-derived graph), and CAIDA-style
serialization.
"""

from repro.topology.asgraph import ASGraph
from repro.topology.generators import (
    InternetTopologyConfig,
    PowerLawConfig,
    generate_internet_topology,
    generate_powerlaw_topology,
)
from repro.topology.relationships import PrefClass, Relationship
from repro.topology.serialization import (
    load_asrel2,
    load_caida,
    loads_asrel2,
    save_caida,
)
from repro.topology.tiers import classify_tiers, customer_cone, tier1_ases

__all__ = [
    "ASGraph",
    "Relationship",
    "PrefClass",
    "InternetTopologyConfig",
    "PowerLawConfig",
    "generate_internet_topology",
    "generate_powerlaw_topology",
    "load_caida",
    "load_asrel2",
    "loads_asrel2",
    "save_caida",
    "classify_tiers",
    "customer_cone",
    "tier1_ases",
]
