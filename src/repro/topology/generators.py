"""Synthetic Internet-like AS topology generator.

The paper simulates on an AS graph inferred from RouteViews/RIPE tables.
Without network access we generate topologies with the same structural
properties the paper's results depend on:

* a fully peer-meshed **Tier-1 clique** at the top (no providers);
* **transit tiers** below it, attached by preferential attachment so the
  customer-degree distribution is heavy-tailed like the real AS graph;
* widely **multi-homed stubs** at the edge;
* **content ASes** (the Facebook analogue): stub-like origin ASes with
  unusually rich peering — the structure behind the paper's Figure 10
  and Figure 11 scenarios;
* occasional **sibling pairs** (one organisation, two ASNs) — the
  mechanism the paper identifies behind the surprisingly wide pollution
  in Figure 11;
* IXP-style peering inside and across the lower tiers.

The generator is fully deterministic given a :class:`random.Random`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.topology.asgraph import ASGraph

__all__ = [
    "InternetTopologyConfig",
    "GeneratedTopology",
    "PowerLawConfig",
    "generate_internet_topology",
    "generate_powerlaw_topology",
]


@dataclass(frozen=True)
class InternetTopologyConfig:
    """Knobs for :func:`generate_internet_topology`.

    The defaults produce roughly 1,500 ASes and 4,000 links — large
    enough for tier structure and rich peering to matter, small enough
    that a full 200-pair hijack campaign runs in seconds.  Experiments
    that need a bigger Internet scale the counts up uniformly.
    """

    num_tier1: int = 10
    num_tier2: int = 60
    num_tier3: int = 200
    #: small regional transit ASes (the paper's "Tier-4 and Tier-5")
    num_tier4: int = 260
    num_stubs: int = 1000
    num_content: int = 15

    #: inclusive (min, max) number of Tier-1 providers per Tier-2 AS
    tier2_providers: tuple[int, int] = (2, 3)
    #: inclusive (min, max) number of Tier-2 providers per Tier-3 AS
    tier3_providers: tuple[int, int] = (1, 3)
    #: inclusive (min, max) number of Tier-3 providers per Tier-4 AS
    tier4_providers: tuple[int, int] = (1, 2)
    #: inclusive (min, max) number of providers per stub (multi-homing)
    stub_providers: tuple[int, int] = (1, 2)
    #: inclusive (min, max) number of providers per content AS
    content_providers: tuple[int, int] = (2, 3)

    #: probability that any two Tier-2 ASes peer
    tier2_peering_prob: float = 0.12
    #: inclusive (min, max) number of IXP-style peers per Tier-3 AS
    tier3_peering_degree: tuple[int, int] = (0, 4)
    #: inclusive (min, max) number of IXP-style peers per Tier-4 AS
    tier4_peering_degree: tuple[int, int] = (0, 2)
    #: inclusive (min, max) number of peers per content AS (rich peering)
    content_peering_degree: tuple[int, int] = (15, 60)
    #: fraction of stubs that additionally peer with one other stub
    stub_peering_prob: float = 0.02

    #: number of sibling pairs to create among Tier-2/Tier-3 ASes
    sibling_pairs: int = 8

    #: first AS number to allocate
    asn_start: int = 1

    def validate(self) -> None:
        if self.num_tier1 < 2:
            raise TopologyError("a Tier-1 clique needs at least 2 ASes")
        for name in ("num_tier2", "num_tier3", "num_tier4", "num_stubs", "num_content"):
            if getattr(self, name) < 0:
                raise TopologyError(f"{name} must be non-negative")
        for name in (
            "tier2_providers",
            "tier3_providers",
            "tier4_providers",
            "stub_providers",
            "content_providers",
            "tier3_peering_degree",
            "tier4_peering_degree",
            "content_peering_degree",
        ):
            lo, hi = getattr(self, name)
            if lo < 0 or hi < lo:
                raise TopologyError(f"{name} must be a (min, max) range, got {(lo, hi)}")
        if not 0.0 <= self.tier2_peering_prob <= 1.0:
            raise TopologyError("tier2_peering_prob must be a probability")
        if not 0.0 <= self.stub_peering_prob <= 1.0:
            raise TopologyError("stub_peering_prob must be a probability")
        if self.sibling_pairs < 0:
            raise TopologyError("sibling_pairs must be non-negative")

    def scaled(self, factor: float) -> "InternetTopologyConfig":
        """Return a copy with all population counts scaled by ``factor``."""
        if factor <= 0:
            raise TopologyError("scale factor must be positive")
        return InternetTopologyConfig(
            # The Tier-1 clique stays near its natural size: the paper's
            # tier-conditioned experiments need a handful of Tier-1
            # attacker/victim pairs even at small scales.
            num_tier1=max(min(5, self.num_tier1), round(self.num_tier1 * min(factor, 2.0))),
            num_tier2=max(1, round(self.num_tier2 * factor)),
            num_tier3=max(1, round(self.num_tier3 * factor)),
            num_tier4=max(1, round(self.num_tier4 * factor)),
            num_stubs=max(1, round(self.num_stubs * factor)),
            num_content=max(1, round(self.num_content * factor)),
            tier2_providers=self.tier2_providers,
            tier3_providers=self.tier3_providers,
            tier4_providers=self.tier4_providers,
            stub_providers=self.stub_providers,
            content_providers=self.content_providers,
            tier2_peering_prob=self.tier2_peering_prob,
            tier3_peering_degree=self.tier3_peering_degree,
            tier4_peering_degree=self.tier4_peering_degree,
            content_peering_degree=self.content_peering_degree,
            stub_peering_prob=self.stub_peering_prob,
            sibling_pairs=self.sibling_pairs,
            asn_start=self.asn_start,
        )


@dataclass
class GeneratedTopology:
    """A generated topology together with its ground-truth structure.

    Experiments use the ground-truth role lists to sample attackers and
    victims from specific tiers; the inference package uses the graph's
    relationship labels as the gold standard for accuracy scoring.
    """

    graph: ASGraph
    tier1: list[int] = field(default_factory=list)
    tier2: list[int] = field(default_factory=list)
    tier3: list[int] = field(default_factory=list)
    tier4: list[int] = field(default_factory=list)
    stubs: list[int] = field(default_factory=list)
    content: list[int] = field(default_factory=list)
    sibling_pairs: list[tuple[int, int]] = field(default_factory=list)

    @property
    def all_ases(self) -> list[int]:
        return self.graph.ases

    @property
    def transit_ases(self) -> list[int]:
        """ASes that provide transit (have at least one customer).

        The paper's random attacker/victim experiments draw mostly
        "Tier-4 and Tier-5" ASes — small networks that still provide
        transit; a valley-free attacker without customers has nowhere
        to export a modified route, so experiment samplers use this
        pool for attackers.
        """
        return [asn for asn in self.graph.ases if self.graph.customers_of(asn)]


def _pick_count(rng: random.Random, bounds: tuple[int, int]) -> int:
    lo, hi = bounds
    return rng.randint(lo, hi)


def _preferential_sample(
    rng: random.Random, pool: list[int], weights: dict[int, int], k: int
) -> list[int]:
    """Sample ``k`` distinct ASes from ``pool`` weighted by ``weights``.

    Preferential attachment: the weight of an AS is 1 + its current
    customer count, reproducing the heavy-tailed provider-degree
    distribution of the real AS graph.
    """
    if k >= len(pool):
        return list(pool)
    chosen: list[int] = []
    remaining = list(pool)
    for _ in range(k):
        total = sum(1 + weights.get(asn, 0) for asn in remaining)
        point = rng.uniform(0.0, total)
        cumulative = 0.0
        picked_index = len(remaining) - 1
        for index, asn in enumerate(remaining):
            cumulative += 1 + weights.get(asn, 0)
            if point <= cumulative:
                picked_index = index
                break
        chosen.append(remaining.pop(picked_index))
    return chosen


def generate_internet_topology(
    config: InternetTopologyConfig, rng: random.Random
) -> GeneratedTopology:
    """Generate a hierarchical Internet-like topology.

    Returns a :class:`GeneratedTopology`; the contained graph is always
    transit-connected (every AS can reach the Tier-1 clique through
    provider links), which the propagation engine relies on.
    """
    config.validate()
    graph = ASGraph()
    next_asn = config.asn_start

    def allocate(count: int) -> list[int]:
        nonlocal next_asn
        block = list(range(next_asn, next_asn + count))
        next_asn += count
        for asn in block:
            graph.add_as(asn)
        return block

    tier1 = allocate(config.num_tier1)
    tier2 = allocate(config.num_tier2)
    tier3 = allocate(config.num_tier3)
    tier4 = allocate(config.num_tier4)
    content = allocate(config.num_content)
    stubs = allocate(config.num_stubs)

    customer_counts: dict[int, int] = {}

    def attach(provider: int, customer: int) -> None:
        graph.add_p2c(provider, customer)
        customer_counts[provider] = customer_counts.get(provider, 0) + 1

    # Tier-1: full peering mesh, no providers.
    for index, a in enumerate(tier1):
        for b in tier1[index + 1 :]:
            graph.add_p2p(a, b)

    # Tier-2: multi-homed onto the Tier-1 clique.
    for asn in tier2:
        for provider in _preferential_sample(
            rng, tier1, customer_counts, _pick_count(rng, config.tier2_providers)
        ):
            attach(provider, asn)

    # Tier-2 peering mesh (sparse).
    for index, a in enumerate(tier2):
        for b in tier2[index + 1 :]:
            if rng.random() < config.tier2_peering_prob:
                graph.add_p2p(a, b)

    # Tier-3: providers from Tier-2 by preferential attachment.
    for asn in tier3:
        for provider in _preferential_sample(
            rng, tier2, customer_counts, _pick_count(rng, config.tier3_providers)
        ):
            attach(provider, asn)

    # Tier-3 IXP-style peering.
    for asn in tier3:
        want = _pick_count(rng, config.tier3_peering_degree)
        candidates = [c for c in tier3 if c != asn and not graph.has_edge(asn, c)]
        rng.shuffle(candidates)
        for peer in candidates[:want]:
            graph.add_p2p(asn, peer)

    # Tier-4: small regional transit, attached to Tier-3.
    for asn in tier4:
        for provider in _preferential_sample(
            rng, tier3, customer_counts, _pick_count(rng, config.tier4_providers)
        ):
            attach(provider, asn)
    for asn in tier4:
        want = _pick_count(rng, config.tier4_peering_degree)
        candidates = [c for c in tier4 if c != asn and not graph.has_edge(asn, c)]
        rng.shuffle(candidates)
        for peer in candidates[:want]:
            graph.add_p2p(asn, peer)

    # Content ASes: few providers, very rich peering (Facebook analogue).
    peering_pool = tier2 + tier3
    for asn in content:
        for provider in _preferential_sample(
            rng, tier1 + tier2, customer_counts, _pick_count(rng, config.content_providers)
        ):
            attach(provider, asn)
        want = min(_pick_count(rng, config.content_peering_degree), len(peering_pool))
        candidates = [c for c in peering_pool if not graph.has_edge(asn, c)]
        rng.shuffle(candidates)
        for peer in candidates[:want]:
            graph.add_p2p(asn, peer)

    # Stubs: one or two providers from the transit tiers.
    transit_pool = tier2 + tier3 + tier4
    for asn in stubs:
        for provider in _preferential_sample(
            rng, transit_pool, customer_counts, _pick_count(rng, config.stub_providers)
        ):
            attach(provider, asn)
        if rng.random() < config.stub_peering_prob:
            other = rng.choice(stubs)
            if other != asn and not graph.has_edge(asn, other):
                graph.add_p2p(asn, other)

    # Sibling pairs among the transit tiers.
    sibling_pairs: list[tuple[int, int]] = []
    pool = tier2 + tier3 + tier4 + content
    attempts = 0
    while len(sibling_pairs) < config.sibling_pairs and attempts < 50 * max(
        1, config.sibling_pairs
    ):
        attempts += 1
        a, b = rng.sample(pool, 2)
        if not graph.has_edge(a, b):
            graph.add_s2s(a, b)
            sibling_pairs.append((min(a, b), max(a, b)))

    return GeneratedTopology(
        graph=graph,
        tier1=tier1,
        tier2=tier2,
        tier3=tier3,
        tier4=tier4,
        stubs=stubs,
        content=content,
        sibling_pairs=sibling_pairs,
    )


# ----------------------------------------------------------------------
# Internet-scale power-law generator (NumPy).
#
# ``generate_internet_topology`` draws every provider with an O(pool)
# Python scan — fine at 1.5k ASes, hopeless at 80k.  This generator
# produces the same macro structure (Tier-1 clique, preferentially
# attached transit hierarchy, multi-homed stub majority, sparse transit
# peering, optional sibling pairs) with chunked weighted draws from
# ``numpy.random.default_rng`` (PCG64: one integer seed reproduces the
# graph on every platform), so 10k builds in tens of milliseconds and
# 80k in under a second before graph insertion.


@dataclass(frozen=True)
class PowerLawConfig:
    """Knobs for :func:`generate_powerlaw_topology`.

    ``num_ases`` is the total AS count; everything else defaults to
    ratios that keep the customer-degree distribution heavy-tailed like
    the real AS graph (a few huge transit providers, a long tail of
    small ones, ~85% stubs).
    """

    num_ases: int
    #: Tier-1 clique size (full peer mesh, no providers).
    tier1_size: int = 12
    #: fraction of non-Tier-1 ASes that provide transit
    transit_fraction: float = 0.14
    #: inclusive (min, max) providers per transit AS
    transit_providers: tuple[int, int] = (1, 3)
    #: inclusive (min, max) providers per stub AS
    stub_providers: tuple[int, int] = (1, 2)
    #: inclusive (min, max) IXP-style peers per transit AS
    transit_peering_degree: tuple[int, int] = (0, 2)
    #: preferential-attachment strength: provider weight is
    #: ``(1 + customer_degree) ** attachment_bias``
    attachment_bias: float = 1.0
    #: sibling pairs among transit ASes (0 disables)
    sibling_pairs: int = 0
    #: first AS number to allocate
    asn_start: int = 1

    def validate(self) -> None:
        if self.num_ases < 4:
            raise TopologyError("num_ases must be at least 4")
        if not 2 <= self.tier1_size < self.num_ases:
            raise TopologyError("tier1_size must be in [2, num_ases)")
        if not 0.0 < self.transit_fraction < 1.0:
            raise TopologyError("transit_fraction must be in (0, 1)")
        for name in ("transit_providers", "stub_providers", "transit_peering_degree"):
            lo, hi = getattr(self, name)
            if lo < 0 or hi < lo:
                raise TopologyError(f"{name} must be a (min, max) range, got {(lo, hi)}")
        if self.transit_providers[0] < 1 or self.stub_providers[0] < 1:
            raise TopologyError("every non-Tier-1 AS needs at least one provider")
        if self.attachment_bias < 0:
            raise TopologyError("attachment_bias must be non-negative")
        if self.sibling_pairs < 0:
            raise TopologyError("sibling_pairs must be non-negative")


def _weighted_distinct_rows(rng, weights, want, chunk_rows):
    """For each row draw ``want[row]`` distinct indices weighted by
    ``weights`` (fixed within the call).  Oversamples with replacement
    then dedupes per row — at power-law weights the repeat probability
    is tiny, and any shortfall is topped up uniformly."""
    import numpy as np

    total = weights.sum()
    probs = weights / total
    kmax = int(want.max())
    draws = rng.choice(len(weights), size=(chunk_rows, max(2 * kmax + 2, 4)), p=probs)
    out = []
    pool = len(weights)
    for row in range(chunk_rows):
        need = int(want[row])
        seen: list[int] = []
        for value in draws[row]:
            value = int(value)
            if value not in seen:
                seen.append(value)
                if len(seen) == need:
                    break
        while len(seen) < need and len(seen) < pool:
            value = int(rng.integers(pool))
            if value not in seen:
                seen.append(value)
        out.append(seen)
    return out


def generate_powerlaw_topology(
    config: PowerLawConfig | int, seed: int = 0
) -> GeneratedTopology:
    """Generate an Internet-scale tiered power-law topology.

    ``config`` is a :class:`PowerLawConfig` (or a bare AS count using
    the default ratios); ``seed`` feeds ``numpy.random.default_rng``.
    The graph is transit-connected by construction — every transit AS
    attaches to at least one earlier transit/Tier-1 AS, every stub to
    at least one transit AS — which the propagation engine relies on.
    The result's ``tier2`` list holds all transit ASes below the
    clique (the finer tier-3/4 split is a small-world ground-truth
    detail the scale experiments do not condition on).
    """
    import numpy as np

    if isinstance(config, int):
        config = PowerLawConfig(num_ases=config)
    config.validate()
    rng = np.random.default_rng(seed)

    n = config.num_ases
    t1 = config.tier1_size
    num_transit = max(1, round((n - t1) * config.transit_fraction))
    num_stubs = n - t1 - num_transit
    first = config.asn_start
    tier1 = list(range(first, first + t1))
    transit = list(range(first + t1, first + t1 + num_transit))
    stubs = list(range(first + t1 + num_transit, first + n))

    # Provider pool: tier1 + already-attached transit; weight grows
    # with customer degree (preferential attachment), updated between
    # chunks so early transit ASes accumulate heavy tails.
    pool = list(tier1)
    degree = np.zeros(n, dtype=np.float64)  # by pool position later
    p2c: list[tuple[int, int]] = []
    p2p: list[tuple[int, int]] = []

    def attach_block(customers: list[int], bounds: tuple[int, int], grow_pool: bool):
        lo, hi = bounds
        position = 0
        while position < len(customers):
            chunk = customers[position : position + 2048]
            weights = (1.0 + degree[: len(pool)]) ** config.attachment_bias
            want = rng.integers(lo, hi + 1, size=len(chunk))
            np.minimum(want, len(pool), out=want)
            rows = _weighted_distinct_rows(rng, weights, want, len(chunk))
            for customer, providers in zip(chunk, rows):
                for j in providers:
                    p2c.append((pool[j], customer))
                    degree[j] += 1.0
            if grow_pool:
                pool.extend(chunk)
            position += 2048

    attach_block(transit, config.transit_providers, grow_pool=True)
    attach_block(stubs, config.stub_providers, grow_pool=False)

    # Tier-1 full peer mesh.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            p2p.append((a, b))

    # Sparse IXP-style peering among transit.
    if transit and config.transit_peering_degree[1] > 0:
        lo, hi = config.transit_peering_degree
        want = rng.integers(lo, hi + 1, size=len(transit))
        partners = rng.integers(0, len(transit), size=(len(transit), max(hi, 1)))
        for i, a in enumerate(transit):
            for j in partners[i, : want[i]]:
                b = transit[int(j)]
                if a < b:
                    p2p.append((a, b))

    graph = ASGraph()
    for asn in tier1 + transit + stubs:
        graph.add_as(asn)
    seen_edges: set[tuple[int, int]] = set()
    for provider, customer in p2c:
        key = (provider, customer) if provider < customer else (customer, provider)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        graph.add_p2c(provider, customer)
    for a, b in p2p:
        key = (a, b) if a < b else (b, a)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        graph.add_p2p(a, b)

    sibling_pairs: list[tuple[int, int]] = []
    if config.sibling_pairs and len(transit) >= 2:
        attempts = 0
        while len(sibling_pairs) < config.sibling_pairs and attempts < 50 * config.sibling_pairs:
            attempts += 1
            i, j = rng.choice(len(transit), size=2, replace=False)
            a, b = transit[int(i)], transit[int(j)]
            key = (a, b) if a < b else (b, a)
            if key in seen_edges:
                continue
            seen_edges.add(key)
            graph.add_s2s(a, b)
            sibling_pairs.append(key)

    return GeneratedTopology(
        graph=graph,
        tier1=tier1,
        tier2=transit,
        stubs=stubs,
        sibling_pairs=sibling_pairs,
    )
