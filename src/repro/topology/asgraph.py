"""The annotated AS-level topology graph.

:class:`ASGraph` stores the Internet's AS-level structure with each edge
labelled by its inferred business relationship.  It is the substrate for
the propagation engine (:mod:`repro.bgp.engine`), the paper's three-phase
path algorithm (:mod:`repro.bgp.uphill`), relationship inference
(:mod:`repro.inference`) and tier classification
(:mod:`repro.topology.tiers`).

The representation is adjacency sets per relationship kind, which makes
the hot queries of the propagation engine (``customers_of``,
``peers_of`` ...) O(1) lookups returning pre-built sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import DuplicateEdgeError, TopologyError, UnknownASError
from repro.topology.relationships import Relationship

__all__ = ["ASGraph"]


class ASGraph:
    """An AS-level topology with relationship-annotated edges.

    ASes are identified by positive integers (AS numbers).  Each
    undirected AS-level link carries exactly one relationship label:
    customer-provider, peer-peer, or sibling-sibling.
    """

    def __init__(self) -> None:
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._siblings: dict[int, set[int]] = {}
        self._edge_count = 0
        # Memo of sorted neighbour tuples, shared by every propagation
        # engine compiled over this graph (each engine used to rebuild
        # the same sorted lists).  Invalidated per-AS on mutation.
        self._sorted_neighbors: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _check_asn(asn: int) -> None:
        if not isinstance(asn, int) or isinstance(asn, bool) or asn <= 0:
            raise TopologyError(f"AS numbers must be positive integers, got {asn!r}")

    def add_as(self, asn: int) -> None:
        """Insert an AS with no links (idempotent)."""
        self._check_asn(asn)
        if asn not in self._providers:
            self._providers[asn] = set()
            self._customers[asn] = set()
            self._peers[asn] = set()
            self._siblings[asn] = set()

    def _check_new_edge(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError(f"self-loop on AS{a} is not allowed")
        if self.relationship(a, b) is not Relationship.NONE:
            raise DuplicateEdgeError(
                f"edge AS{a}-AS{b} already exists with relationship "
                f"{self.relationship(a, b).value}"
            )

    def add_p2c(self, provider: int, customer: int) -> None:
        """Add a transit edge: ``provider`` sells transit to ``customer``."""
        self.add_as(provider)
        self.add_as(customer)
        self._check_new_edge(provider, customer)
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)
        self._edge_count += 1
        self._invalidate_neighbors(provider, customer)

    def add_p2p(self, a: int, b: int) -> None:
        """Add a settlement-free peering edge between ``a`` and ``b``."""
        self.add_as(a)
        self.add_as(b)
        self._check_new_edge(a, b)
        self._peers[a].add(b)
        self._peers[b].add(a)
        self._edge_count += 1
        self._invalidate_neighbors(a, b)

    def add_s2s(self, a: int, b: int) -> None:
        """Add a sibling edge (two ASes of one organisation)."""
        self.add_as(a)
        self.add_as(b)
        self._check_new_edge(a, b)
        self._siblings[a].add(b)
        self._siblings[b].add(a)
        self._edge_count += 1
        self._invalidate_neighbors(a, b)

    def add_edge(self, a: int, b: int, relationship: Relationship) -> None:
        """Add an edge with ``relationship`` being *b's role relative to a*."""
        if relationship is Relationship.CUSTOMER:
            self.add_p2c(a, b)
        elif relationship is Relationship.PROVIDER:
            self.add_p2c(b, a)
        elif relationship is Relationship.PEER:
            self.add_p2p(a, b)
        elif relationship is Relationship.SIBLING:
            self.add_s2s(a, b)
        else:
            raise TopologyError(f"cannot add an edge with relationship {relationship}")

    def remove_edge(self, a: int, b: int) -> None:
        """Remove the edge between ``a`` and ``b`` (it must exist)."""
        relationship = self.relationship(a, b)
        if relationship is Relationship.NONE:
            raise TopologyError(f"no edge between AS{a} and AS{b}")
        if relationship is Relationship.CUSTOMER:
            self._customers[a].discard(b)
            self._providers[b].discard(a)
        elif relationship is Relationship.PROVIDER:
            self._customers[b].discard(a)
            self._providers[a].discard(b)
        elif relationship is Relationship.PEER:
            self._peers[a].discard(b)
            self._peers[b].discard(a)
        else:
            self._siblings[a].discard(b)
            self._siblings[b].discard(a)
        self._edge_count -= 1
        self._invalidate_neighbors(a, b)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def __iter__(self) -> Iterator[int]:
        return iter(self._providers)

    @property
    def ases(self) -> list[int]:
        """All AS numbers, sorted (stable iteration order for experiments)."""
        return sorted(self._providers)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def _require(self, asn: int) -> None:
        if asn not in self._providers:
            raise UnknownASError(asn)

    def providers_of(self, asn: int) -> frozenset[int]:
        """The ASes selling transit to ``asn``."""
        self._require(asn)
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> frozenset[int]:
        """The ASes buying transit from ``asn``."""
        self._require(asn)
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> frozenset[int]:
        """The settlement-free peers of ``asn``."""
        self._require(asn)
        return frozenset(self._peers[asn])

    def siblings_of(self, asn: int) -> frozenset[int]:
        """The sibling ASes of ``asn``."""
        self._require(asn)
        return frozenset(self._siblings[asn])

    def neighbors_of(self, asn: int) -> frozenset[int]:
        """All neighbours of ``asn`` regardless of relationship."""
        self._require(asn)
        return frozenset(
            self._providers[asn]
            | self._customers[asn]
            | self._peers[asn]
            | self._siblings[asn]
        )

    def _invalidate_neighbors(self, a: int, b: int) -> None:
        self._sorted_neighbors.pop(a, None)
        self._sorted_neighbors.pop(b, None)

    def sorted_neighbors(self, asn: int) -> tuple[int, ...]:
        """All neighbours of ``asn`` as a sorted tuple (memoised).

        Propagation engines iterate neighbours in ascending-ASN order;
        both the reference and the compiled backend build their
        adjacency from this memo instead of re-sorting per engine.
        """
        cached = self._sorted_neighbors.get(asn)
        if cached is None:
            self._require(asn)
            cached = tuple(
                sorted(
                    self._providers[asn]
                    | self._customers[asn]
                    | self._peers[asn]
                    | self._siblings[asn]
                )
            )
            self._sorted_neighbors[asn] = cached
        return cached

    def degree(self, asn: int) -> int:
        """Total number of AS-level links incident to ``asn``."""
        self._require(asn)
        return (
            len(self._providers[asn])
            + len(self._customers[asn])
            + len(self._peers[asn])
            + len(self._siblings[asn])
        )

    def transit_degree(self, asn: int) -> int:
        """Number of customers — CAIDA's AS-Rank ordering key."""
        self._require(asn)
        return len(self._customers[asn])

    def relationship(self, a: int, b: int) -> Relationship:
        """The role of ``b`` relative to ``a`` (``NONE`` if not adjacent)."""
        if a not in self._providers or b not in self._providers:
            return Relationship.NONE
        if b in self._customers[a]:
            return Relationship.CUSTOMER
        if b in self._providers[a]:
            return Relationship.PROVIDER
        if b in self._peers[a]:
            return Relationship.PEER
        if b in self._siblings[a]:
            return Relationship.SIBLING
        return Relationship.NONE

    def has_edge(self, a: int, b: int) -> bool:
        return self.relationship(a, b) is not Relationship.NONE

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """Iterate each edge once as ``(a, b, role-of-b-relative-to-a)``.

        Transit edges are yielded provider-first (``role`` = CUSTOMER);
        symmetric edges are yielded with ``a < b``.
        """
        for asn in sorted(self._providers):
            for customer in sorted(self._customers[asn]):
                yield asn, customer, Relationship.CUSTOMER
            for peer in sorted(self._peers[asn]):
                if asn < peer:
                    yield asn, peer, Relationship.PEER
            for sibling in sorted(self._siblings[asn]):
                if asn < sibling:
                    yield asn, sibling, Relationship.SIBLING

    # ------------------------------------------------------------------
    # Structure-level helpers
    # ------------------------------------------------------------------
    def is_path_valley_free(self, path: Iterable[int]) -> bool:
        """Check the valley-free (Gao-Rexford) property of an AS path.

        A valid path is ``Customer-Provider* Peer-Peer? Provider-Customer*``
        when read from the *traffic source* towards the origin... BGP AS
        paths are recorded origin-last, and we evaluate them in
        announcement-propagation order: reversed(path) is the order the
        announcement travelled.  Sibling hops are transparent (allowed
        anywhere), consecutive duplicates (prepending) are skipped, and
        unknown edges make the path invalid.
        """
        hops: list[int] = []
        for asn in path:
            if not hops or hops[-1] != asn:
                hops.append(asn)
        if len(hops) <= 1:
            return True
        # Announcement travels origin -> ... -> head, i.e. reversed hops.
        travel = list(reversed(hops))
        # State machine over the direction of each hop in travel order:
        # "up" (customer->provider), at most one "flat" (peer), then "down".
        state = "up"
        for sender, receiver in zip(travel, travel[1:]):
            role = self.relationship(sender, receiver)
            if role is Relationship.NONE:
                return False
            if role is Relationship.SIBLING:
                continue
            if role is Relationship.PROVIDER:
                # receiver is sender's provider: an uphill hop.
                if state != "up":
                    return False
            elif role is Relationship.PEER:
                if state != "up":
                    return False
                state = "down"
            else:  # receiver is sender's customer: downhill hop.
                state = "down"
        return True

    def copy(self) -> "ASGraph":
        """Deep copy of the graph."""
        clone = ASGraph()
        for asn in self._providers:
            clone.add_as(asn)
        for a, b, role in self.edges():
            clone.add_edge(a, b, role)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ASGraph(ases={len(self)}, edges={self.num_edges})"
